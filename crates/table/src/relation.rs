//! Columnar relations with missing cells.
//!
//! The C-Extension problem works on relations where an entire column can be
//! missing (the foreign key of `R1`, or the `B` columns of the join view
//! before Phase I completes them), and cells are filled in incrementally.
//!
//! Storage is genuinely columnar (the v2 engine): integer columns are dense
//! `Vec<i64>` arrays paired with a validity bitmap (one bit per row, 64 rows
//! per block), and categorical columns are dictionary-encoded — a dense
//! `Vec<u32>` of per-column codes plus a per-column dictionary mapping codes
//! to interned [`Sym`]s. Missing cells cost one cleared validity bit instead
//! of an `Option` discriminant per cell, and hot loops read through
//! [`IntColumnView`]/[`SymColumnView`] without constructing a boxed
//! [`Value`] per access. Bulk loads go through [`RelationBuilder`]
//! (reserve → append columnar chunks → freeze).

use crate::error::{Result, TableError};
use crate::schema::{ColId, Schema};
use crate::value::{Dtype, Sym, Value};
use std::collections::HashMap;
use std::fmt;

/// Index of a row within a relation.
pub type RowId = usize;

/// Reads one presence bit out of a validity bitmap.
#[inline]
fn bit_get(blocks: &[u64], row: usize) -> bool {
    (blocks[row >> 6] >> (row & 63)) & 1 == 1
}

/// Writes one presence bit.
#[inline]
fn bit_set(blocks: &mut [u64], row: usize, present: bool) {
    let mask = 1u64 << (row & 63);
    if present {
        blocks[row >> 6] |= mask;
    } else {
        blocks[row >> 6] &= !mask;
    }
}

/// Appends one presence bit for row `len` (the length before the push),
/// growing the block vector when the row crosses into a new block.
#[inline]
fn bit_push(blocks: &mut Vec<u64>, len: usize, present: bool) {
    if len & 63 == 0 {
        blocks.push(0);
    }
    if present {
        *blocks.last_mut().expect("block pushed above") |= 1u64 << (len & 63);
    }
}

/// Number of present rows among the first `len` (counts set bits with a
/// masked tail block).
fn bit_count(blocks: &[u64], len: usize) -> usize {
    let full = len >> 6;
    let mut n: usize = blocks[..full].iter().map(|b| b.count_ones() as usize).sum();
    if len & 63 != 0 {
        n += (blocks[full] & ((1u64 << (len & 63)) - 1)).count_ones() as usize;
    }
    n
}

/// A dense integer column: values plus a validity bitmap. The value slot of
/// a missing row holds an unspecified placeholder and must not be read.
#[derive(Clone, Debug, Default)]
pub struct IntColumn {
    data: Vec<i64>,
    validity: Vec<u64>,
}

impl IntColumn {
    fn with_capacity(cap: usize) -> IntColumn {
        IntColumn {
            data: Vec::with_capacity(cap),
            validity: Vec::with_capacity(cap.div_ceil(64)),
        }
    }

    #[inline]
    fn get(&self, row: RowId) -> Option<i64> {
        let v = self.data[row];
        if bit_get(&self.validity, row) {
            Some(v)
        } else {
            None
        }
    }

    #[inline]
    fn push(&mut self, value: Option<i64>) {
        bit_push(&mut self.validity, self.data.len(), value.is_some());
        self.data.push(value.unwrap_or(0));
    }

    #[inline]
    fn set(&mut self, row: RowId, value: Option<i64>) {
        if let Some(x) = value {
            self.data[row] = x;
        }
        bit_set(&mut self.validity, row, value.is_some());
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<i64>()
            + self.validity.capacity() * std::mem::size_of::<u64>()
    }
}

/// A dictionary-encoded categorical column: dense `u32` codes plus the
/// per-column dictionary (code → [`Sym`], insertion-ordered) and its reverse
/// index. The code slot of a missing row holds an unspecified placeholder.
#[derive(Clone, Debug, Default)]
pub struct SymColumn {
    codes: Vec<u32>,
    validity: Vec<u64>,
    dict: Vec<Sym>,
    index: HashMap<Sym, u32>,
}

impl SymColumn {
    fn with_capacity(cap: usize) -> SymColumn {
        SymColumn {
            codes: Vec::with_capacity(cap),
            validity: Vec::with_capacity(cap.div_ceil(64)),
            dict: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// The code for `sym`, inserting it into the dictionary if new.
    #[inline]
    fn code_for(&mut self, sym: Sym) -> u32 {
        if let Some(&c) = self.index.get(&sym) {
            return c;
        }
        let c = u32::try_from(self.dict.len()).expect("dictionary exceeds u32 codes");
        self.dict.push(sym);
        self.index.insert(sym, c);
        c
    }

    #[inline]
    fn get(&self, row: RowId) -> Option<Sym> {
        let c = self.codes[row];
        if bit_get(&self.validity, row) {
            Some(self.dict[c as usize])
        } else {
            None
        }
    }

    #[inline]
    fn push(&mut self, value: Option<Sym>) {
        bit_push(&mut self.validity, self.codes.len(), value.is_some());
        match value {
            Some(s) => {
                let c = self.code_for(s);
                self.codes.push(c);
            }
            None => self.codes.push(0),
        }
    }

    #[inline]
    fn set(&mut self, row: RowId, value: Option<Sym>) {
        if let Some(s) = value {
            self.codes[row] = self.code_for(s);
        }
        bit_set(&mut self.validity, row, value.is_some());
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.codes.capacity() * std::mem::size_of::<u32>()
            + self.validity.capacity() * std::mem::size_of::<u64>()
            + self.dict.capacity() * std::mem::size_of::<Sym>()
            + self.index.capacity() * (std::mem::size_of::<(Sym, u32)>() + 8)
    }
}

/// One column of data. The variant always matches the schema's declared type.
#[derive(Clone, Debug)]
pub enum ColumnData {
    /// Integer column.
    Int(IntColumn),
    /// Categorical column (dictionary-encoded).
    Str(SymColumn),
}

impl ColumnData {
    fn new(dtype: Dtype) -> ColumnData {
        ColumnData::with_capacity(dtype, 0)
    }

    fn with_capacity(dtype: Dtype, cap: usize) -> ColumnData {
        match dtype {
            Dtype::Int => ColumnData::Int(IntColumn::with_capacity(cap)),
            Dtype::Str => ColumnData::Str(SymColumn::with_capacity(cap)),
        }
    }

    fn len(&self) -> usize {
        match self {
            ColumnData::Int(c) => c.data.len(),
            ColumnData::Str(c) => c.codes.len(),
        }
    }

    fn get(&self, row: RowId) -> Option<Value> {
        match self {
            ColumnData::Int(c) => c.get(row).map(Value::Int),
            ColumnData::Str(c) => c.get(row).map(Value::Str),
        }
    }

    fn push(&mut self, value: Option<Value>) -> std::result::Result<(), Dtype> {
        match (self, value) {
            (ColumnData::Int(c), Some(Value::Int(x))) => c.push(Some(x)),
            (ColumnData::Int(c), None) => c.push(None),
            (ColumnData::Str(c), Some(Value::Str(s))) => c.push(Some(s)),
            (ColumnData::Str(c), None) => c.push(None),
            (ColumnData::Int(_), Some(other)) | (ColumnData::Str(_), Some(other)) => {
                return Err(other.dtype())
            }
        }
        Ok(())
    }

    fn set(&mut self, row: RowId, value: Option<Value>) -> std::result::Result<(), Dtype> {
        match (self, value) {
            (ColumnData::Int(c), Some(Value::Int(x))) => c.set(row, Some(x)),
            (ColumnData::Int(c), None) => c.set(row, None),
            (ColumnData::Str(c), Some(Value::Str(s))) => c.set(row, Some(s)),
            (ColumnData::Str(c), None) => c.set(row, None),
            (ColumnData::Int(_), Some(other)) | (ColumnData::Str(_), Some(other)) => {
                return Err(other.dtype())
            }
        }
        Ok(())
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        match self {
            ColumnData::Int(c) => c.heap_bytes(),
            ColumnData::Str(c) => c.heap_bytes(),
        }
    }
}

/// A borrowed view of one integer column — **the primary read API** for hot
/// loops (conflict-hypergraph enumeration, index building, partitioning):
/// dense values + validity bits through one slice pair, no `Option<Value>`
/// construction per access.
#[derive(Clone, Copy, Debug)]
pub struct IntColumnView<'a> {
    data: &'a [i64],
    validity: &'a [u64],
}

impl<'a> IntColumnView<'a> {
    /// Reads a cell; `None` means the cell is missing.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    #[inline]
    pub fn get(&self, row: RowId) -> Option<i64> {
        let v = self.data[row];
        if bit_get(self.validity, row) {
            Some(v)
        } else {
            None
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The packed validity bitmap: bit `row & 63` of word `row >> 6` is set
    /// iff the cell is present. Bits at positions `>= len()` are zero. This
    /// is the word-wise scan API — Phase 1 builds whole-relation
    /// empty/match bitmaps by AND/OR-ing these words instead of probing
    /// rows one bit at a time.
    pub fn validity_words(&self) -> &'a [u64] {
        self.validity
    }
}

/// A borrowed view of one dictionary-encoded categorical column (see
/// [`IntColumnView`]). Besides decoded [`Sym`] reads it exposes the raw
/// `u32` codes and the per-column dictionary, which grouping and
/// partitioning use to avoid re-hashing symbols per row.
#[derive(Clone, Copy, Debug)]
pub struct SymColumnView<'a> {
    codes: &'a [u32],
    validity: &'a [u64],
    dict: &'a [Sym],
    index: &'a HashMap<Sym, u32>,
}

impl<'a> SymColumnView<'a> {
    /// Reads a cell; `None` means the cell is missing.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    #[inline]
    pub fn get(&self, row: RowId) -> Option<Sym> {
        let c = self.codes[row];
        if bit_get(self.validity, row) {
            Some(self.dict[c as usize])
        } else {
            None
        }
    }

    /// Reads the raw dictionary code of a cell; `None` when missing.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    #[inline]
    pub fn code(&self, row: RowId) -> Option<u32> {
        let c = self.codes[row];
        if bit_get(self.validity, row) {
            Some(c)
        } else {
            None
        }
    }

    /// The column's dictionary: `dict()[code]` is the symbol for `code`.
    /// Codes are insertion-ordered, not sorted.
    pub fn dict(&self) -> &'a [Sym] {
        self.dict
    }

    /// The code `sym` is encoded as in this column, if it occurs at all —
    /// the typed probe for equality filters (a miss means no row of this
    /// column can ever equal `sym`).
    #[inline]
    pub fn code_of(&self, sym: Sym) -> Option<u32> {
        self.index.get(&sym).copied()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `true` if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The packed validity bitmap (see
    /// [`IntColumnView::validity_words`]): bit `row & 63` of word
    /// `row >> 6` is set iff the cell is present; bits `>= len()` are zero.
    pub fn validity_words(&self) -> &'a [u64] {
        self.validity
    }
}

/// A named relation instance: a schema plus columnar data.
#[derive(Clone, Debug)]
pub struct Relation {
    name: String,
    schema: Schema,
    cols: Vec<ColumnData>,
    n_rows: usize,
    /// Lazily-computed sampled column statistics (see `crate::stats`);
    /// version-stamped, invalidated on mutation, reset on clone.
    stats: crate::stats::StatsCache,
}

impl Relation {
    /// Creates an empty relation.
    pub fn new(name: &str, schema: Schema) -> Relation {
        let cols = schema
            .columns()
            .iter()
            .map(|c| ColumnData::new(c.dtype))
            .collect();
        Relation {
            name: name.to_owned(),
            schema,
            cols,
            n_rows: 0,
            stats: Default::default(),
        }
    }

    /// Creates an empty relation with row capacity pre-reserved.
    pub fn with_capacity(name: &str, schema: Schema, cap: usize) -> Relation {
        let cols = schema
            .columns()
            .iter()
            .map(|c| ColumnData::with_capacity(c.dtype, cap))
            .collect();
        Relation {
            name: name.to_owned(),
            schema,
            cols,
            n_rows: 0,
            stats: Default::default(),
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the relation (used when deriving `R̂1` from `R1`).
    pub fn set_name(&mut self, name: &str) {
        self.name = name.to_owned();
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// `true` if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Appends a row given one optional value per column (in schema order).
    pub fn push_row(&mut self, row: &[Option<Value>]) -> Result<RowId> {
        if row.len() != self.schema.len() {
            return Err(TableError::ArityMismatch {
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        // Validate every cell before mutating so a failed push cannot leave
        // columns with unequal lengths.
        for (i, v) in row.iter().enumerate() {
            if let Some(v) = v {
                let expected = self.schema.column(i).dtype;
                if v.dtype() != expected {
                    return Err(TableError::TypeMismatch {
                        column: self.schema.column(i).name.clone(),
                        expected,
                        got: v.dtype(),
                    });
                }
            }
        }
        for (col, v) in self.cols.iter_mut().zip(row.iter()) {
            col.push(*v).expect("types validated above");
        }
        self.stats.bump();
        self.n_rows += 1;
        debug_assert!(self.cols.iter().all(|c| c.len() == self.n_rows));
        Ok(self.n_rows - 1)
    }

    /// Appends a row where every cell is present.
    pub fn push_full_row(&mut self, row: &[Value]) -> Result<RowId> {
        let opts: Vec<Option<Value>> = row.iter().map(|v| Some(*v)).collect();
        self.push_row(&opts)
    }

    /// Reads a cell as a boxed [`Value`]; `None` means the cell is missing.
    ///
    /// **Cold path.** This is the convenience accessor for tests, CSV
    /// snapshots and debug printing; solver hot loops must go through the
    /// typed views ([`Relation::int_view`] / [`Relation::sym_view`]) or the
    /// typed scalar reads ([`Relation::get_int`] / [`Relation::get_sym`]).
    ///
    /// # Panics
    /// Panics if `row` or `col` is out of bounds.
    #[inline]
    pub fn get(&self, row: RowId, col: ColId) -> Option<Value> {
        self.cols[col].get(row)
    }

    /// Reads an integer cell directly (typed hot path).
    #[inline]
    pub fn get_int(&self, row: RowId, col: ColId) -> Option<i64> {
        match &self.cols[col] {
            ColumnData::Int(c) => c.get(row),
            ColumnData::Str(_) => None,
        }
    }

    /// Reads a categorical cell directly (typed hot path).
    #[inline]
    pub fn get_sym(&self, row: RowId, col: ColId) -> Option<Sym> {
        match &self.cols[col] {
            ColumnData::Str(c) => c.get(row),
            ColumnData::Int(_) => None,
        }
    }

    /// Borrows an integer column as a typed view, or `None` when `col` is
    /// categorical.
    #[inline]
    pub fn int_view(&self, col: ColId) -> Option<IntColumnView<'_>> {
        match &self.cols[col] {
            ColumnData::Int(c) => Some(IntColumnView {
                data: &c.data,
                validity: &c.validity,
            }),
            ColumnData::Str(_) => None,
        }
    }

    /// Borrows a categorical column as a typed view, or `None` when `col`
    /// is an integer column.
    #[inline]
    pub fn sym_view(&self, col: ColId) -> Option<SymColumnView<'_>> {
        match &self.cols[col] {
            ColumnData::Str(c) => Some(SymColumnView {
                codes: &c.codes,
                validity: &c.validity,
                dict: &c.dict,
                index: &c.index,
            }),
            ColumnData::Int(_) => None,
        }
    }

    /// Writes a cell (use `None` to blank it).
    pub fn set(&mut self, row: RowId, col: ColId, value: Option<Value>) -> Result<()> {
        if row >= self.n_rows {
            return Err(TableError::RowOutOfBounds {
                row,
                len: self.n_rows,
            });
        }
        self.stats.bump();
        self.cols[col]
            .set(row, value)
            .map_err(|got| TableError::TypeMismatch {
                column: self.schema.column(col).name.clone(),
                expected: self.schema.column(col).dtype,
                got,
            })
    }

    /// Writes a batch of present integer cells into one column — the typed
    /// bulk-write path for Phase 1's completion loops. Bounds and the
    /// column type are validated once for the whole batch (rejecting the
    /// batch without a partial write), then cells are stored directly,
    /// skipping the per-call [`Value`] boxing and per-cell checks of
    /// [`Relation::set`].
    pub fn batch_set_ints(&mut self, col: ColId, cells: &[(RowId, i64)]) -> Result<()> {
        if let Some(&(row, _)) = cells.iter().find(|&&(row, _)| row >= self.n_rows) {
            return Err(TableError::RowOutOfBounds {
                row,
                len: self.n_rows,
            });
        }
        self.stats.bump();
        match &mut self.cols[col] {
            ColumnData::Int(c) => {
                for &(row, x) in cells {
                    c.data[row] = x;
                    bit_set(&mut c.validity, row, true);
                }
                Ok(())
            }
            ColumnData::Str(_) => Err(TableError::TypeMismatch {
                column: self.schema.column(col).name.clone(),
                expected: self.schema.column(col).dtype,
                got: Dtype::Int,
            }),
        }
    }

    /// Writes a batch of present categorical cells into one column (see
    /// [`Relation::batch_set_ints`]). Each symbol is interned into the
    /// column dictionary at most once per distinct value.
    pub fn batch_set_syms(&mut self, col: ColId, cells: &[(RowId, Sym)]) -> Result<()> {
        if let Some(&(row, _)) = cells.iter().find(|&&(row, _)| row >= self.n_rows) {
            return Err(TableError::RowOutOfBounds {
                row,
                len: self.n_rows,
            });
        }
        self.stats.bump();
        match &mut self.cols[col] {
            ColumnData::Str(c) => {
                for &(row, s) in cells {
                    c.codes[row] = c.code_for(s);
                    bit_set(&mut c.validity, row, true);
                }
                Ok(())
            }
            ColumnData::Int(_) => Err(TableError::TypeMismatch {
                column: self.schema.column(col).name.clone(),
                expected: self.schema.column(col).dtype,
                got: Dtype::Str,
            }),
        }
    }

    /// Blanks every cell of a column (e.g. erasing the FK column of `R1`).
    /// O(rows/64): clears the validity bitmap, leaving data slots in place.
    pub fn clear_column(&mut self, col: ColId) {
        self.stats.bump();
        match &mut self.cols[col] {
            ColumnData::Int(c) => c.validity.iter_mut().for_each(|b| *b = 0),
            ColumnData::Str(c) => c.validity.iter_mut().for_each(|b| *b = 0),
        }
    }

    /// `true` if every cell of `col` is missing.
    pub fn column_is_missing(&self, col: ColId) -> bool {
        let validity = match &self.cols[col] {
            ColumnData::Int(c) => &c.validity,
            ColumnData::Str(c) => &c.validity,
        };
        bit_count(validity, self.n_rows) == 0
    }

    /// `true` if every cell of `col` is present.
    pub fn column_is_complete(&self, col: ColId) -> bool {
        let validity = match &self.cols[col] {
            ColumnData::Int(c) => &c.validity,
            ColumnData::Str(c) => &c.validity,
        };
        bit_count(validity, self.n_rows) == self.n_rows
    }

    /// Materializes one row as a vector of optional values (cold path; see
    /// [`Relation::get`]).
    pub fn row(&self, row: RowId) -> Vec<Option<Value>> {
        (0..self.schema.len()).map(|c| self.get(row, c)).collect()
    }

    /// Iterates over all row ids.
    pub fn rows(&self) -> impl Iterator<Item = RowId> + '_ {
        0..self.n_rows
    }

    /// Distinct present values in a column, sorted.
    pub fn distinct_values(&self, col: ColId) -> Vec<Value> {
        match &self.cols[col] {
            ColumnData::Int(c) => {
                let mut vals: Vec<Value> = (0..self.n_rows)
                    .filter_map(|r| c.get(r).map(Value::Int))
                    .collect();
                vals.sort();
                vals.dedup();
                vals
            }
            ColumnData::Str(c) => {
                // Scan codes once; the dictionary may hold symbols no longer
                // present (overwritten via `set`), so presence is per-row.
                let mut used = vec![false; c.dict.len()];
                for r in 0..self.n_rows {
                    if bit_get(&c.validity, r) {
                        used[c.codes[r] as usize] = true;
                    }
                }
                let mut vals: Vec<Value> = c
                    .dict
                    .iter()
                    .zip(&used)
                    .filter(|(_, &u)| u)
                    .map(|(&s, _)| Value::Str(s))
                    .collect();
                vals.sort();
                vals
            }
        }
    }

    /// Minimum and maximum present values of an integer column.
    pub fn int_range(&self, col: ColId) -> Option<(i64, i64)> {
        match &self.cols[col] {
            ColumnData::Int(c) => {
                let mut it = (0..self.n_rows).filter_map(|r| c.get(r));
                let first = it.next()?;
                let (mut lo, mut hi) = (first, first);
                for x in it {
                    lo = lo.min(x);
                    hi = hi.max(x);
                }
                Some((lo, hi))
            }
            ColumnData::Str(_) => None,
        }
    }

    /// Builds a lookup from key value to the rows holding it (cold path —
    /// per-solve key indexes; hot partition indexes live in the conflict
    /// builder).
    pub fn index_by(&self, col: ColId) -> HashMap<Value, Vec<RowId>> {
        let mut map: HashMap<Value, Vec<RowId>> = HashMap::new();
        for r in 0..self.n_rows {
            if let Some(v) = self.get(r, col) {
                map.entry(v).or_default().push(r);
            }
        }
        map
    }

    /// Approximate heap footprint of the relation's column buffers, in
    /// bytes (the [`MemStats`](crate::MemStats) accounting hook).
    pub fn heap_bytes(&self) -> usize {
        self.cols.iter().map(ColumnData::heap_bytes).sum()
    }

    /// The version-stamped stats cache (`crate::stats` implements
    /// [`Relation::column_stats`] on top of it).
    #[inline]
    pub(crate) fn stats_cache(&self) -> &crate::stats::StatsCache {
        &self.stats
    }
}

impl fmt::Display for Relation {
    /// Pretty-prints up to 20 rows — intended for examples and debugging.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} {} [{} rows]", self.name, self.schema, self.n_rows)?;
        let shown = self.n_rows.min(20);
        for r in 0..shown {
            write!(f, "  ")?;
            for c in 0..self.schema.len() {
                if c > 0 {
                    write!(f, " | ")?;
                }
                match self.get(r, c) {
                    Some(v) => write!(f, "{v}")?,
                    None => write!(f, "?")?,
                }
            }
            writeln!(f)?;
        }
        if shown < self.n_rows {
            writeln!(f, "  … {} more rows", self.n_rows - shown)?;
        }
        Ok(())
    }
}

/// Bulk-load path for the columnar engine: reserve once, append columnar
/// chunks per column in any order, then [`freeze`](RelationBuilder::freeze)
/// into a [`Relation`] — the load-then-index split (generators fill whole
/// columns without materializing `&[Option<Value>]` rows, and per-column
/// dictionaries build as data streams in).
///
/// Columns may grow independently between calls; `freeze` verifies they all
/// reached the same length and rejects ragged loads.
///
/// ```
/// use cextend_table::{ColumnDef, Dtype, RelationBuilder, Schema, Sym};
///
/// let schema = Schema::new(vec![
///     ColumnDef::key("id", Dtype::Int),
///     ColumnDef::attr("Area", Dtype::Str),
/// ]).unwrap();
/// let mut b = RelationBuilder::new("Housing", schema, 3);
/// b.append_ints(0, &[1, 2, 3]).unwrap();
/// b.append_syms(1, &[Sym::intern("NYC"), Sym::intern("NYC")]).unwrap();
/// b.append_missing(1, 1);
/// let rel = b.freeze().unwrap();
/// assert_eq!(rel.n_rows(), 3);
/// assert_eq!(rel.get_sym(2, 1), None);
/// ```
#[derive(Debug)]
pub struct RelationBuilder {
    name: String,
    schema: Schema,
    cols: Vec<ColumnData>,
}

impl RelationBuilder {
    /// Starts a bulk load with `cap` rows reserved per column.
    pub fn new(name: &str, schema: Schema, cap: usize) -> RelationBuilder {
        let cols = schema
            .columns()
            .iter()
            .map(|c| ColumnData::with_capacity(c.dtype, cap))
            .collect();
        RelationBuilder {
            name: name.to_owned(),
            schema,
            cols,
        }
    }

    /// The schema being loaded against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Rows appended to column `col` so far.
    pub fn col_len(&self, col: ColId) -> usize {
        self.cols[col].len()
    }

    fn type_err(&self, col: ColId, got: Dtype) -> TableError {
        TableError::TypeMismatch {
            column: self.schema.column(col).name.clone(),
            expected: self.schema.column(col).dtype,
            got,
        }
    }

    /// Appends a chunk of present integers to column `col`.
    pub fn append_ints(&mut self, col: ColId, chunk: &[i64]) -> Result<()> {
        match &mut self.cols[col] {
            ColumnData::Int(c) => {
                for &x in chunk {
                    c.push(Some(x));
                }
                Ok(())
            }
            ColumnData::Str(_) => Err(self.type_err(col, Dtype::Int)),
        }
    }

    /// Appends a chunk of optional integers to column `col`.
    pub fn append_opt_ints(&mut self, col: ColId, chunk: &[Option<i64>]) -> Result<()> {
        match &mut self.cols[col] {
            ColumnData::Int(c) => {
                for &x in chunk {
                    c.push(x);
                }
                Ok(())
            }
            ColumnData::Str(_) => Err(self.type_err(col, Dtype::Int)),
        }
    }

    /// Appends a chunk of present symbols to column `col`.
    pub fn append_syms(&mut self, col: ColId, chunk: &[Sym]) -> Result<()> {
        match &mut self.cols[col] {
            ColumnData::Str(c) => {
                for &s in chunk {
                    c.push(Some(s));
                }
                Ok(())
            }
            ColumnData::Int(_) => Err(self.type_err(col, Dtype::Str)),
        }
    }

    /// Appends a chunk of optional symbols to column `col`.
    pub fn append_opt_syms(&mut self, col: ColId, chunk: &[Option<Sym>]) -> Result<()> {
        match &mut self.cols[col] {
            ColumnData::Str(c) => {
                for &s in chunk {
                    c.push(s);
                }
                Ok(())
            }
            ColumnData::Int(_) => Err(self.type_err(col, Dtype::Str)),
        }
    }

    /// Appends `n` missing cells to column `col` (e.g. the erased FK column
    /// or the `R2`-side columns of a fresh join view).
    pub fn append_missing(&mut self, col: ColId, n: usize) {
        match &mut self.cols[col] {
            ColumnData::Int(c) => {
                for _ in 0..n {
                    c.push(None);
                }
            }
            ColumnData::Str(c) => {
                for _ in 0..n {
                    c.push(None);
                }
            }
        }
    }

    /// Appends a chunk of optional boxed values (type-checked per cell) —
    /// the generic adapter for callers that already hold `Value`s.
    pub fn append_values(&mut self, col: ColId, chunk: &[Option<Value>]) -> Result<()> {
        for &v in chunk {
            if let Err(got) = self.cols[col].push(v) {
                return Err(self.type_err(col, got));
            }
        }
        Ok(())
    }

    /// Verifies all columns reached the same length and produces the
    /// relation. Ragged loads are rejected with
    /// [`TableError::ColumnLengthMismatch`].
    pub fn freeze(self) -> Result<Relation> {
        let n_rows = self.cols.first().map_or(0, ColumnData::len);
        for (i, col) in self.cols.iter().enumerate() {
            if col.len() != n_rows {
                return Err(TableError::ColumnLengthMismatch {
                    relation: self.name,
                    column: self.schema.column(i).name.clone(),
                    expected: n_rows,
                    got: col.len(),
                });
            }
        }
        Ok(Relation {
            name: self.name,
            schema: self.schema,
            cols: self.cols,
            n_rows,
            stats: Default::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn small() -> Relation {
        let schema = Schema::new(vec![
            ColumnDef::key("pid", Dtype::Int),
            ColumnDef::attr("Age", Dtype::Int),
            ColumnDef::attr("Rel", Dtype::Str),
            ColumnDef::foreign_key("hid", Dtype::Int),
        ])
        .unwrap();
        let mut r = Relation::new("Persons", schema);
        r.push_row(&[
            Some(Value::Int(1)),
            Some(Value::Int(75)),
            Some(Value::str("Owner")),
            None,
        ])
        .unwrap();
        r.push_row(&[
            Some(Value::Int(2)),
            Some(Value::Int(24)),
            Some(Value::str("Spouse")),
            None,
        ])
        .unwrap();
        r
    }

    #[test]
    fn push_and_get() {
        let r = small();
        assert_eq!(r.n_rows(), 2);
        assert_eq!(r.get(0, 1), Some(Value::Int(75)));
        assert_eq!(r.get(1, 2), Some(Value::str("Spouse")));
        assert_eq!(r.get(0, 3), None);
        assert_eq!(r.get_int(0, 1), Some(75));
        assert_eq!(r.get_sym(1, 2), Some(Sym::intern("Spouse")));
        // Typed accessor on the wrong column type yields None.
        assert_eq!(r.get_int(0, 2), None);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut r = small();
        let err = r.push_row(&[
            Some(Value::Int(3)),
            Some(Value::str("oops")),
            Some(Value::str("Owner")),
            None,
        ]);
        assert!(matches!(err, Err(TableError::TypeMismatch { .. })));
        // Failed push must not corrupt the relation: row count unchanged and
        // every column still has exactly `n_rows` cells.
        assert_eq!(r.n_rows(), 2);
        let ok = r.push_row(&[
            Some(Value::Int(3)),
            Some(Value::Int(40)),
            Some(Value::str("Owner")),
            None,
        ]);
        assert!(ok.is_ok());
        assert_eq!(r.n_rows(), 3);
        assert_eq!(r.get(2, 1), Some(Value::Int(40)));
        let err = r.set(0, 1, Some(Value::str("oops")));
        assert!(matches!(err, Err(TableError::TypeMismatch { .. })));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut r = small();
        let err = r.push_row(&[Some(Value::Int(3))]);
        assert!(matches!(err, Err(TableError::ArityMismatch { .. })));
    }

    #[test]
    fn set_and_clear_column() {
        let mut r = small();
        assert!(r.column_is_missing(3));
        r.set(0, 3, Some(Value::Int(7))).unwrap();
        assert!(!r.column_is_missing(3));
        assert!(!r.column_is_complete(3));
        r.set(1, 3, Some(Value::Int(8))).unwrap();
        assert!(r.column_is_complete(3));
        r.clear_column(3);
        assert!(r.column_is_missing(3));
    }

    #[test]
    fn set_out_of_bounds() {
        let mut r = small();
        assert!(matches!(
            r.set(99, 0, None),
            Err(TableError::RowOutOfBounds { .. })
        ));
    }

    #[test]
    fn distinct_and_range() {
        let r = small();
        assert_eq!(
            r.distinct_values(2),
            vec![Value::str("Owner"), Value::str("Spouse")]
        );
        assert_eq!(r.int_range(1), Some((24, 75)));
        assert_eq!(r.int_range(2), None);
        // Missing column has no distinct values and no range.
        assert_eq!(r.distinct_values(3), vec![]);
        assert_eq!(r.int_range(3), None);
    }

    #[test]
    fn distinct_values_ignores_stale_dictionary_entries() {
        // Overwriting the only occurrence of a symbol leaves it in the
        // column dictionary but out of the data; distinct_values must not
        // report it.
        let schema = Schema::new(vec![ColumnDef::attr("Rel", Dtype::Str)]).unwrap();
        let mut r = Relation::new("t", schema);
        r.push_full_row(&[Value::str("Gone")]).unwrap();
        r.set(0, 0, Some(Value::str("Here"))).unwrap();
        assert_eq!(r.distinct_values(0), vec![Value::str("Here")]);
    }

    #[test]
    fn index_by_groups_rows() {
        let mut r = small();
        r.set(0, 3, Some(Value::Int(5))).unwrap();
        r.set(1, 3, Some(Value::Int(5))).unwrap();
        let idx = r.index_by(3);
        assert_eq!(idx[&Value::Int(5)], vec![0, 1]);
    }

    #[test]
    fn display_renders_missing_as_question_mark() {
        let r = small();
        let s = r.to_string();
        assert!(s.contains('?'));
        assert!(s.contains("Owner"));
    }

    #[test]
    fn typed_views_read_raw_cells() {
        let mut r = small();
        r.set(0, 3, Some(Value::Int(9))).unwrap();
        let ages = r.int_view(1).unwrap();
        assert_eq!(ages.len(), 2);
        assert!(!ages.is_empty());
        assert_eq!(ages.get(0), Some(75));
        assert_eq!(ages.get(1), Some(24));
        let rels = r.sym_view(2).unwrap();
        assert_eq!(rels.get(0), Some(Sym::intern("Owner")));
        let hid = r.int_view(3).unwrap();
        assert_eq!(hid.get(0), Some(9));
        assert_eq!(hid.get(1), None);
        // Wrong-type requests return None instead of panicking.
        assert!(r.int_view(2).is_none());
        assert!(r.sym_view(1).is_none());
    }

    #[test]
    fn sym_view_exposes_dictionary_codes() {
        let r = small();
        let rels = r.sym_view(2).unwrap();
        // Codes are insertion-ordered: Owner was seen first.
        assert_eq!(rels.code(0), Some(0));
        assert_eq!(rels.code(1), Some(1));
        assert_eq!(rels.dict(), &[Sym::intern("Owner"), Sym::intern("Spouse")]);
        assert_eq!(rels.code_of(Sym::intern("Spouse")), Some(1));
        assert_eq!(rels.code_of(Sym::intern("NotThere")), None);
        // Same symbol always maps to the same code.
        assert_eq!(rels.get(0).map(|s| rels.code_of(s).unwrap()), rels.code(0));
    }

    #[test]
    fn batch_set_writes_cells_and_validates_once() {
        let mut r = small();
        r.batch_set_ints(3, &[(0, 7), (1, 8)]).unwrap();
        assert_eq!(r.get_int(0, 3), Some(7));
        assert_eq!(r.get_int(1, 3), Some(8));
        assert!(r.column_is_complete(3));
        r.batch_set_syms(2, &[(1, Sym::intern("Child"))]).unwrap();
        assert_eq!(r.get_sym(1, 2), Some(Sym::intern("Child")));
        // An empty batch is a no-op.
        r.batch_set_ints(3, &[]).unwrap();
        // Any out-of-bounds row rejects the whole batch with no partial
        // write.
        let err = r.batch_set_ints(3, &[(0, 99), (5, 1)]);
        assert!(matches!(err, Err(TableError::RowOutOfBounds { .. })));
        assert_eq!(r.get_int(0, 3), Some(7));
        // Wrong-typed column rejects the batch.
        assert!(matches!(
            r.batch_set_ints(2, &[(0, 1)]),
            Err(TableError::TypeMismatch { .. })
        ));
        assert!(matches!(
            r.batch_set_syms(1, &[(0, Sym::intern("x"))]),
            Err(TableError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn batch_set_matches_per_cell_set() {
        let schema = Schema::new(vec![
            ColumnDef::attr("x", Dtype::Int),
            ColumnDef::attr("s", Dtype::Str),
        ])
        .unwrap();
        let mut a = Relation::new("t", schema.clone());
        let mut b = Relation::new("t", schema);
        for _ in 0..130 {
            a.push_row(&[None, None]).unwrap();
            b.push_row(&[None, None]).unwrap();
        }
        let ints: Vec<(RowId, i64)> = (0..130).step_by(3).map(|r| (r, r as i64 * 2)).collect();
        let syms: Vec<(RowId, Sym)> = (0..130)
            .step_by(5)
            .map(|r| (r, Sym::intern(["p", "q"][r % 2])))
            .collect();
        a.batch_set_ints(0, &ints).unwrap();
        a.batch_set_syms(1, &syms).unwrap();
        for &(r, x) in &ints {
            b.set(r, 0, Some(Value::Int(x))).unwrap();
        }
        for &(r, s) in &syms {
            b.set(r, 1, Some(Value::Str(s))).unwrap();
        }
        assert!(crate::join::relations_equal_ordered(&a, &b));
    }

    #[test]
    fn view_validity_words_expose_the_bitmap() {
        let schema = Schema::new(vec![
            ColumnDef::attr("x", Dtype::Int),
            ColumnDef::attr("s", Dtype::Str),
        ])
        .unwrap();
        let mut r = Relation::new("t", schema);
        for i in 0..70 {
            let present = i % 2 == 0;
            r.push_row(&[
                present.then_some(Value::Int(i)),
                present.then(|| Value::str("v")),
            ])
            .unwrap();
        }
        let iw = r.int_view(0).unwrap().validity_words().to_vec();
        let sw = r.sym_view(1).unwrap().validity_words().to_vec();
        assert_eq!(iw, sw);
        assert_eq!(iw.len(), 2);
        for row in 0..70usize {
            let bit = (iw[row >> 6] >> (row & 63)) & 1 == 1;
            assert_eq!(bit, row % 2 == 0, "row {row}");
        }
        // Bits beyond n_rows stay zero.
        assert_eq!(iw[1] >> (70 - 64), 0);
    }

    #[test]
    fn push_full_row_roundtrip() {
        let schema = Schema::new(vec![ColumnDef::attr("x", Dtype::Int)]).unwrap();
        let mut r = Relation::new("t", schema);
        r.push_full_row(&[Value::Int(9)]).unwrap();
        assert_eq!(r.row(0), vec![Some(Value::Int(9))]);
    }

    #[test]
    fn validity_bitmap_crosses_block_boundaries() {
        // 130 rows > two 64-bit blocks; alternate present/missing.
        let schema = Schema::new(vec![ColumnDef::attr("x", Dtype::Int)]).unwrap();
        let mut r = Relation::new("t", schema);
        for i in 0..130 {
            let v = if i % 2 == 0 {
                Some(Value::Int(i))
            } else {
                None
            };
            r.push_row(&[v]).unwrap();
        }
        let view = r.int_view(0).unwrap();
        for i in 0..130usize {
            let expect = if i % 2 == 0 { Some(i as i64) } else { None };
            assert_eq!(view.get(i), expect, "row {i}");
        }
        assert!(!r.column_is_missing(0));
        assert!(!r.column_is_complete(0));
    }

    #[test]
    fn builder_bulk_load_matches_push_rows() {
        let schema = Schema::new(vec![
            ColumnDef::key("id", Dtype::Int),
            ColumnDef::attr("Area", Dtype::Str),
            ColumnDef::foreign_key("fk", Dtype::Int),
        ])
        .unwrap();
        let mut b = RelationBuilder::new("t", schema.clone(), 4);
        b.append_ints(0, &[1, 2]).unwrap();
        b.append_ints(0, &[3, 4]).unwrap();
        b.append_syms(1, &[Sym::intern("a"), Sym::intern("b")])
            .unwrap();
        b.append_opt_syms(1, &[None, Some(Sym::intern("a"))])
            .unwrap();
        b.append_missing(2, 3);
        b.append_opt_ints(2, &[Some(7)]).unwrap();
        assert_eq!(b.col_len(0), 4);
        let built = b.freeze().unwrap();

        let mut pushed = Relation::new("t", schema);
        for (id, area, fk) in [
            (1, Some("a"), None),
            (2, Some("b"), None),
            (3, None, None),
            (4, Some("a"), Some(7)),
        ] {
            pushed
                .push_row(&[
                    Some(Value::Int(id)),
                    area.map(Value::str),
                    fk.map(Value::Int),
                ])
                .unwrap();
        }
        assert!(crate::join::relations_equal_ordered(&built, &pushed));
    }

    #[test]
    fn builder_rejects_ragged_and_mistyped_loads() {
        let schema = Schema::new(vec![
            ColumnDef::attr("x", Dtype::Int),
            ColumnDef::attr("s", Dtype::Str),
        ])
        .unwrap();
        let mut b = RelationBuilder::new("t", schema.clone(), 0);
        assert!(matches!(
            b.append_ints(1, &[1]),
            Err(TableError::TypeMismatch { .. })
        ));
        assert!(matches!(
            b.append_syms(0, &[Sym::intern("x")]),
            Err(TableError::TypeMismatch { .. })
        ));
        assert!(matches!(
            b.append_values(0, &[Some(Value::str("x"))]),
            Err(TableError::TypeMismatch { .. })
        ));
        b.append_ints(0, &[1, 2]).unwrap();
        b.append_syms(1, &[Sym::intern("a")]).unwrap();
        let err = b.freeze();
        assert!(matches!(err, Err(TableError::ColumnLengthMismatch { .. })));
    }

    #[test]
    fn builder_all_missing_column_freezes_clean() {
        let schema = Schema::new(vec![
            ColumnDef::attr("x", Dtype::Int),
            ColumnDef::attr("s", Dtype::Str),
        ])
        .unwrap();
        let mut b = RelationBuilder::new("t", schema, 100);
        b.append_ints(0, &(0..100).collect::<Vec<i64>>()).unwrap();
        b.append_missing(1, 100);
        let r = b.freeze().unwrap();
        assert!(r.column_is_missing(1));
        assert!(r.column_is_complete(0));
        // Freeze-then-set: the all-missing column accepts writes.
        let mut r = r;
        r.set(64, 1, Some(Value::str("late"))).unwrap();
        assert_eq!(r.get_sym(64, 1), Some(Sym::intern("late")));
        assert!(!r.column_is_missing(1));
    }

    #[test]
    fn heap_bytes_grows_with_rows() {
        let schema = Schema::new(vec![
            ColumnDef::attr("x", Dtype::Int),
            ColumnDef::attr("s", Dtype::Str),
        ])
        .unwrap();
        let empty = Relation::new("t", schema.clone()).heap_bytes();
        let mut r = Relation::new("t", schema);
        for i in 0..1000 {
            r.push_row(&[Some(Value::Int(i)), Some(Value::str("v"))])
                .unwrap();
        }
        // 1000 ints (8 B) + codes (4 B) + bitmaps: at least 12 KB.
        assert!(r.heap_bytes() >= empty + 12_000, "{}", r.heap_bytes());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::join::relations_equal_ordered;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::{Dtype, Value};
    use proptest::prelude::*;

    fn schema2() -> Schema {
        Schema::new(vec![
            ColumnDef::attr("i", Dtype::Int),
            ColumnDef::attr("s", Dtype::Str),
        ])
        .unwrap()
    }

    proptest! {
        // Validity bitmaps are the engine's correctness-critical state:
        // one bit per row packed into u64 words, so rows 63/64/65 (and the
        // final partial word) are the edge cases. Row counts up to 130
        // cross two word boundaries; an arbitrary chunk split exercises
        // the builder's append path landing mid-word.
        #[test]
        fn validity_bitmaps_survive_both_load_paths(
            ints in proptest::collection::vec(proptest::option::of(-4i64..4), 0..130usize),
            labels in proptest::collection::vec(proptest::option::of(0usize..3), 0..130usize),
            split in 0usize..130,
        ) {
            let n = ints.len().min(labels.len());
            let (ints, labels) = (&ints[..n], &labels[..n]);
            let sym_of = |l: usize| Value::str(["a", "b", "c"][l]);
            let int_vals: Vec<Option<Value>> =
                ints.iter().map(|i| i.map(Value::Int)).collect();
            let sym_vals: Vec<Option<Value>> =
                labels.iter().map(|&l| l.map(sym_of)).collect();

            // Path 1: incremental push_row.
            let mut pushed = Relation::new("t", schema2());
            for (i, s) in int_vals.iter().zip(&sym_vals) {
                pushed.push_row(&[*i, *s]).unwrap();
            }
            // Path 2: builder chunks split at an arbitrary row.
            let split = split.min(n);
            let mut b = RelationBuilder::new("t", schema2(), n);
            b.append_values(0, &int_vals[..split]).unwrap();
            b.append_values(0, &int_vals[split..]).unwrap();
            b.append_values(1, &sym_vals[..split]).unwrap();
            b.append_values(1, &sym_vals[split..]).unwrap();
            let built = b.freeze().unwrap();

            prop_assert!(relations_equal_ordered(&pushed, &built));
            // Boxed and typed reads both agree with the source data.
            let iv = built.int_view(0).unwrap();
            let sv = built.sym_view(1).unwrap();
            for row in 0..n {
                prop_assert_eq!(built.get(row, 0), int_vals[row].clone());
                prop_assert_eq!(iv.get(row), ints[row]);
                prop_assert_eq!(built.get(row, 1), sym_vals[row].clone());
                prop_assert_eq!(sv.get(row).is_some(), labels[row].is_some());
                prop_assert_eq!(built.get_int(row, 0), ints[row]);
            }
            // Column-level validity summaries match the source exactly.
            let present = ints.iter().filter(|i| i.is_some()).count();
            prop_assert_eq!(built.column_is_missing(0), present == 0);
            prop_assert_eq!(built.column_is_complete(0), present == n);
        }

        // clear_column → column_is_missing, then per-row set() restores
        // exactly the chosen rows — the erase/complete cycle every solve
        // performs on the FK column.
        #[test]
        fn clear_and_set_round_trip_validity(
            vals in proptest::collection::vec(-4i64..4, 1..130usize),
            restore_mask in proptest::collection::vec(proptest::bool::ANY, 1..130usize),
        ) {
            let n = vals.len().min(restore_mask.len());
            let (vals, restore_mask) = (&vals[..n], &restore_mask[..n]);
            let mut r = Relation::new("t", schema2());
            for &v in vals {
                r.push_row(&[Some(Value::Int(v)), None]).unwrap();
            }
            prop_assert!(r.column_is_complete(0));
            prop_assert!(r.column_is_missing(1));
            r.clear_column(0);
            prop_assert!(r.column_is_missing(0));
            for (row, &restore) in restore_mask.iter().enumerate() {
                if restore {
                    r.set(row, 0, Some(Value::Int(vals[row]))).unwrap();
                }
            }
            for (row, &restore) in restore_mask.iter().enumerate() {
                let expect = restore.then_some(vals[row]);
                prop_assert_eq!(r.get_int(row, 0), expect);
            }
            let restored = restore_mask.iter().filter(|&&m| m).count();
            prop_assert_eq!(r.column_is_complete(0), restored == n);
            prop_assert_eq!(r.column_is_missing(0), restored == 0);
        }
    }
}
