//! Columnar relations with missing cells.
//!
//! The C-Extension problem works on relations where an entire column can be
//! missing (the foreign key of `R1`, or the `B` columns of the join view
//! before Phase I completes them), and cells are filled in incrementally.
//! Storage is column-major with per-cell presence: `Vec<Option<i64>>` /
//! `Vec<Option<Sym>>`.

use crate::error::{Result, TableError};
use crate::schema::{ColId, Schema};
use crate::value::{Dtype, Sym, Value};
use std::fmt;

/// Index of a row within a relation.
pub type RowId = usize;

/// One column of data. The variant always matches the schema's declared type.
#[derive(Clone, Debug)]
pub enum ColumnData {
    /// Integer column.
    Int(Vec<Option<i64>>),
    /// Categorical column.
    Str(Vec<Option<Sym>>),
}

impl ColumnData {
    fn new(dtype: Dtype) -> ColumnData {
        match dtype {
            Dtype::Int => ColumnData::Int(Vec::new()),
            Dtype::Str => ColumnData::Str(Vec::new()),
        }
    }

    fn with_capacity(dtype: Dtype, cap: usize) -> ColumnData {
        match dtype {
            Dtype::Int => ColumnData::Int(Vec::with_capacity(cap)),
            Dtype::Str => ColumnData::Str(Vec::with_capacity(cap)),
        }
    }

    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    fn get(&self, row: RowId) -> Option<Value> {
        match self {
            ColumnData::Int(v) => v[row].map(Value::Int),
            ColumnData::Str(v) => v[row].map(Value::Str),
        }
    }

    fn push(&mut self, value: Option<Value>) -> std::result::Result<(), Dtype> {
        match (self, value) {
            (ColumnData::Int(v), Some(Value::Int(x))) => v.push(Some(x)),
            (ColumnData::Int(v), None) => v.push(None),
            (ColumnData::Str(v), Some(Value::Str(s))) => v.push(Some(s)),
            (ColumnData::Str(v), None) => v.push(None),
            (ColumnData::Int(_), Some(other)) | (ColumnData::Str(_), Some(other)) => {
                return Err(other.dtype())
            }
        }
        Ok(())
    }

    fn set(&mut self, row: RowId, value: Option<Value>) -> std::result::Result<(), Dtype> {
        match (self, value) {
            (ColumnData::Int(v), Some(Value::Int(x))) => v[row] = Some(x),
            (ColumnData::Int(v), None) => v[row] = None,
            (ColumnData::Str(v), Some(Value::Str(s))) => v[row] = Some(s),
            (ColumnData::Str(v), None) => v[row] = None,
            (ColumnData::Int(_), Some(other)) | (ColumnData::Str(_), Some(other)) => {
                return Err(other.dtype())
            }
        }
        Ok(())
    }
}

/// A borrowed view of one integer column: hot loops (conflict-hypergraph
/// enumeration, index building) read raw `Option<i64>` cells through a
/// single slice without re-matching the column's dtype or constructing an
/// `Option<Value>` per access.
#[derive(Clone, Copy, Debug)]
pub struct IntColumnView<'a> {
    cells: &'a [Option<i64>],
}

impl IntColumnView<'_> {
    /// Reads a cell; `None` means the cell is missing.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    #[inline]
    pub fn get(&self, row: RowId) -> Option<i64> {
        self.cells[row]
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// A borrowed view of one categorical column (see [`IntColumnView`]).
#[derive(Clone, Copy, Debug)]
pub struct SymColumnView<'a> {
    cells: &'a [Option<Sym>],
}

impl SymColumnView<'_> {
    /// Reads a cell; `None` means the cell is missing.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    #[inline]
    pub fn get(&self, row: RowId) -> Option<Sym> {
        self.cells[row]
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// A named relation instance: a schema plus column-major data.
#[derive(Clone, Debug)]
pub struct Relation {
    name: String,
    schema: Schema,
    cols: Vec<ColumnData>,
    n_rows: usize,
}

impl Relation {
    /// Creates an empty relation.
    pub fn new(name: &str, schema: Schema) -> Relation {
        let cols = schema
            .columns()
            .iter()
            .map(|c| ColumnData::new(c.dtype))
            .collect();
        Relation {
            name: name.to_owned(),
            schema,
            cols,
            n_rows: 0,
        }
    }

    /// Creates an empty relation with row capacity pre-reserved.
    pub fn with_capacity(name: &str, schema: Schema, cap: usize) -> Relation {
        let cols = schema
            .columns()
            .iter()
            .map(|c| ColumnData::with_capacity(c.dtype, cap))
            .collect();
        Relation {
            name: name.to_owned(),
            schema,
            cols,
            n_rows: 0,
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the relation (used when deriving `R̂1` from `R1`).
    pub fn set_name(&mut self, name: &str) {
        self.name = name.to_owned();
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// `true` if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Appends a row given one optional value per column (in schema order).
    pub fn push_row(&mut self, row: &[Option<Value>]) -> Result<RowId> {
        if row.len() != self.schema.len() {
            return Err(TableError::ArityMismatch {
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        // Validate every cell before mutating so a failed push cannot leave
        // columns with unequal lengths.
        for (i, v) in row.iter().enumerate() {
            if let Some(v) = v {
                let expected = self.schema.column(i).dtype;
                if v.dtype() != expected {
                    return Err(TableError::TypeMismatch {
                        column: self.schema.column(i).name.clone(),
                        expected,
                        got: v.dtype(),
                    });
                }
            }
        }
        for (col, v) in self.cols.iter_mut().zip(row.iter()) {
            col.push(*v).expect("types validated above");
        }
        self.n_rows += 1;
        debug_assert!(self.cols.iter().all(|c| c.len() == self.n_rows));
        Ok(self.n_rows - 1)
    }

    /// Appends a row where every cell is present.
    pub fn push_full_row(&mut self, row: &[Value]) -> Result<RowId> {
        let opts: Vec<Option<Value>> = row.iter().map(|v| Some(*v)).collect();
        self.push_row(&opts)
    }

    /// Reads a cell; `None` means the cell is missing.
    ///
    /// # Panics
    /// Panics if `row` or `col` is out of bounds (hot path; bounds were
    /// validated when the ids were produced).
    #[inline]
    pub fn get(&self, row: RowId, col: ColId) -> Option<Value> {
        self.cols[col].get(row)
    }

    /// Reads an integer cell directly (hot path for predicate evaluation).
    #[inline]
    pub fn get_int(&self, row: RowId, col: ColId) -> Option<i64> {
        match &self.cols[col] {
            ColumnData::Int(v) => v[row],
            ColumnData::Str(_) => None,
        }
    }

    /// Reads a categorical cell directly.
    #[inline]
    pub fn get_sym(&self, row: RowId, col: ColId) -> Option<Sym> {
        match &self.cols[col] {
            ColumnData::Str(v) => v[row],
            ColumnData::Int(_) => None,
        }
    }

    /// Borrows an integer column as a typed view, or `None` when `col` is
    /// categorical.
    #[inline]
    pub fn int_view(&self, col: ColId) -> Option<IntColumnView<'_>> {
        match &self.cols[col] {
            ColumnData::Int(v) => Some(IntColumnView { cells: v }),
            ColumnData::Str(_) => None,
        }
    }

    /// Borrows a categorical column as a typed view, or `None` when `col`
    /// is an integer column.
    #[inline]
    pub fn sym_view(&self, col: ColId) -> Option<SymColumnView<'_>> {
        match &self.cols[col] {
            ColumnData::Str(v) => Some(SymColumnView { cells: v }),
            ColumnData::Int(_) => None,
        }
    }

    /// Writes a cell (use `None` to blank it).
    pub fn set(&mut self, row: RowId, col: ColId, value: Option<Value>) -> Result<()> {
        if row >= self.n_rows {
            return Err(TableError::RowOutOfBounds {
                row,
                len: self.n_rows,
            });
        }
        self.cols[col]
            .set(row, value)
            .map_err(|got| TableError::TypeMismatch {
                column: self.schema.column(col).name.clone(),
                expected: self.schema.column(col).dtype,
                got,
            })
    }

    /// Blanks every cell of a column (e.g. erasing the FK column of `R1`).
    pub fn clear_column(&mut self, col: ColId) {
        match &mut self.cols[col] {
            ColumnData::Int(v) => v.iter_mut().for_each(|c| *c = None),
            ColumnData::Str(v) => v.iter_mut().for_each(|c| *c = None),
        }
    }

    /// `true` if every cell of `col` is missing.
    pub fn column_is_missing(&self, col: ColId) -> bool {
        match &self.cols[col] {
            ColumnData::Int(v) => v.iter().all(Option::is_none),
            ColumnData::Str(v) => v.iter().all(Option::is_none),
        }
    }

    /// `true` if every cell of `col` is present.
    pub fn column_is_complete(&self, col: ColId) -> bool {
        match &self.cols[col] {
            ColumnData::Int(v) => v.iter().all(Option::is_some),
            ColumnData::Str(v) => v.iter().all(Option::is_some),
        }
    }

    /// Materializes one row as a vector of optional values.
    pub fn row(&self, row: RowId) -> Vec<Option<Value>> {
        (0..self.schema.len()).map(|c| self.get(row, c)).collect()
    }

    /// Iterates over all row ids.
    pub fn rows(&self) -> impl Iterator<Item = RowId> + '_ {
        0..self.n_rows
    }

    /// Distinct present values in a column, sorted.
    pub fn distinct_values(&self, col: ColId) -> Vec<Value> {
        let mut vals: Vec<Value> = match &self.cols[col] {
            ColumnData::Int(v) => v.iter().flatten().copied().map(Value::Int).collect(),
            ColumnData::Str(v) => v.iter().flatten().copied().map(Value::Str).collect(),
        };
        vals.sort();
        vals.dedup();
        vals
    }

    /// Minimum and maximum present values of an integer column.
    pub fn int_range(&self, col: ColId) -> Option<(i64, i64)> {
        match &self.cols[col] {
            ColumnData::Int(v) => {
                let mut it = v.iter().flatten();
                let first = *it.next()?;
                let (mut lo, mut hi) = (first, first);
                for &x in it {
                    lo = lo.min(x);
                    hi = hi.max(x);
                }
                Some((lo, hi))
            }
            ColumnData::Str(_) => None,
        }
    }

    /// Builds a lookup from key value to the rows holding it.
    pub fn index_by(&self, col: ColId) -> std::collections::HashMap<Value, Vec<RowId>> {
        let mut map: std::collections::HashMap<Value, Vec<RowId>> =
            std::collections::HashMap::new();
        for r in 0..self.n_rows {
            if let Some(v) = self.get(r, col) {
                map.entry(v).or_default().push(r);
            }
        }
        map
    }
}

impl fmt::Display for Relation {
    /// Pretty-prints up to 20 rows — intended for examples and debugging.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} {} [{} rows]", self.name, self.schema, self.n_rows)?;
        let shown = self.n_rows.min(20);
        for r in 0..shown {
            write!(f, "  ")?;
            for c in 0..self.schema.len() {
                if c > 0 {
                    write!(f, " | ")?;
                }
                match self.get(r, c) {
                    Some(v) => write!(f, "{v}")?,
                    None => write!(f, "?")?,
                }
            }
            writeln!(f)?;
        }
        if shown < self.n_rows {
            writeln!(f, "  … {} more rows", self.n_rows - shown)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn small() -> Relation {
        let schema = Schema::new(vec![
            ColumnDef::key("pid", Dtype::Int),
            ColumnDef::attr("Age", Dtype::Int),
            ColumnDef::attr("Rel", Dtype::Str),
            ColumnDef::foreign_key("hid", Dtype::Int),
        ])
        .unwrap();
        let mut r = Relation::new("Persons", schema);
        r.push_row(&[
            Some(Value::Int(1)),
            Some(Value::Int(75)),
            Some(Value::str("Owner")),
            None,
        ])
        .unwrap();
        r.push_row(&[
            Some(Value::Int(2)),
            Some(Value::Int(24)),
            Some(Value::str("Spouse")),
            None,
        ])
        .unwrap();
        r
    }

    #[test]
    fn push_and_get() {
        let r = small();
        assert_eq!(r.n_rows(), 2);
        assert_eq!(r.get(0, 1), Some(Value::Int(75)));
        assert_eq!(r.get(1, 2), Some(Value::str("Spouse")));
        assert_eq!(r.get(0, 3), None);
        assert_eq!(r.get_int(0, 1), Some(75));
        assert_eq!(r.get_sym(1, 2), Some(Sym::intern("Spouse")));
        // Typed accessor on the wrong column type yields None.
        assert_eq!(r.get_int(0, 2), None);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut r = small();
        let err = r.push_row(&[
            Some(Value::Int(3)),
            Some(Value::str("oops")),
            Some(Value::str("Owner")),
            None,
        ]);
        assert!(matches!(err, Err(TableError::TypeMismatch { .. })));
        // Failed push must not corrupt the relation: row count unchanged and
        // every column still has exactly `n_rows` cells.
        assert_eq!(r.n_rows(), 2);
        let ok = r.push_row(&[
            Some(Value::Int(3)),
            Some(Value::Int(40)),
            Some(Value::str("Owner")),
            None,
        ]);
        assert!(ok.is_ok());
        assert_eq!(r.n_rows(), 3);
        assert_eq!(r.get(2, 1), Some(Value::Int(40)));
        let err = r.set(0, 1, Some(Value::str("oops")));
        assert!(matches!(err, Err(TableError::TypeMismatch { .. })));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut r = small();
        let err = r.push_row(&[Some(Value::Int(3))]);
        assert!(matches!(err, Err(TableError::ArityMismatch { .. })));
    }

    #[test]
    fn set_and_clear_column() {
        let mut r = small();
        assert!(r.column_is_missing(3));
        r.set(0, 3, Some(Value::Int(7))).unwrap();
        assert!(!r.column_is_missing(3));
        assert!(!r.column_is_complete(3));
        r.set(1, 3, Some(Value::Int(8))).unwrap();
        assert!(r.column_is_complete(3));
        r.clear_column(3);
        assert!(r.column_is_missing(3));
    }

    #[test]
    fn set_out_of_bounds() {
        let mut r = small();
        assert!(matches!(
            r.set(99, 0, None),
            Err(TableError::RowOutOfBounds { .. })
        ));
    }

    #[test]
    fn distinct_and_range() {
        let r = small();
        assert_eq!(
            r.distinct_values(2),
            vec![Value::str("Owner"), Value::str("Spouse")]
        );
        assert_eq!(r.int_range(1), Some((24, 75)));
        assert_eq!(r.int_range(2), None);
        // Missing column has no distinct values and no range.
        assert_eq!(r.distinct_values(3), vec![]);
        assert_eq!(r.int_range(3), None);
    }

    #[test]
    fn index_by_groups_rows() {
        let mut r = small();
        r.set(0, 3, Some(Value::Int(5))).unwrap();
        r.set(1, 3, Some(Value::Int(5))).unwrap();
        let idx = r.index_by(3);
        assert_eq!(idx[&Value::Int(5)], vec![0, 1]);
    }

    #[test]
    fn display_renders_missing_as_question_mark() {
        let r = small();
        let s = r.to_string();
        assert!(s.contains('?'));
        assert!(s.contains("Owner"));
    }

    #[test]
    fn typed_views_read_raw_cells() {
        let mut r = small();
        r.set(0, 3, Some(Value::Int(9))).unwrap();
        let ages = r.int_view(1).unwrap();
        assert_eq!(ages.len(), 2);
        assert!(!ages.is_empty());
        assert_eq!(ages.get(0), Some(75));
        assert_eq!(ages.get(1), Some(24));
        let rels = r.sym_view(2).unwrap();
        assert_eq!(rels.get(0), Some(Sym::intern("Owner")));
        let hid = r.int_view(3).unwrap();
        assert_eq!(hid.get(0), Some(9));
        assert_eq!(hid.get(1), None);
        // Wrong-type requests return None instead of panicking.
        assert!(r.int_view(2).is_none());
        assert!(r.sym_view(1).is_none());
    }

    #[test]
    fn push_full_row_roundtrip() {
        let schema = Schema::new(vec![ColumnDef::attr("x", Dtype::Int)]).unwrap();
        let mut r = Relation::new("t", schema);
        r.push_full_row(&[Value::Int(9)]).unwrap();
        assert_eq!(r.row(0), vec![Some(Value::Int(9))]);
    }
}
