//! Relation schemas: named, typed columns with key/attribute/foreign-key roles.

use crate::error::{Result, TableError};
use crate::value::Dtype;
use std::collections::HashMap;
use std::fmt;

/// Index of a column within a schema.
pub type ColId = usize;

/// Role a column plays in the C-Extension setting (Definition 2.6 of the
/// paper): `R1(K1, A1..Ap, FK)` and `R2(K2, B1..Bq)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Role {
    /// Primary key (`K1` / `K2`).
    Key,
    /// Plain attribute (`A_i` / `B_i`).
    Attr,
    /// Foreign key referencing another relation's key (`FK`).
    ForeignKey,
}

/// A single column definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ColumnDef {
    /// Column name, unique within a schema.
    pub name: String,
    /// Declared value type.
    pub dtype: Dtype,
    /// Role of the column.
    pub role: Role,
}

impl ColumnDef {
    /// Creates an attribute column.
    pub fn attr(name: &str, dtype: Dtype) -> ColumnDef {
        ColumnDef {
            name: name.to_owned(),
            dtype,
            role: Role::Attr,
        }
    }

    /// Creates a key column.
    pub fn key(name: &str, dtype: Dtype) -> ColumnDef {
        ColumnDef {
            name: name.to_owned(),
            dtype,
            role: Role::Key,
        }
    }

    /// Creates a foreign-key column.
    pub fn foreign_key(name: &str, dtype: Dtype) -> ColumnDef {
        ColumnDef {
            name: name.to_owned(),
            dtype,
            role: Role::ForeignKey,
        }
    }
}

/// An ordered list of column definitions with name-based lookup.
#[derive(Clone, Debug)]
pub struct Schema {
    cols: Vec<ColumnDef>,
    by_name: HashMap<String, ColId>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate column names.
    pub fn new(cols: Vec<ColumnDef>) -> Result<Schema> {
        let mut by_name = HashMap::with_capacity(cols.len());
        for (i, c) in cols.iter().enumerate() {
            if by_name.insert(c.name.clone(), i).is_some() {
                return Err(TableError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(Schema { cols, by_name })
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// `true` if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// The column definitions in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.cols
    }

    /// Definition of column `id`.
    pub fn column(&self, id: ColId) -> &ColumnDef {
        &self.cols[id]
    }

    /// Looks up a column index by name.
    pub fn col_id(&self, name: &str) -> Option<ColId> {
        self.by_name.get(name).copied()
    }

    /// Looks up a column index by name, reporting `relation` in the error.
    pub fn require(&self, name: &str, relation: &str) -> Result<ColId> {
        self.col_id(name).ok_or_else(|| TableError::UnknownColumn {
            column: name.to_owned(),
            relation: relation.to_owned(),
        })
    }

    /// Indices of all columns with the given role.
    pub fn cols_with_role(&self, role: Role) -> Vec<ColId> {
        self.cols
            .iter()
            .enumerate()
            .filter(|(_, c)| c.role == role)
            .map(|(i, _)| i)
            .collect()
    }

    /// The unique key column, if there is exactly one.
    pub fn key_col(&self) -> Option<ColId> {
        let keys = self.cols_with_role(Role::Key);
        match keys.as_slice() {
            [k] => Some(*k),
            _ => None,
        }
    }

    /// The unique foreign-key column, if there is exactly one.
    pub fn fk_col(&self) -> Option<ColId> {
        let fks = self.cols_with_role(Role::ForeignKey);
        match fks.as_slice() {
            [k] => Some(*k),
            _ => None,
        }
    }

    /// Indices of the non-key, non-FK attribute columns (`A_i` / `B_i`).
    pub fn attr_cols(&self) -> Vec<ColId> {
        self.cols_with_role(Role::Attr)
    }

    /// Extends this schema with columns from `other` (e.g. building the
    /// `V_join` schema from `R1`'s attributes plus `R2`'s attributes).
    /// Duplicate names are rejected.
    pub fn extended_with(&self, extra: &[ColumnDef]) -> Result<Schema> {
        let mut cols = self.cols.clone();
        cols.extend(extra.iter().cloned());
        Schema::new(cols)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.cols.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let marker = match c.role {
                Role::Key => "*",
                Role::ForeignKey => "^",
                Role::Attr => "",
            };
            write!(f, "{marker}{}: {}", c.name, c.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn persons_schema() -> Schema {
        Schema::new(vec![
            ColumnDef::key("pid", Dtype::Int),
            ColumnDef::attr("Age", Dtype::Int),
            ColumnDef::attr("Rel", Dtype::Str),
            ColumnDef::attr("Multi-ling", Dtype::Int),
            ColumnDef::foreign_key("hid", Dtype::Int),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name() {
        let s = persons_schema();
        assert_eq!(s.col_id("Age"), Some(1));
        assert_eq!(s.col_id("nope"), None);
        assert!(s.require("nope", "Persons").is_err());
    }

    #[test]
    fn roles() {
        let s = persons_schema();
        assert_eq!(s.key_col(), Some(0));
        assert_eq!(s.fk_col(), Some(4));
        assert_eq!(s.attr_cols(), vec![1, 2, 3]);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = Schema::new(vec![
            ColumnDef::attr("x", Dtype::Int),
            ColumnDef::attr("x", Dtype::Str),
        ]);
        assert!(matches!(r, Err(TableError::DuplicateColumn(_))));
    }

    #[test]
    fn extended_with_appends_columns() {
        let s = persons_schema();
        let ext = s
            .extended_with(&[ColumnDef::attr("Area", Dtype::Str)])
            .unwrap();
        assert_eq!(ext.len(), 6);
        assert_eq!(ext.col_id("Area"), Some(5));
        // Extending with a clashing name fails.
        assert!(s
            .extended_with(&[ColumnDef::attr("Age", Dtype::Int)])
            .is_err());
    }

    #[test]
    fn display_marks_roles() {
        let s = persons_schema();
        let d = s.to_string();
        assert!(d.contains("*pid"));
        assert!(d.contains("^hid"));
    }
}
