//! Group-by counts ("marginals") over relation columns.
//!
//! The paper augments the ILP with *all-way marginals*: counts of tuples for
//! every combination of values of `R1`'s non-key columns (Section 4.1). This
//! module provides the raw group-by machinery; interval binning lives in the
//! constraints crate.
//!
//! The hot path works on **dictionary codes**, not boxed [`Value`]s:
//! categorical columns already carry per-column `u32` codes (the columnar
//! engine's dictionaries), integer columns are code-compressed in one hash
//! pass, and each row's combined key is a mixed-radix `u128` — so grouping a
//! million rows does one integer hash per row instead of allocating and
//! hashing a `Vec<Option<Value>>` per row. Boxed group keys are only
//! materialized once per *group* for the sorted, deterministic output. The
//! straightforward boxed implementation is retained in [`naive`] as the
//! differential oracle and A/B baseline.

use crate::relation::{Relation, RowId};
use crate::schema::ColId;
use crate::value::Value;
use std::collections::HashMap;

/// A group key: one optional value per grouped column.
pub type GroupKey = Vec<Option<Value>>;

/// Row-id partitions per group, CSR-style: one shared `row_ids` buffer with
/// per-group offsets, so a partition is a **slice** (`&[RowId]`) rather than
/// an owned vector — the representation Phase 2 shards by.
///
/// Groups are sorted by [`GroupKey`] and rows within a group keep relation
/// order, so iteration is deterministic.
#[derive(Clone, Debug, Default)]
pub struct GroupedRows {
    keys: Vec<GroupKey>,
    offsets: Vec<usize>,
    row_ids: Vec<RowId>,
}

impl GroupedRows {
    /// Number of groups.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when there are no groups.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The key of group `g`.
    pub fn key(&self, g: usize) -> &GroupKey {
        &self.keys[g]
    }

    /// The row ids of group `g`, in relation order.
    pub fn rows(&self, g: usize) -> &[RowId] {
        &self.row_ids[self.offsets[g]..self.offsets[g + 1]]
    }

    /// Iterates `(key, rows)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&GroupKey, &[RowId])> {
        (0..self.len()).map(|g| (self.key(g), self.rows(g)))
    }
}

/// One grouped column, code-compressed: `codes[row]` ∈ `0..card`, where
/// code 0 is "missing" and `decode[code]` recovers the boxed value.
struct ColCodes {
    codes: Vec<u32>,
    decode: Vec<Option<Value>>,
}

fn encode_column(rel: &Relation, col: ColId) -> ColCodes {
    if let Some(sv) = rel.sym_view(col) {
        // Categorical: the column dictionary is the code table (shifted by
        // one so 0 can mean missing).
        let decode = std::iter::once(None)
            .chain(sv.dict().iter().map(|&s| Some(Value::Str(s))))
            .collect();
        let codes = (0..sv.len())
            .map(|r| sv.code(r).map_or(0, |c| c + 1))
            .collect();
        ColCodes { codes, decode }
    } else {
        let iv = rel.int_view(col).expect("columns are int or sym");
        // Integer: build an insertion-ordered value→code dictionary in one
        // pass (codes need not be sorted; output order comes from the final
        // per-group key sort).
        let mut index: HashMap<i64, u32> = HashMap::new();
        let mut decode: Vec<Option<Value>> = vec![None];
        let codes = (0..iv.len())
            .map(|r| match iv.get(r) {
                None => 0,
                Some(x) => *index.entry(x).or_insert_with(|| {
                    decode.push(Some(Value::Int(x)));
                    (decode.len() - 1) as u32
                }),
            })
            .collect();
        ColCodes { codes, decode }
    }
}

/// Assigns every row a dense group id over the combined codes of `cols`,
/// in first-occurrence order. Returns the per-row group ids and, per group,
/// the per-column codes of its representative row.
///
/// When `skip_missing` is set, rows with any missing grouped cell get the
/// sentinel `u32::MAX` instead of a group id (the `distinct_combos`
/// contract).
fn assign_groups(
    encoded: &[ColCodes],
    n_rows: usize,
    skip_missing: bool,
) -> (Vec<u32>, Vec<Vec<u32>>) {
    // Mixed-radix u128 fast path: with per-column cardinalities c_i, the
    // combined key of a row is Σ code_i · Π_{j<i} c_j, unique iff the
    // cardinality product fits. It essentially always does (it would take
    // e.g. seven columns of a million distinct values each to overflow);
    // the boxed-key fallback below keeps pathological schemas correct.
    let mut strides: Vec<u128> = Vec::with_capacity(encoded.len());
    let mut product: u128 = 1;
    let mut fits = true;
    for col in encoded {
        strides.push(product);
        match product.checked_mul(col.decode.len() as u128) {
            Some(p) => product = p,
            None => {
                fits = false;
                break;
            }
        }
    }

    let mut gids: Vec<u32> = Vec::with_capacity(n_rows);
    let mut reps: Vec<Vec<u32>> = Vec::new();
    if fits {
        let mut seen: HashMap<u128, u32> = HashMap::new();
        for r in 0..n_rows {
            let mut key: u128 = 0;
            let mut missing = false;
            for (col, stride) in encoded.iter().zip(&strides) {
                let c = col.codes[r];
                missing |= c == 0;
                key += u128::from(c) * stride;
            }
            if skip_missing && missing {
                gids.push(u32::MAX);
                continue;
            }
            let next = reps.len() as u32;
            let gid = *seen.entry(key).or_insert_with(|| {
                reps.push(encoded.iter().map(|col| col.codes[r]).collect());
                next
            });
            gids.push(gid);
        }
    } else {
        let mut seen: HashMap<Vec<u32>, u32> = HashMap::new();
        for r in 0..n_rows {
            let key: Vec<u32> = encoded.iter().map(|col| col.codes[r]).collect();
            if skip_missing && key.contains(&0) {
                gids.push(u32::MAX);
                continue;
            }
            let next = reps.len() as u32;
            let gid = *seen.entry(key.clone()).or_insert_with(|| {
                reps.push(key);
                next
            });
            gids.push(gid);
        }
    }
    (gids, reps)
}

fn decode_key(encoded: &[ColCodes], rep: &[u32]) -> GroupKey {
    encoded
        .iter()
        .zip(rep)
        .map(|(col, &c)| col.decode[c as usize])
        .collect()
}

/// Sorted group order: indices into `reps` ordered by decoded key. The
/// decoded keys are returned alongside so callers don't re-decode.
fn sorted_groups(encoded: &[ColCodes], reps: &[Vec<u32>]) -> (Vec<u32>, Vec<GroupKey>) {
    let mut keys: Vec<GroupKey> = reps.iter().map(|rep| decode_key(encoded, rep)).collect();
    let mut order: Vec<u32> = (0..reps.len() as u32).collect();
    order.sort_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]));
    let mut sorted_keys = Vec::with_capacity(keys.len());
    for &g in &order {
        sorted_keys.push(std::mem::take(&mut keys[g as usize]));
    }
    (order, sorted_keys)
}

/// Counts rows per combination of values in `cols`. Missing cells group
/// under `None`. Results are sorted by key for determinism.
pub fn group_counts(rel: &Relation, cols: &[ColId]) -> Vec<(GroupKey, u64)> {
    if rel.n_rows() == 0 {
        return Vec::new();
    }
    let encoded: Vec<ColCodes> = cols.iter().map(|&c| encode_column(rel, c)).collect();
    let (gids, reps) = assign_groups(&encoded, rel.n_rows(), false);
    let mut counts = vec![0u64; reps.len()];
    for &g in &gids {
        counts[g as usize] += 1;
    }
    let (order, keys) = sorted_groups(&encoded, &reps);
    keys.into_iter()
        .zip(order.iter().map(|&g| counts[g as usize]))
        .collect()
}

/// Partitions the row ids by combination of values in `cols` (see
/// [`GroupedRows`]): one shared buffer, per-group slices.
pub fn group_rows(rel: &Relation, cols: &[ColId]) -> GroupedRows {
    if rel.n_rows() == 0 {
        return GroupedRows::default();
    }
    let encoded: Vec<ColCodes> = cols.iter().map(|&c| encode_column(rel, c)).collect();
    let (gids, reps) = assign_groups(&encoded, rel.n_rows(), false);
    let (order, keys) = sorted_groups(&encoded, &reps);
    // Invert: slot_of[gid] = position of the group in sorted order.
    let mut slot_of = vec![0u32; reps.len()];
    for (slot, &g) in order.iter().enumerate() {
        slot_of[g as usize] = slot as u32;
    }
    let mut counts = vec![0usize; reps.len()];
    for &g in &gids {
        counts[slot_of[g as usize] as usize] += 1;
    }
    let mut offsets = Vec::with_capacity(reps.len() + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &c in &counts {
        acc += c;
        offsets.push(acc);
    }
    // Counting sort keeps rows in relation order within each group.
    let mut cursor = offsets[..reps.len()].to_vec();
    let mut row_ids = vec![0 as RowId; gids.len()];
    for (r, &g) in gids.iter().enumerate() {
        let slot = slot_of[g as usize] as usize;
        row_ids[cursor[slot]] = r;
        cursor[slot] += 1;
    }
    GroupedRows {
        keys,
        offsets,
        row_ids,
    }
}

/// Distinct fully-present combinations of `cols`, with multiplicity.
/// Rows with any missing cell among `cols` are skipped.
pub fn distinct_combos(rel: &Relation, cols: &[ColId]) -> Vec<(Vec<Value>, u64)> {
    if rel.n_rows() == 0 {
        return Vec::new();
    }
    let encoded: Vec<ColCodes> = cols.iter().map(|&c| encode_column(rel, c)).collect();
    let (gids, reps) = assign_groups(&encoded, rel.n_rows(), true);
    let mut counts = vec![0u64; reps.len()];
    for &g in &gids {
        if g != u32::MAX {
            counts[g as usize] += 1;
        }
    }
    let (order, keys) = sorted_groups(&encoded, &reps);
    keys.into_iter()
        .map(|key| {
            key.into_iter()
                .map(|v| v.expect("missing skipped"))
                .collect()
        })
        .zip(order.iter().map(|&g| counts[g as usize]))
        .collect()
}

/// The pre-v2 boxed-key implementations, retained as the differential
/// oracle (proptested against the code path) and the A/B baseline the
/// `marginals` criterion bench measures speedups against.
pub mod naive {
    use super::*;

    /// Boxed-key [`group_counts`](super::group_counts).
    pub fn group_counts(rel: &Relation, cols: &[ColId]) -> Vec<(GroupKey, u64)> {
        let mut map: HashMap<GroupKey, u64> = HashMap::new();
        for r in rel.rows() {
            let key: GroupKey = cols.iter().map(|&c| rel.get(r, c)).collect();
            *map.entry(key).or_insert(0) += 1;
        }
        let mut out: Vec<(GroupKey, u64)> = map.into_iter().collect();
        out.sort();
        out
    }

    /// Boxed-key [`group_rows`](super::group_rows), materializing owned
    /// per-group vectors.
    pub fn group_rows(rel: &Relation, cols: &[ColId]) -> Vec<(GroupKey, Vec<RowId>)> {
        let mut map: HashMap<GroupKey, Vec<RowId>> = HashMap::new();
        for r in rel.rows() {
            let key: GroupKey = cols.iter().map(|&c| rel.get(r, c)).collect();
            map.entry(key).or_default().push(r);
        }
        let mut out: Vec<(GroupKey, Vec<RowId>)> = map.into_iter().collect();
        out.sort();
        out
    }

    /// Boxed-key [`distinct_combos`](super::distinct_combos).
    pub fn distinct_combos(rel: &Relation, cols: &[ColId]) -> Vec<(Vec<Value>, u64)> {
        let mut map: HashMap<Vec<Value>, u64> = HashMap::new();
        'rows: for r in rel.rows() {
            let mut key = Vec::with_capacity(cols.len());
            for &c in cols {
                match rel.get(r, c) {
                    Some(v) => key.push(v),
                    None => continue 'rows,
                }
            }
            *map.entry(key).or_insert(0) += 1;
        }
        let mut out: Vec<(Vec<Value>, u64)> = map.into_iter().collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::Dtype;

    fn rel() -> Relation {
        let schema = Schema::new(vec![
            ColumnDef::attr("Rel", Dtype::Str),
            ColumnDef::attr("Multi", Dtype::Int),
        ])
        .unwrap();
        let mut r = Relation::new("t", schema);
        for (rl, m) in [
            ("Owner", Some(0)),
            ("Owner", Some(0)),
            ("Owner", Some(1)),
            ("Spouse", Some(0)),
            ("Spouse", None),
        ] {
            r.push_row(&[Some(Value::str(rl)), m.map(Value::Int)])
                .unwrap();
        }
        r
    }

    #[test]
    fn group_counts_includes_missing_groups() {
        let r = rel();
        let g = group_counts(&r, &[0, 1]);
        assert_eq!(g.len(), 4);
        let owner0 = g
            .iter()
            .find(|(k, _)| k == &vec![Some(Value::str("Owner")), Some(Value::Int(0))])
            .unwrap();
        assert_eq!(owner0.1, 2);
        let spouse_missing = g
            .iter()
            .find(|(k, _)| k == &vec![Some(Value::str("Spouse")), None])
            .unwrap();
        assert_eq!(spouse_missing.1, 1);
    }

    #[test]
    fn group_rows_partitions_all_rows() {
        let r = rel();
        let g = group_rows(&r, &[0]);
        let total: usize = g.iter().map(|(_, rows)| rows.len()).sum();
        assert_eq!(total, r.n_rows());
    }

    #[test]
    fn group_rows_slices_keep_relation_order() {
        let r = rel();
        let g = group_rows(&r, &[0]);
        assert_eq!(g.len(), 2);
        // Keys sorted: Owner < Spouse; rows ascending within each slice.
        assert_eq!(g.key(0), &vec![Some(Value::str("Owner"))]);
        assert_eq!(g.rows(0), &[0, 1, 2]);
        assert_eq!(g.key(1), &vec![Some(Value::str("Spouse"))]);
        assert_eq!(g.rows(1), &[3, 4]);
    }

    #[test]
    fn distinct_combos_skips_missing() {
        let r = rel();
        let c = distinct_combos(&r, &[0, 1]);
        assert_eq!(c.len(), 3); // (Owner,0), (Owner,1), (Spouse,0)
        let total: u64 = c.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn empty_column_list_groups_everything_together() {
        let r = rel();
        let g = group_counts(&r, &[]);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].1, 5);
    }

    #[test]
    fn empty_relation_yields_no_groups() {
        let schema = Schema::new(vec![ColumnDef::attr("x", Dtype::Int)]).unwrap();
        let r = Relation::new("t", schema);
        assert!(group_counts(&r, &[0]).is_empty());
        assert!(group_rows(&r, &[0]).is_empty());
        assert!(distinct_combos(&r, &[0]).is_empty());
    }

    #[test]
    fn coded_path_matches_naive_oracle() {
        let r = rel();
        for cols in [vec![], vec![0], vec![1], vec![0, 1], vec![1, 0]] {
            assert_eq!(group_counts(&r, &cols), naive::group_counts(&r, &cols));
            assert_eq!(
                distinct_combos(&r, &cols),
                naive::distinct_combos(&r, &cols)
            );
            let coded = group_rows(&r, &cols);
            let boxed = naive::group_rows(&r, &cols);
            assert_eq!(coded.len(), boxed.len());
            for (g, (key, rows)) in boxed.iter().enumerate() {
                assert_eq!(coded.key(g), key);
                assert_eq!(coded.rows(g), rows.as_slice());
            }
        }
    }

    #[test]
    fn int_columns_group_by_value_not_code_order() {
        // Values inserted in non-sorted order must still produce key-sorted
        // output (codes are insertion-ordered; the sort is on decoded keys).
        let schema = Schema::new(vec![ColumnDef::attr("x", Dtype::Int)]).unwrap();
        let mut r = Relation::new("t", schema);
        for x in [30, 10, 20, 10, 30] {
            r.push_full_row(&[Value::Int(x)]).unwrap();
        }
        let g = group_counts(&r, &[0]);
        let keys: Vec<_> = g.iter().map(|(k, _)| k[0]).collect();
        assert_eq!(
            keys,
            vec![
                Some(Value::Int(10)),
                Some(Value::Int(20)),
                Some(Value::Int(30))
            ]
        );
    }
}
