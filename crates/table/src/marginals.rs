//! Group-by counts ("marginals") over relation columns.
//!
//! The paper augments the ILP with *all-way marginals*: counts of tuples for
//! every combination of values of `R1`'s non-key columns (Section 4.1). This
//! module provides the raw group-by machinery; interval binning lives in the
//! constraints crate.

use crate::relation::{Relation, RowId};
use crate::schema::ColId;
use crate::value::Value;
use std::collections::HashMap;

/// A group key: one optional value per grouped column.
pub type GroupKey = Vec<Option<Value>>;

/// Counts rows per combination of values in `cols`. Missing cells group
/// under `None`. Results are sorted by key for determinism.
pub fn group_counts(rel: &Relation, cols: &[ColId]) -> Vec<(GroupKey, u64)> {
    let mut map: HashMap<GroupKey, u64> = HashMap::new();
    for r in rel.rows() {
        let key: GroupKey = cols.iter().map(|&c| rel.get(r, c)).collect();
        *map.entry(key).or_insert(0) += 1;
    }
    let mut out: Vec<(GroupKey, u64)> = map.into_iter().collect();
    out.sort();
    out
}

/// Collects the row ids per combination of values in `cols`.
pub fn group_rows(rel: &Relation, cols: &[ColId]) -> Vec<(GroupKey, Vec<RowId>)> {
    let mut map: HashMap<GroupKey, Vec<RowId>> = HashMap::new();
    for r in rel.rows() {
        let key: GroupKey = cols.iter().map(|&c| rel.get(r, c)).collect();
        map.entry(key).or_default().push(r);
    }
    let mut out: Vec<(GroupKey, Vec<RowId>)> = map.into_iter().collect();
    out.sort();
    out
}

/// Distinct fully-present combinations of `cols`, with multiplicity.
/// Rows with any missing cell among `cols` are skipped.
pub fn distinct_combos(rel: &Relation, cols: &[ColId]) -> Vec<(Vec<Value>, u64)> {
    let mut map: HashMap<Vec<Value>, u64> = HashMap::new();
    'rows: for r in rel.rows() {
        let mut key = Vec::with_capacity(cols.len());
        for &c in cols {
            match rel.get(r, c) {
                Some(v) => key.push(v),
                None => continue 'rows,
            }
        }
        *map.entry(key).or_insert(0) += 1;
    }
    let mut out: Vec<(Vec<Value>, u64)> = map.into_iter().collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::Dtype;

    fn rel() -> Relation {
        let schema = Schema::new(vec![
            ColumnDef::attr("Rel", Dtype::Str),
            ColumnDef::attr("Multi", Dtype::Int),
        ])
        .unwrap();
        let mut r = Relation::new("t", schema);
        for (rl, m) in [
            ("Owner", Some(0)),
            ("Owner", Some(0)),
            ("Owner", Some(1)),
            ("Spouse", Some(0)),
            ("Spouse", None),
        ] {
            r.push_row(&[Some(Value::str(rl)), m.map(Value::Int)])
                .unwrap();
        }
        r
    }

    #[test]
    fn group_counts_includes_missing_groups() {
        let r = rel();
        let g = group_counts(&r, &[0, 1]);
        assert_eq!(g.len(), 4);
        let owner0 = g
            .iter()
            .find(|(k, _)| k == &vec![Some(Value::str("Owner")), Some(Value::Int(0))])
            .unwrap();
        assert_eq!(owner0.1, 2);
        let spouse_missing = g
            .iter()
            .find(|(k, _)| k == &vec![Some(Value::str("Spouse")), None])
            .unwrap();
        assert_eq!(spouse_missing.1, 1);
    }

    #[test]
    fn group_rows_partitions_all_rows() {
        let r = rel();
        let g = group_rows(&r, &[0]);
        let total: usize = g.iter().map(|(_, rows)| rows.len()).sum();
        assert_eq!(total, r.n_rows());
    }

    #[test]
    fn distinct_combos_skips_missing() {
        let r = rel();
        let c = distinct_combos(&r, &[0, 1]);
        assert_eq!(c.len(), 3); // (Owner,0), (Owner,1), (Spouse,0)
        let total: u64 = c.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn empty_column_list_groups_everything_together() {
        let r = rel();
        let g = group_counts(&r, &[]);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].1, 5);
    }
}
