//! Typed cell values and a process-wide string interner.
//!
//! Categorical values are interned once and referenced by a [`Sym`] handle so
//! that [`Value`] is `Copy` and comparisons are cheap. Interned strings live
//! for the lifetime of the process; the set of distinct categorical values in
//! any workload (relationship codes, area names, …) is small and bounded, so
//! the leak is deliberate and bounded too.

use parking_lot::RwLock;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;

/// Interned string handle. Two `Sym`s are equal iff their strings are equal.
///
/// The handle *is* the leaked `&'static str`, so reading a symbol
/// ([`Sym::as_str`], comparisons, hashing) never touches the interner lock
/// — only [`Sym::intern`] does. That matters once solves run concurrently
/// (parallel partition coloring, the parallel step scheduler): an id-based
/// handle whose every `as_str` took a read lock made two concurrent chain
/// steps *slower* than the serial loop from cache-line contention alone.
///
/// `Ord` and `Hash` use the string contents (interning makes content
/// equality and pointer equality coincide, which `PartialEq` exploits as a
/// fast path), so orderings and hash-map behavior are deterministic
/// regardless of interning order.
#[derive(Clone, Copy, Debug)]
pub struct Sym(&'static str);

/// Number of interner shards. Million-row bulk loads intern from every
/// worker of the `CEXTEND_SCHED_WORKERS` pool at once; sharding by string
/// hash keeps concurrent `intern` calls for *different* strings off the
/// same lock. 16 comfortably exceeds any pool width we run.
const SHARDS: usize = 16;

/// The sharded intern dictionary. Each shard maps string contents to the
/// one leaked `&'static str` for that content — the shared leak arena is
/// simply the process heap (`Box::leak`), so handles from different shards
/// are interchangeable and all reads stay lock-free.
struct Interner {
    shards: [RwLock<HashMap<&'static str, &'static str>>; SHARDS],
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
    })
}

fn shard_of(s: &str) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    s.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

impl Sym {
    /// Interns `s`, returning its handle. Idempotent. Only this call ever
    /// takes an interner lock, and only the one shard `s` hashes to.
    pub fn intern(s: &str) -> Sym {
        let shard = &interner().shards[shard_of(s)];
        {
            let guard = shard.read();
            if let Some(&leaked) = guard.get(s) {
                return Sym(leaked);
            }
        }
        let mut guard = shard.write();
        if let Some(&leaked) = guard.get(s) {
            return Sym(leaked);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        guard.insert(leaked, leaked);
        Sym(leaked)
    }

    /// The interned string (lock-free).
    pub fn as_str(self) -> &'static str {
        self.0
    }
}

impl PartialEq for Sym {
    fn eq(&self, other: &Self) -> bool {
        // Interned strings are unique per content, so pointer equality is
        // the common case; the content comparison only runs for symbols
        // that are genuinely different.
        std::ptr::eq(self.0, other.0) || self.0 == other.0
    }
}

impl Eq for Sym {}

impl std::hash::Hash for Sym {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Self) -> Ordering {
        if std::ptr::eq(self.0, other.0) {
            Ordering::Equal
        } else {
            self.0.cmp(other.0)
        }
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Self {
        Sym::intern(s)
    }
}

/// Data type of a column.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Dtype {
    /// 64-bit signed integer.
    Int,
    /// Interned categorical string.
    Str,
}

impl fmt::Display for Dtype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dtype::Int => f.write_str("int"),
            Dtype::Str => f.write_str("str"),
        }
    }
}

/// A single cell value. `Copy`; symbols carry their interned `&'static
/// str` so every read is lock-free.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Categorical value (interned).
    Str(Sym),
}

impl Value {
    /// Convenience constructor interning `s`.
    pub fn str(s: &str) -> Value {
        Value::Str(Sym::intern(s))
    }

    /// The dynamic type of this value.
    pub fn dtype(&self) -> Dtype {
        match self {
            Value::Int(_) => Dtype::Int,
            Value::Str(_) => Dtype::Str,
        }
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// Returns the symbol payload, if this is a `Str`.
    pub fn as_sym(&self) -> Option<Sym> {
        match self {
            Value::Str(s) => Some(*s),
            Value::Int(_) => None,
        }
    }

    /// Compares two values of the same type; `None` on a type mismatch.
    ///
    /// Integers compare numerically, strings lexicographically. Predicate
    /// evaluation treats a type mismatch as "condition not satisfied" rather
    /// than panicking, and schema validation catches mismatches earlier.
    pub fn cmp_same_type(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order used for deterministic grouping: all `Int`s sort before
    /// all `Str`s; within a variant, the natural order applies.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Int(_), Value::Str(_)) => Ordering::Less,
            (Value::Str(_), Value::Int(_)) => Ordering::Greater,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Sym::intern("Chicago");
        let b = Sym::intern("Chicago");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "Chicago");
    }

    #[test]
    fn distinct_strings_get_distinct_syms() {
        assert_ne!(Sym::intern("NYC"), Sym::intern("Chicago"));
    }

    #[test]
    fn sym_orders_lexicographically_not_by_id() {
        // Intern in reverse-lexicographic order to make id order differ.
        let z = Sym::intern("zzz-order-test");
        let a = Sym::intern("aaa-order-test");
        assert!(a < z);
    }

    #[test]
    fn value_cmp_same_type() {
        assert_eq!(
            Value::Int(1).cmp_same_type(&Value::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::str("a").cmp_same_type(&Value::str("a")),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::Int(1).cmp_same_type(&Value::str("a")), None);
    }

    #[test]
    fn value_total_order_is_deterministic() {
        let mut vals = vec![
            Value::str("b"),
            Value::Int(5),
            Value::str("a"),
            Value::Int(-1),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Int(-1),
                Value::Int(5),
                Value::str("a"),
                Value::str("b")
            ]
        );
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("NYC").to_string(), "NYC");
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_sym(), None);
        assert_eq!(Value::str("x").as_sym(), Some(Sym::intern("x")));
        assert_eq!(Value::str("x").as_int(), None);
        assert_eq!(Value::Int(0).dtype(), Dtype::Int);
        assert_eq!(Value::str("x").dtype(), Dtype::Str);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    (0..100)
                        .map(|j| Sym::intern(&format!("conc-{}", (i + j) % 25)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for syms in &all {
            for s in syms {
                assert!(s.as_str().starts_with("conc-"));
            }
        }
        // Same string from different threads must be the same symbol.
        assert_eq!(Sym::intern("conc-0"), all[0][0]);
    }

    #[test]
    fn interning_across_shards_stays_consistent() {
        // Enough distinct strings to land in every shard; equality and
        // ordering must behave as if there were a single map.
        let syms: Vec<Sym> = (0..256)
            .map(|i| Sym::intern(&format!("shard-{i}")))
            .collect();
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(s.as_str(), format!("shard-{i}"));
            assert_eq!(*s, Sym::intern(&format!("shard-{i}")));
        }
        let mut sorted = syms.clone();
        sorted.sort();
        let mut by_str = syms.clone();
        by_str.sort_by(|a, b| a.as_str().cmp(b.as_str()));
        assert_eq!(sorted, by_str);
    }
}
