//! Peak-memory accounting for paper-scale runs.
//!
//! The `experiments -- scale` driver commits wall time *and* memory for
//! million-tuple solves, so regressions in the columnar layout show up in
//! `perf-check` like wall-time regressions do. Two complementary numbers:
//!
//! - [`Relation::heap_bytes`](crate::Relation::heap_bytes), summed over the
//!   relations a caller hands to [`MemStats::capture`] — the engine's own
//!   accounting of its column buffers, platform-independent.
//! - [`peak_rss_bytes`] — the process high-water mark (`VmHWM` from
//!   `/proc/self/status`), which also sees transient allocations (conflict
//!   CSR buffers, ILP tableaus). Linux-only; `None` elsewhere.

use crate::relation::Relation;

/// A point-in-time memory snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Summed [`Relation::heap_bytes`] of the captured relations.
    pub relation_heap_bytes: usize,
    /// Process peak RSS in bytes, when the platform exposes it.
    pub peak_rss_bytes: Option<u64>,
}

impl MemStats {
    /// Captures the column-buffer footprint of `rels` plus the process
    /// peak RSS.
    pub fn capture<'a>(rels: impl IntoIterator<Item = &'a Relation>) -> MemStats {
        MemStats {
            relation_heap_bytes: rels.into_iter().map(Relation::heap_bytes).sum(),
            peak_rss_bytes: peak_rss_bytes(),
        }
    }
}

/// The process's peak resident set size in bytes (`VmHWM`), or `None` when
/// the platform doesn't expose it.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vmhwm(&status)
}

/// Resets the kernel's peak-RSS high-water mark down to the *current* RSS
/// by writing `5` to `/proc/self/clear_refs` (see `proc(5)`). Without the
/// reset `VmHWM` is monotone over the process lifetime, so a multi-scenario
/// driver would attribute the heaviest scenario's peak to every later one.
/// Returns `true` when the reset took effect (Linux with a writable
/// `clear_refs`); callers on other platforms keep the monotone semantics.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Parses the `VmHWM:` line of a `/proc/<pid>/status` document (kB units).
fn parse_vmhwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::{Dtype, Value};

    #[test]
    fn parse_vmhwm_reads_kb() {
        let doc = "Name:\tx\nVmPeak:\t  999 kB\nVmHWM:\t  1234 kB\nThreads:\t1\n";
        assert_eq!(parse_vmhwm(doc), Some(1234 * 1024));
        assert_eq!(parse_vmhwm("Name:\tx\n"), None);
    }

    #[test]
    fn reset_drops_the_high_water_mark() {
        // Push the high-water mark up with a transient buffer big enough
        // to dominate the test process (mmap'd, so freeing returns it).
        let buf = vec![1u8; 64 << 20];
        std::hint::black_box(&buf[..]);
        drop(buf);
        let peak = peak_rss_bytes();
        if !reset_peak_rss() {
            return; // no writable clear_refs: monotone semantics kept
        }
        let after = peak_rss_bytes();
        if let (Some(peak), Some(after)) = (peak, after) {
            // Never above the old mark, and a real value (the reset
            // re-seeds the mark with the *current* RSS, not zero).
            assert!(after <= peak, "reset raised the mark: {peak} -> {after}");
            assert!(after > 0);
        }
    }

    #[test]
    fn capture_sums_relation_buffers() {
        let schema = Schema::new(vec![ColumnDef::attr("x", Dtype::Int)]).unwrap();
        let mut r = Relation::new("t", schema);
        for i in 0..100 {
            r.push_full_row(&[Value::Int(i)]).unwrap();
        }
        let stats = MemStats::capture([&r]);
        assert_eq!(stats.relation_heap_bytes, r.heap_bytes());
        assert!(stats.relation_heap_bytes >= 800);
        // On Linux (the CI and dev platform) the high-water mark is present
        // and at least as large as one small relation.
        if let Some(rss) = stats.peak_rss_bytes {
            assert!(rss as usize > stats.relation_heap_bytes);
        }
    }
}
