//! Value-set algebra for normalized selection conditions.
//!
//! The CC relationship classification of the paper (Definitions 4.2–4.4)
//! reduces to set algebra over the per-column value sets that a conjunctive
//! selection condition allows: an integer column's conjuncts intersect to an
//! interval, a categorical column's conjuncts intersect to a (usually
//! singleton) set of symbols. [`ValueSet`] implements exactly that algebra —
//! intersection, subset and disjointness tests.

use crate::predicate::{Atom, CmpOp};
use crate::value::{Sym, Value};
use std::collections::BTreeSet;
use std::fmt;

/// The set of values a conjunctive condition allows in one column.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValueSet {
    /// Integer interval `[lo, hi]` (inclusive). Always non-empty (`lo ≤ hi`).
    IntRange {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Finite set of categorical values. Always non-empty.
    Strs(BTreeSet<Sym>),
    /// The empty set (unsatisfiable condition).
    Empty,
}

impl ValueSet {
    /// The full integer range.
    pub fn all_ints() -> ValueSet {
        ValueSet::IntRange {
            lo: i64::MIN,
            hi: i64::MAX,
        }
    }

    /// An integer interval; collapses to `Empty` if `lo > hi`.
    pub fn range(lo: i64, hi: i64) -> ValueSet {
        if lo > hi {
            ValueSet::Empty
        } else {
            ValueSet::IntRange { lo, hi }
        }
    }

    /// A single integer.
    pub fn int(v: i64) -> ValueSet {
        ValueSet::IntRange { lo: v, hi: v }
    }

    /// A single categorical value.
    pub fn sym(s: Sym) -> ValueSet {
        let mut set = BTreeSet::new();
        set.insert(s);
        ValueSet::Strs(set)
    }

    /// A set of categorical values; collapses to `Empty` if none given.
    pub fn syms<I: IntoIterator<Item = Sym>>(iter: I) -> ValueSet {
        let set: BTreeSet<Sym> = iter.into_iter().collect();
        if set.is_empty() {
            ValueSet::Empty
        } else {
            ValueSet::Strs(set)
        }
    }

    /// Converts a comparison atom into the value set it allows.
    ///
    /// Returns `None` for forms that a single set cannot represent under
    /// conjunctive normalization (`≠`, or an ordering comparison on a
    /// categorical column). Cardinality constraints in the paper never use
    /// those forms; callers treat `None` as "cannot normalize".
    pub fn from_cmp(op: CmpOp, value: Value) -> Option<ValueSet> {
        match value {
            Value::Int(c) => Some(match op {
                CmpOp::Eq => ValueSet::int(c),
                CmpOp::Lt => ValueSet::range(i64::MIN, c.saturating_sub(1)),
                CmpOp::Le => ValueSet::range(i64::MIN, c),
                CmpOp::Gt => ValueSet::range(c.saturating_add(1), i64::MAX),
                CmpOp::Ge => ValueSet::range(c, i64::MAX),
                CmpOp::Ne => return None,
            }),
            Value::Str(s) => match op {
                CmpOp::Eq => Some(ValueSet::sym(s)),
                _ => None,
            },
        }
    }

    /// Converts any predicate atom into its value set (see [`Self::from_cmp`]).
    pub fn from_atom(atom: &Atom) -> Option<ValueSet> {
        match atom {
            Atom::Cmp { op, value, .. } => ValueSet::from_cmp(*op, *value),
            Atom::InRange { lo, hi, .. } => Some(ValueSet::range(*lo, *hi)),
        }
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, ValueSet::Empty)
    }

    /// Set intersection. Mismatched types intersect to `Empty`.
    pub fn intersect(&self, other: &ValueSet) -> ValueSet {
        match (self, other) {
            (ValueSet::Empty, _) | (_, ValueSet::Empty) => ValueSet::Empty,
            (ValueSet::IntRange { lo: a, hi: b }, ValueSet::IntRange { lo: c, hi: d }) => {
                ValueSet::range((*a).max(*c), (*b).min(*d))
            }
            (ValueSet::Strs(x), ValueSet::Strs(y)) => ValueSet::syms(x.intersection(y).copied()),
            _ => ValueSet::Empty,
        }
    }

    /// `true` if `self ⊆ other`. The empty set is a subset of everything;
    /// sets of different types are never subsets of each other (other than
    /// via emptiness).
    pub fn is_subset(&self, other: &ValueSet) -> bool {
        match (self, other) {
            (ValueSet::Empty, _) => true,
            (_, ValueSet::Empty) => false,
            (ValueSet::IntRange { lo: a, hi: b }, ValueSet::IntRange { lo: c, hi: d }) => {
                c <= a && b <= d
            }
            (ValueSet::Strs(x), ValueSet::Strs(y)) => x.is_subset(y),
            _ => false,
        }
    }

    /// `true` if the sets share no value.
    pub fn is_disjoint(&self, other: &ValueSet) -> bool {
        self.intersect(other).is_empty()
    }

    /// `true` if `v` belongs to the set.
    pub fn contains(&self, v: Value) -> bool {
        match v {
            Value::Int(x) => self.contains_int(x),
            Value::Str(s) => self.contains_sym(s),
        }
    }

    /// [`ValueSet::contains`] for a raw integer cell — hot loops reading
    /// typed column views test membership without boxing a [`Value`].
    #[inline]
    pub fn contains_int(&self, x: i64) -> bool {
        match self {
            ValueSet::IntRange { lo, hi } => *lo <= x && x <= *hi,
            ValueSet::Strs(_) | ValueSet::Empty => false,
        }
    }

    /// [`ValueSet::contains`] for a raw categorical cell.
    #[inline]
    pub fn contains_sym(&self, s: Sym) -> bool {
        match self {
            ValueSet::Strs(set) => set.contains(&s),
            ValueSet::IntRange { .. } | ValueSet::Empty => false,
        }
    }

    /// Picks an arbitrary representative value, preferring small magnitudes
    /// for integer ranges (used when materializing a CC's `R2`-side values).
    pub fn representative(&self) -> Option<Value> {
        match self {
            ValueSet::Empty => None,
            ValueSet::IntRange { lo, hi } => {
                let v = if *lo <= 0 && 0 <= *hi { 0 } else { *lo };
                Some(Value::Int(v.min(*hi)))
            }
            ValueSet::Strs(set) => set.iter().next().map(|s| Value::Str(*s)),
        }
    }

    /// `true` if the set holds exactly one value.
    pub fn is_singleton(&self) -> bool {
        match self {
            ValueSet::Empty => false,
            ValueSet::IntRange { lo, hi } => lo == hi,
            ValueSet::Strs(set) => set.len() == 1,
        }
    }

    /// Converts the set back to predicate atoms on `column`.
    pub fn to_atoms(&self, column: &str) -> Vec<Atom> {
        match self {
            // An unsatisfiable condition: x < MIN is always false.
            ValueSet::Empty => vec![Atom::cmp(column, CmpOp::Lt, i64::MIN)],
            ValueSet::IntRange { lo, hi } => {
                if lo == hi {
                    vec![Atom::eq(column, *lo)]
                } else {
                    vec![Atom::in_range(column, *lo, *hi)]
                }
            }
            ValueSet::Strs(set) => {
                // Conjunctive predicates can only express a singleton; larger
                // sets arise only internally and are not converted here.
                debug_assert_eq!(set.len(), 1, "only singleton Str sets convert to atoms");
                set.iter()
                    .map(|s| Atom::eq(column, Value::Str(*s)))
                    .collect()
            }
        }
    }
}

impl fmt::Display for ValueSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueSet::Empty => f.write_str("∅"),
            ValueSet::IntRange { lo, hi } => {
                if lo == hi {
                    write!(f, "{{{lo}}}")
                } else {
                    let l = if *lo == i64::MIN {
                        "-inf".to_owned()
                    } else {
                        lo.to_string()
                    };
                    let h = if *hi == i64::MAX {
                        "+inf".to_owned()
                    } else {
                        hi.to_string()
                    };
                    write!(f, "[{l}, {h}]")
                }
            }
            ValueSet::Strs(set) => {
                write!(f, "{{")?;
                for (i, s) in set.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_collapses_when_empty() {
        assert_eq!(ValueSet::range(5, 4), ValueSet::Empty);
        assert!(!ValueSet::range(5, 5).is_empty());
    }

    #[test]
    fn from_cmp_int() {
        assert_eq!(
            ValueSet::from_cmp(CmpOp::Le, Value::Int(24)),
            Some(ValueSet::range(i64::MIN, 24))
        );
        assert_eq!(
            ValueSet::from_cmp(CmpOp::Gt, Value::Int(24)),
            Some(ValueSet::range(25, i64::MAX))
        );
        assert_eq!(
            ValueSet::from_cmp(CmpOp::Eq, Value::Int(7)),
            Some(ValueSet::int(7))
        );
        assert_eq!(ValueSet::from_cmp(CmpOp::Ne, Value::Int(7)), None);
    }

    #[test]
    fn from_cmp_str() {
        assert_eq!(
            ValueSet::from_cmp(CmpOp::Eq, Value::str("NYC")),
            Some(ValueSet::sym(Sym::intern("NYC")))
        );
        assert_eq!(ValueSet::from_cmp(CmpOp::Lt, Value::str("NYC")), None);
    }

    #[test]
    fn intersection() {
        let a = ValueSet::range(10, 50);
        let b = ValueSet::range(30, 70);
        assert_eq!(a.intersect(&b), ValueSet::range(30, 50));
        assert_eq!(a.intersect(&ValueSet::range(60, 70)), ValueSet::Empty);
        let s1 = ValueSet::sym(Sym::intern("a"));
        let s2 = ValueSet::sym(Sym::intern("b"));
        assert_eq!(s1.intersect(&s2), ValueSet::Empty);
        assert_eq!(s1.intersect(&s1), s1);
        // Type mismatch intersects to empty.
        assert_eq!(a.intersect(&s1), ValueSet::Empty);
    }

    #[test]
    fn subset_and_disjoint() {
        let small = ValueSet::range(18, 24);
        let big = ValueSet::range(13, 64);
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(!small.is_disjoint(&big));
        assert!(ValueSet::range(10, 14).is_disjoint(&ValueSet::range(50, 60)));
        assert!(ValueSet::Empty.is_subset(&small));
        assert!(!small.is_subset(&ValueSet::Empty));
    }

    #[test]
    fn contains_and_representative() {
        let r = ValueSet::range(10, 20);
        assert!(r.contains(Value::Int(10)));
        assert!(!r.contains(Value::Int(9)));
        assert!(!r.contains(Value::str("x")));
        // Typed fast paths agree with the boxed entry point.
        assert!(r.contains_int(10) && !r.contains_int(9));
        assert!(!r.contains_sym(Sym::intern("x")));
        let s = ValueSet::sym(Sym::intern("NYC"));
        assert!(s.contains_sym(Sym::intern("NYC")));
        assert!(!s.contains_int(0));
        assert!(!ValueSet::Empty.contains_int(0));
        assert_eq!(r.representative(), Some(Value::Int(10)));
        assert_eq!(ValueSet::range(-5, 5).representative(), Some(Value::Int(0)));
        assert_eq!(ValueSet::Empty.representative(), None);
        let s = ValueSet::sym(Sym::intern("NYC"));
        assert_eq!(s.representative(), Some(Value::str("NYC")));
    }

    #[test]
    fn to_atoms_roundtrip() {
        assert_eq!(
            ValueSet::int(7).to_atoms("Age"),
            vec![Atom::eq("Age", 7i64)]
        );
        assert_eq!(
            ValueSet::range(1, 9).to_atoms("Age"),
            vec![Atom::in_range("Age", 1, 9)]
        );
        assert_eq!(
            ValueSet::sym(Sym::intern("NYC")).to_atoms("Area"),
            vec![Atom::eq("Area", Value::str("NYC"))]
        );
    }

    #[test]
    fn singleton_detection() {
        assert!(ValueSet::int(3).is_singleton());
        assert!(!ValueSet::range(3, 4).is_singleton());
        assert!(ValueSet::sym(Sym::intern("q")).is_singleton());
        assert!(!ValueSet::Empty.is_singleton());
    }

    #[test]
    fn display() {
        assert_eq!(ValueSet::range(1, 2).to_string(), "[1, 2]");
        assert_eq!(ValueSet::int(5).to_string(), "{5}");
        assert_eq!(ValueSet::Empty.to_string(), "∅");
        assert_eq!(ValueSet::range(i64::MIN, 24).to_string(), "[-inf, 24]");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_range() -> impl Strategy<Value = ValueSet> {
        (-100i64..100, -100i64..100).prop_map(|(a, b)| ValueSet::range(a.min(b), a.max(b)))
    }

    proptest! {
        #[test]
        fn intersect_commutes(a in arb_range(), b in arb_range()) {
            prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        }

        #[test]
        fn intersect_is_subset_of_both(a in arb_range(), b in arb_range()) {
            let i = a.intersect(&b);
            prop_assert!(i.is_subset(&a));
            prop_assert!(i.is_subset(&b));
        }

        #[test]
        fn subset_iff_intersection_is_self(a in arb_range(), b in arb_range()) {
            prop_assert_eq!(a.is_subset(&b), a.intersect(&b) == a);
        }

        #[test]
        fn disjoint_iff_no_common_point(a in arb_range(), b in arb_range()) {
            let witnesses = (-100i64..100).any(|v| {
                a.contains(Value::Int(v)) && b.contains(Value::Int(v))
            });
            prop_assert_eq!(!a.is_disjoint(&b), witnesses);
        }

        #[test]
        fn representative_is_member(a in arb_range()) {
            if let Some(v) = a.representative() {
                prop_assert!(a.contains(v));
            } else {
                prop_assert!(a.is_empty());
            }
        }
    }
}
