//! Sampled per-column statistics for cost-based DC planning.
//!
//! [`ColumnStats`] summarizes one column of a [`Relation`]: how many cells
//! are present, an estimate of the number of distinct values, the sampled
//! min/max of integer columns, and the most frequent dictionary codes of
//! categorical columns. The summaries feed `cextend-constraints`'
//! `PlanCost` model, which replaces the static Eq/range selectivity hints
//! of the PR 5 planner with estimates derived from the data actually being
//! partitioned (the query-optimizer move; cf. Stefanoni et al.'s
//! summary-based cardinality estimation for conjunctive queries).
//!
//! Sampling is **fixed-seed and deterministic**: row `r` is sampled iff
//! `splitmix64(SEED ^ r) % stride == 0`, with the stride chosen so roughly
//! [`SAMPLE_TARGET`] rows are visited regardless of relation size. The
//! same relation therefore always yields the same statistics — planner
//! decisions stay bit-reproducible across runs, worker widths and
//! schedulers.
//!
//! Statistics are computed lazily by [`Relation::column_stats`] and cached
//! on the relation behind a version stamp; any mutation (cell writes,
//! pushed rows, cleared columns) invalidates the cache wholesale.

use crate::relation::Relation;
use crate::schema::ColId;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Roughly how many rows one stats computation samples.
pub const SAMPLE_TARGET: usize = 1024;

/// How many high-frequency dictionary codes are retained per categorical
/// column.
pub const TOP_K: usize = 4;

/// Fixed sampling seed (arbitrary odd constant; never derived from run
/// state, so stats are identical across runs).
const SEED: u64 = 0x5EED_57A7_5171_CA5E;

/// splitmix64 — the same finalizer the hypergraph fingerprint uses; good
/// avalanche for sequential row ids.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Summary statistics of one column (see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnStats {
    /// Rows in the relation when the stats were computed.
    pub n_rows: usize,
    /// Present (non-missing) cells — exact, from the validity bitmap.
    pub n_present: usize,
    /// Rows visited by the sampler.
    pub sampled: usize,
    /// Estimated number of distinct present values. Exact for categorical
    /// columns (the dictionary is authoritative) and whenever the sampler
    /// visited every row.
    pub n_distinct: usize,
    /// Smallest sampled integer value (`None` for categorical columns or
    /// when no sampled cell was present).
    pub min: Option<i64>,
    /// Largest sampled integer value.
    pub max: Option<i64>,
    /// Categorical columns: the up-to-[`TOP_K`] most frequent dictionary
    /// codes in the sample as `(code, sample_count)`, count-descending
    /// (ties by code).
    pub top_codes: Vec<(u32, u32)>,
    /// `true` when the sampler visited every row (stride 1), making
    /// `n_distinct`/`min`/`max` exact rather than estimates.
    pub exact: bool,
}

impl ColumnStats {
    /// Fraction of cells that are missing.
    pub fn null_fraction(&self) -> f64 {
        if self.n_rows == 0 {
            0.0
        } else {
            1.0 - self.n_present as f64 / self.n_rows as f64
        }
    }

    /// Estimated fraction of present rows matching an equality predicate
    /// against an unknown constant: `1 / n_distinct` under the uniform
    /// assumption, clamped to `(0, 1]`.
    pub fn eq_selectivity(&self) -> f64 {
        (1.0 / self.n_distinct.max(1) as f64).min(1.0)
    }

    /// Estimated fraction of present rows with value `< bound` (uniform
    /// over the sampled `[min, max]` span). `0.5` when the column carries
    /// no integer range — the uninformed prior.
    pub fn lt_fraction(&self, bound: i64) -> f64 {
        match (self.min, self.max) {
            (Some(lo), Some(hi)) if hi > lo => {
                let span = (hi - lo) as f64;
                (((bound.saturating_sub(lo)) as f64) / span).clamp(0.0, 1.0)
            }
            (Some(lo), Some(_)) => {
                if bound > lo {
                    1.0
                } else {
                    0.0
                }
            }
            _ => 0.5,
        }
    }

    /// Sample frequency of dictionary code `code`, if it is one of the
    /// retained [`top_codes`](ColumnStats::top_codes).
    pub fn top_code_frequency(&self, code: u32) -> Option<f64> {
        if self.sampled == 0 {
            return None;
        }
        self.top_codes
            .iter()
            .find(|&&(c, _)| c == code)
            .map(|&(_, n)| n as f64 / self.sampled as f64)
    }
}

/// Haas–Stokes `Duj1` distinct-value estimator: `d̂ = d / (1 − (1 − q)·f₁/s)`
/// where `d` distinct values and `f₁` singletons were seen in `s` samples
/// drawn from `n` rows (`q = s/n`). Clamped to `[d, n]`.
fn estimate_distinct(d: usize, f1: usize, s: usize, n: usize) -> usize {
    if s == 0 || n == 0 {
        return 0;
    }
    if s >= n {
        return d;
    }
    let q = s as f64 / n as f64;
    let denom = 1.0 - (1.0 - q) * (f1 as f64 / s as f64);
    let est = if denom > 0.0 {
        d as f64 / denom
    } else {
        n as f64
    };
    (est.round() as usize).clamp(d, n)
}

/// The deterministic row sampler: visits row `r` iff
/// `splitmix64(SEED ^ r) % stride == 0`.
struct Sampler {
    stride: u64,
}

impl Sampler {
    fn new(n_rows: usize) -> Sampler {
        Sampler {
            stride: (n_rows.div_ceil(SAMPLE_TARGET) as u64).max(1),
        }
    }

    #[inline]
    fn hits(&self, row: usize) -> bool {
        self.stride == 1 || splitmix64(SEED ^ row as u64).is_multiple_of(self.stride)
    }

    fn exact(&self) -> bool {
        self.stride == 1
    }
}

/// The per-relation stats cache: a version stamp bumped on every mutation
/// plus the per-column summaries computed under that version. Cloning a
/// relation clones the **data**, not the cache — the clone recomputes
/// lazily (stats are cheap and a fresh cache keeps `Clone` allocation-
/// predictable).
#[derive(Default)]
pub(crate) struct StatsCache {
    version: AtomicU64,
    cached: RwLock<HashMap<ColId, (u64, Arc<ColumnStats>)>>,
}

impl StatsCache {
    /// Invalidates every cached summary (O(1): bumps the version stamp).
    #[inline]
    pub(crate) fn bump(&self) {
        self.version.fetch_add(1, Ordering::Relaxed);
    }
}

impl Clone for StatsCache {
    fn clone(&self) -> StatsCache {
        StatsCache::default()
    }
}

impl std::fmt::Debug for StatsCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StatsCache(v{})", self.version.load(Ordering::Relaxed))
    }
}

impl Relation {
    /// The (possibly cached) [`ColumnStats`] of `col`, or `None` when the
    /// column id is out of range. Computation is lazy and deterministic;
    /// any mutation of the relation invalidates the cache (see the module
    /// docs).
    pub fn column_stats(&self, col: ColId) -> Option<Arc<ColumnStats>> {
        if col >= self.schema().len() {
            return None;
        }
        let cache = self.stats_cache();
        let version = cache.version.load(Ordering::Relaxed);
        if let Some((v, stats)) = cache.cached.read().expect("stats lock").get(&col) {
            if *v == version {
                return Some(Arc::clone(stats));
            }
        }
        let stats = Arc::new(self.compute_column_stats(col));
        match cache.cached.write().expect("stats lock").entry(col) {
            Entry::Occupied(mut e) => {
                // A concurrent reader may have filled the slot; both
                // computed from the same snapshot, so either value works.
                if e.get().0 != version {
                    e.insert((version, Arc::clone(&stats)));
                }
            }
            Entry::Vacant(e) => {
                e.insert((version, Arc::clone(&stats)));
            }
        }
        Some(stats)
    }

    /// One uncached stats computation (see the module docs for the
    /// sampling scheme and estimators).
    fn compute_column_stats(&self, col: ColId) -> ColumnStats {
        let n = self.n_rows();
        let sampler = Sampler::new(n);
        if let Some(view) = self.int_view(col) {
            let n_present = count_validity(view.validity_words(), n);
            let mut counts: HashMap<i64, u32> = HashMap::new();
            let mut sampled = 0usize;
            let (mut min, mut max) = (None, None);
            for row in 0..n {
                if !sampler.hits(row) {
                    continue;
                }
                sampled += 1;
                if let Some(v) = view.get(row) {
                    *counts.entry(v).or_insert(0) += 1;
                    min = Some(min.map_or(v, |m: i64| m.min(v)));
                    max = Some(max.map_or(v, |m: i64| m.max(v)));
                }
            }
            let d = counts.len();
            let f1 = counts.values().filter(|&&c| c == 1).count();
            let present_sampled = counts.values().map(|&c| c as usize).sum::<usize>();
            let n_distinct = if sampler.exact() {
                d
            } else {
                // Scale against the present-cell population, not raw rows:
                // missing cells carry no values.
                estimate_distinct(d, f1, present_sampled.max(1), n_present.max(1))
            };
            ColumnStats {
                n_rows: n,
                n_present,
                sampled,
                n_distinct,
                min,
                max,
                top_codes: Vec::new(),
                exact: sampler.exact(),
            }
        } else {
            let view = self.sym_view(col).expect("column is int or sym");
            let n_present = count_validity(view.validity_words(), n);
            let mut counts: HashMap<u32, u32> = HashMap::new();
            let mut sampled = 0usize;
            for row in 0..n {
                if !sampler.hits(row) {
                    continue;
                }
                sampled += 1;
                if let Some(code) = view.code(row) {
                    *counts.entry(code).or_insert(0) += 1;
                }
            }
            let mut top: Vec<(u32, u32)> = counts.into_iter().collect();
            // Count-descending, code-ascending: deterministic top-k.
            top.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            top.truncate(TOP_K);
            ColumnStats {
                n_rows: n,
                n_present,
                sampled,
                // The dictionary is exact and free — no estimation needed.
                n_distinct: view.dict().len(),
                min: None,
                max: None,
                top_codes: top,
                exact: true,
            }
        }
    }
}

/// Set bits among the first `len` positions of a packed validity bitmap.
fn count_validity(words: &[u64], len: usize) -> usize {
    let full = len >> 6;
    let mut n: usize = words[..full].iter().map(|w| w.count_ones() as usize).sum();
    if len & 63 != 0 {
        n += (words[full] & ((1u64 << (len & 63)) - 1)).count_ones() as usize;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::{Dtype, Value};

    fn int_relation(values: &[Option<i64>]) -> Relation {
        let schema = Schema::new(vec![ColumnDef::attr("x", Dtype::Int)]).unwrap();
        let mut r = Relation::new("t", schema);
        for v in values {
            r.push_row(&[v.map(Value::Int)]).unwrap();
        }
        r
    }

    #[test]
    fn small_int_column_is_exact() {
        let r = int_relation(&[Some(5), Some(9), None, Some(5)]);
        let s = r.column_stats(0).unwrap();
        assert!(s.exact);
        assert_eq!(s.n_rows, 4);
        assert_eq!(s.n_present, 3);
        assert_eq!(s.sampled, 4);
        assert_eq!(s.n_distinct, 2);
        assert_eq!((s.min, s.max), (Some(5), Some(9)));
        assert!((s.null_fraction() - 0.25).abs() < 1e-12);
        assert!((s.eq_selectivity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lt_fraction_interpolates_the_span() {
        let r = int_relation(&[Some(0), Some(100)]);
        let s = r.column_stats(0).unwrap();
        assert!((s.lt_fraction(50) - 0.5).abs() < 1e-12);
        assert_eq!(s.lt_fraction(-5), 0.0);
        assert_eq!(s.lt_fraction(200), 1.0);
    }

    #[test]
    fn sym_column_reports_exact_distinct_and_top_codes() {
        let schema = Schema::new(vec![ColumnDef::attr("rel", Dtype::Str)]).unwrap();
        let mut r = Relation::new("t", schema);
        for name in ["a", "a", "a", "b", "b", "c"] {
            r.push_row(&[Some(Value::str(name))]).unwrap();
        }
        let s = r.column_stats(0).unwrap();
        assert_eq!(s.n_distinct, 3);
        assert_eq!(s.top_codes[0], (0, 3)); // "a" interned first, 3 hits
        assert_eq!(s.top_codes[1], (1, 2));
        let f = s.top_code_frequency(0).unwrap();
        assert!((f - 0.5).abs() < 1e-12);
        assert_eq!(s.top_code_frequency(99), None);
    }

    #[test]
    fn mutation_invalidates_the_cache() {
        let mut r = int_relation(&[Some(1), Some(2)]);
        assert_eq!(r.column_stats(0).unwrap().n_distinct, 2);
        r.set(1, 0, Some(Value::Int(1))).unwrap();
        assert_eq!(r.column_stats(0).unwrap().n_distinct, 1);
        r.push_row(&[Some(Value::Int(7))]).unwrap();
        assert_eq!(r.column_stats(0).unwrap().n_rows, 3);
        r.clear_column(0);
        assert_eq!(r.column_stats(0).unwrap().n_present, 0);
    }

    #[test]
    fn cache_hits_return_the_same_arc() {
        let r = int_relation(&[Some(1), Some(2)]);
        let a = r.column_stats(0).unwrap();
        let b = r.column_stats(0).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(r.column_stats(7), None);
    }

    #[test]
    fn cloned_relation_recomputes_lazily() {
        let r = int_relation(&[Some(1), Some(2)]);
        let _ = r.column_stats(0).unwrap();
        let c = r.clone();
        assert_eq!(c.column_stats(0).unwrap().n_distinct, 2);
    }

    #[test]
    fn sampling_is_deterministic_and_estimates_sanely() {
        // 50_000 rows, 1_000 distinct values → stride > 1, estimate lands
        // within a loose band of the truth and repeats exactly.
        let values: Vec<Option<i64>> = (0..50_000).map(|i| Some(i % 1000)).collect();
        let r = int_relation(&values);
        let s = r.column_stats(0).unwrap();
        assert!(!s.exact);
        assert!(s.sampled >= SAMPLE_TARGET / 4, "sampled {}", s.sampled);
        assert!(
            (300..=5000).contains(&s.n_distinct),
            "estimate {} far from 1000",
            s.n_distinct
        );
        let again = int_relation(&values).column_stats(0).unwrap();
        assert_eq!(*s, *again, "sampling must be deterministic");
    }

    #[test]
    fn duj1_estimator_bounds() {
        // All singletons in the sample → extrapolates toward n.
        assert!(estimate_distinct(100, 100, 100, 10_000) > 5_000);
        // No singletons (every value repeated) → stays at d.
        assert_eq!(estimate_distinct(10, 0, 100, 10_000), 10);
        // Full scan → exact.
        assert_eq!(estimate_distinct(42, 13, 500, 500), 42);
        assert_eq!(estimate_distinct(0, 0, 0, 10), 0);
    }
}
