//! Error type for the relational substrate.

use crate::value::Dtype;
use std::fmt;

/// Errors raised by schema validation, relation mutation, and I/O.
#[derive(Debug)]
pub enum TableError {
    /// A column name was not found in the schema.
    UnknownColumn {
        /// Offending column name.
        column: String,
        /// Relation the lookup ran against.
        relation: String,
    },
    /// A value's type did not match the column's declared type.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Declared type.
        expected: Dtype,
        /// Type of the offending value.
        got: Dtype,
    },
    /// A row had the wrong number of cells.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of cells supplied.
        got: usize,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Number of rows in the relation.
        len: usize,
    },
    /// A bulk load froze with ragged columns (unequal lengths).
    ColumnLengthMismatch {
        /// Relation being built.
        relation: String,
        /// First column whose length disagrees.
        column: String,
        /// Length of the reference (first) column.
        expected: usize,
        /// Length of the offending column.
        got: usize,
    },
    /// Two column names collide in one schema.
    DuplicateColumn(String),
    /// A schema invariant was violated (e.g. no key column where one is required).
    SchemaViolation(String),
    /// CSV parsing failed.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::UnknownColumn { column, relation } => {
                write!(f, "unknown column `{column}` in relation `{relation}`")
            }
            TableError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch in column `{column}`: expected {expected}, got {got}"
            ),
            TableError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} columns, row has {got}"
                )
            }
            TableError::RowOutOfBounds { row, len } => {
                write!(f, "row index {row} out of bounds (relation has {len} rows)")
            }
            TableError::ColumnLengthMismatch {
                relation,
                column,
                expected,
                got,
            } => write!(
                f,
                "ragged bulk load of `{relation}`: column `{column}` has {got} rows, expected {expected}"
            ),
            TableError::DuplicateColumn(name) => write!(f, "duplicate column `{name}`"),
            TableError::SchemaViolation(msg) => write!(f, "schema violation: {msg}"),
            TableError::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            TableError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for TableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TableError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TableError {
    fn from(e: std::io::Error) -> Self {
        TableError::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, TableError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TableError::UnknownColumn {
            column: "Age".into(),
            relation: "Persons".into(),
        };
        assert!(e.to_string().contains("Age"));
        assert!(e.to_string().contains("Persons"));

        let e = TableError::TypeMismatch {
            column: "Age".into(),
            expected: Dtype::Int,
            got: Dtype::Str,
        };
        assert!(e.to_string().contains("expected int"));
    }
}
