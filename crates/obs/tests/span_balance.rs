//! Property tests: span guards stay balanced — and hence the collected
//! trace validates — under arbitrary nesting, early returns and panics.
//!
//! The recorder is process-global, so every case drains the collector
//! under a shared lock before and after recording.

use std::sync::{Mutex, MutexGuard, OnceLock};

use cextend_obs as obs;
use proptest::prelude::*;

fn recorder_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One scripted action inside the traced region.
#[derive(Clone, Debug)]
enum Action {
    /// Open a nested span (depth-bounded) and recurse.
    Nest,
    /// Close the innermost open span.
    Pop,
    /// Record a counter increment.
    Count(u8),
    /// Return early out of the whole region (guards unwind via Drop).
    EarlyReturn,
    /// Panic inside the region (caught by the harness).
    Panic,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    // Weighted pick (the vendored proptest subset has no `prop_oneof`).
    (0u8..11).prop_map(|n| match n {
        0..=3 => Action::Nest,
        4..=6 => Action::Pop,
        7 | 8 => Action::Count(n - 6),
        9 => Action::EarlyReturn,
        _ => Action::Panic,
    })
}

/// Open span guards, dropped innermost-first like lexical scopes (a bare
/// `Vec` would drop front-to-back and unbalance the outer span).
struct GuardStack(Vec<obs::Span>);

impl Drop for GuardStack {
    fn drop(&mut self) {
        while self.0.pop().is_some() {}
    }
}

/// Runs the action script with RAII span guards; may return early or panic.
fn run_script(script: &[Action]) {
    let mut guards = GuardStack(vec![obs::span("root")]);
    let names = ["hasse", "fill", "coloring", "repair"];
    for (i, action) in script.iter().enumerate() {
        match action {
            Action::Nest => {
                if guards.0.len() < 8 {
                    guards.0.push(obs::span(names[i % names.len()]));
                }
            }
            Action::Pop => {
                if guards.0.len() > 1 {
                    guards.0.pop();
                }
            }
            Action::Count(n) => obs::counter_add("script.events", u64::from(*n)),
            Action::EarlyReturn => return,
            Action::Panic => panic!("scripted panic"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spans_balance_under_panic_and_early_return(script in prop::collection::vec(action_strategy(), 0..24)) {
        let _lock = recorder_lock();
        let _ = obs::take_trace();
        obs::set_recording(true);
        let outcome = std::panic::catch_unwind(|| run_script(&script));
        obs::set_recording(false);
        let trace = obs::take_trace();
        // Whether the script finished, returned early, or panicked, every
        // opened guard dropped, so the trace must validate as balanced.
        prop_assert!(outcome.is_ok() || script.iter().any(|a| matches!(a, Action::Panic)));
        if let Err(msg) = trace.validate() {
            return Err(TestCaseError::fail(format!("unbalanced trace: {msg}")));
        }
        // The root span is always recorded, is the last event its guard
        // stack dropped, and contains every nested span's interval.
        prop_assert!(trace.self_times().contains_key("root"));
        let root = trace
            .spans
            .iter()
            .find(|s| s.name == "root")
            .expect("root span recorded");
        let root_end = root.ts_ns + root.dur_ns;
        for span in &trace.spans {
            prop_assert!(span.ts_ns >= root.ts_ns && span.ts_ns + span.dur_ns <= root_end,
                "span {} [{}, {}] escapes root [{}, {}]",
                span.name, span.ts_ns, span.ts_ns + span.dur_ns, root.ts_ns, root_end);
        }
    }
}
