//! # cextend-obs — structured observability for the C-Extension solver
//!
//! A zero-external-dependency tracing layer with two tiers:
//!
//! 1. **Stage frames** (always on): a thread-local stack of frames, each
//!    accumulating `(stage name, duration)` totals. The solver opens a
//!    [`frame`] per solve, wraps every pipeline stage in a [`stage`] guard
//!    (or folds worker-measured durations in with [`stage_add`]), and
//!    re-derives its `StageTimings` from [`Frame::totals`] — sub-stage
//!    timings stop being hand-threaded fields. Cost per stage is the same
//!    pair of `Instant` reads the old `stats.timings.x += t.elapsed()`
//!    pattern already paid.
//! 2. **Span + counter recording** (off by default, a branch on an
//!    [`AtomicBool`]): when enabled via [`set_recording`], stage guards,
//!    [`span`]/[`span_dyn`] guards, and [`timed`] closures additionally
//!    emit complete-span events (nanosecond wall offset from a process
//!    epoch + small-integer thread id), and [`counter_add`] accumulates
//!    named counters. Events are buffered in thread-local vectors and
//!    flushed to a global collector when the buffer grows, when a worker
//!    closure finishes ([`flush_thread`] — pools call it as the closure's
//!    last action), and at [`take_trace`] — collection is lock-cheap on
//!    the hot path.
//!
//! The collected [`Trace`] validates itself (balanced nesting, monotone
//! timestamps), aggregates per-stage self-times, and exports the Chrome
//! Trace Event Format (`trace.json`, loadable in Perfetto or
//! `chrome://tracing`).
//!
//! The human sink lives here too: [`trace_level`] caches the
//! `CEXTEND_TRACE` env var once (`0`/unset = silent, `2` = per-solve stage
//! tree, any other non-empty value = progress lines, preserving the old
//! "set means on" behaviour), [`tracef!`] prints gated `[trace]` lines to
//! stderr, and [`narrate!`] routes harness progress narration to stderr so
//! machine-readable stdout stays parseable.

#![warn(missing_docs)]

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// CEXTEND_TRACE levels + human sink
// ---------------------------------------------------------------------------

/// Cached `CEXTEND_TRACE` level; `u8::MAX` means "not read yet".
static LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);

fn parse_level(raw: Option<&str>) -> u8 {
    match raw.map(str::trim) {
        None | Some("") | Some("0") => 0,
        Some("2") => 2,
        Some(_) => 1,
    }
}

/// The effective `CEXTEND_TRACE` level: `0` silent, `1` progress lines,
/// `2` progress lines plus a per-solve stage tree. Unset or empty means
/// `0`; any other unrecognized value means `1` (the historical "set means
/// on" contract). Read from the environment once, then cached.
pub fn trace_level() -> u8 {
    let cached = LEVEL.load(Ordering::Relaxed);
    if cached != u8::MAX {
        return cached;
    }
    let level = parse_level(std::env::var("CEXTEND_TRACE").ok().as_deref());
    LEVEL.store(level, Ordering::Relaxed);
    level
}

/// `true` when trace output is on at all (level ≥ 1). The single check that
/// replaces the scattered `env::var_os("CEXTEND_TRACE")` probes.
#[inline]
pub fn trace_enabled() -> bool {
    trace_level() >= 1
}

/// Overrides the cached trace level (tests and the `profile` driver).
pub fn set_trace_level(level: u8) {
    LEVEL.store(level.min(2), Ordering::Relaxed);
}

/// Prints a `[trace]`-prefixed line to stderr when [`trace_enabled`].
#[macro_export]
macro_rules! tracef {
    ($($arg:tt)*) => {
        if $crate::trace_enabled() {
            eprintln!("[trace] {}", format_args!($($arg)*));
        }
    };
}

/// Routes harness progress narration to stderr (the human sink), keeping
/// machine-readable stdout clean. Always prints.
#[macro_export]
macro_rules! narrate {
    ($($arg:tt)*) => {
        eprintln!("{}", format_args!($($arg)*));
    };
}

/// Renders an indented `(depth, name, duration)` tree for the human sink,
/// one `[trace]` line per entry.
pub fn render_tree(entries: &[(usize, &str, Duration)]) -> String {
    let mut out = String::new();
    for &(depth, name, dur) in entries {
        out.push_str("[trace] ");
        for _ in 0..depth {
            out.push_str("  ");
        }
        let pad = 24usize.saturating_sub(name.len() + 2 * depth);
        out.push_str(name);
        for _ in 0..pad {
            out.push(' ');
        }
        out.push_str(&format!(" {dur:?}\n"));
    }
    out
}

// ---------------------------------------------------------------------------
// Tier A: stage frames (always on)
// ---------------------------------------------------------------------------

thread_local! {
    /// Stack of open stage frames on this thread; the innermost frame
    /// receives stage durations.
    static FRAMES: RefCell<Vec<Vec<(&'static str, Duration)>>> = const { RefCell::new(Vec::new()) };
}

/// Accumulates `dur` under `name` in this thread's innermost open frame.
/// No-op when no frame is open. Use for durations measured on worker
/// threads and absorbed coordinator-side (workers already emitted the
/// spans, so this adds no span).
pub fn stage_add(name: &'static str, dur: Duration) {
    FRAMES.with(|frames| {
        if let Some(frame) = frames.borrow_mut().last_mut() {
            frame_accumulate(frame, name, dur);
        }
    });
}

fn frame_accumulate(frame: &mut Vec<(&'static str, Duration)>, name: &'static str, dur: Duration) {
    for entry in frame.iter_mut() {
        if entry.0 == name {
            entry.1 += dur;
            return;
        }
    }
    frame.push((name, dur));
}

/// An open stage frame; see [`frame`].
#[must_use = "dropping a Frame immediately closes it"]
pub struct Frame {
    closed: bool,
}

/// Opens a stage frame on this thread. Stage durations recorded while it is
/// innermost accumulate into it; [`Frame::totals`] closes it and returns
/// them. Frames nest: closing (or dropping, e.g. during unwinding) folds
/// the totals into the parent frame, so an outer frame sees everything its
/// inner solves measured.
pub fn frame() -> Frame {
    FRAMES.with(|frames| frames.borrow_mut().push(Vec::new()));
    Frame { closed: false }
}

impl Frame {
    /// Closes the frame and returns its accumulated `(stage, total)` pairs
    /// in first-recorded order (also folded into the parent frame, if any).
    pub fn totals(mut self) -> Vec<(&'static str, Duration)> {
        self.closed = true;
        pop_frame()
    }
}

impl Drop for Frame {
    fn drop(&mut self) {
        if !self.closed {
            pop_frame();
        }
    }
}

fn pop_frame() -> Vec<(&'static str, Duration)> {
    FRAMES.with(|frames| {
        let mut stack = frames.borrow_mut();
        let top = stack.pop().unwrap_or_default();
        if let Some(parent) = stack.last_mut() {
            for &(name, dur) in &top {
                frame_accumulate(parent, name, dur);
            }
        }
        top
    })
}

/// RAII guard for one timed pipeline stage; see [`stage`].
#[must_use = "dropping a Stage guard immediately ends the stage"]
pub struct Stage {
    name: &'static str,
    start: Instant,
    ts_ns: u64,
    recorded: bool,
}

/// Starts timing a pipeline stage. On drop the elapsed time accumulates
/// into the innermost frame, and — when recording — a span event with the
/// same duration is emitted, so trace aggregates and `StageTimings` agree
/// exactly.
pub fn stage(name: &'static str) -> Stage {
    let recorded = recording();
    let ts_ns = if recorded { now_ns() } else { 0 };
    Stage {
        name,
        start: Instant::now(),
        ts_ns,
        recorded,
    }
}

impl Drop for Stage {
    fn drop(&mut self) {
        // When recording, both endpoints come from `now_ns` so the span's
        // computed end is exact: per-thread end times stay monotone and
        // children never outlast parents by clock-read jitter. The frame
        // receives that same duration, keeping the two tiers identical.
        let dur = if self.recorded {
            let dur = Duration::from_nanos(now_ns().saturating_sub(self.ts_ns));
            push_span(Cow::Borrowed(self.name), self.ts_ns, dur);
            dur
        } else {
            self.start.elapsed()
        };
        stage_add(self.name, dur);
    }
}

/// Runs `f`, returning its result and the elapsed wall time. When
/// recording, also emits a span with exactly that duration — the returned
/// duration and the span interval come from the same pair of instants, so
/// a caller that `stage_add`s the return value keeps trace aggregates and
/// stage totals identical. Does *not* touch the stage frame itself.
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, Duration) {
    if !recording() {
        let start = Instant::now();
        let out = f();
        return (out, start.elapsed());
    }
    let ts_ns = now_ns();
    let out = f();
    let dur = Duration::from_nanos(now_ns().saturating_sub(ts_ns));
    push_span(Cow::Borrowed(name), ts_ns, dur);
    (out, dur)
}

// ---------------------------------------------------------------------------
// Tier B: span + counter recording (AtomicBool-gated)
// ---------------------------------------------------------------------------

/// Whether span/counter recording is on. All hot-path recording calls
/// branch on this and return immediately when it is `false`.
static RECORDING: AtomicBool = AtomicBool::new(false);

/// `true` when span/counter recording is enabled.
#[inline]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Turns span/counter recording on or off.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Process-wide epoch all span timestamps are relative to.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process epoch.
fn now_ns() -> u64 {
    let e = epoch();
    Instant::now().duration_since(e).as_nanos() as u64
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_BUF: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::new());
}

/// Flush the thread-local span buffer to the collector at this size.
const FLUSH_AT: usize = 256;

struct ThreadBuf {
    tid: u64,
    spans: Vec<SpanEvent>,
    counters: Vec<(&'static str, u64)>,
}

impl ThreadBuf {
    fn new() -> Self {
        ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            spans: Vec::new(),
            counters: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if self.spans.is_empty() && self.counters.is_empty() {
            return;
        }
        let mut collector = collector().lock().unwrap();
        collector.spans.append(&mut self.spans);
        for (name, n) in self.counters.drain(..) {
            *collector.counters.entry(name).or_insert(0) += n;
        }
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        // Backstop only: scoped-thread joins can unblock *before* the
        // worker's TLS destructors run, so pools must call [`flush_thread`]
        // at the end of each worker closure — this drop merely catches
        // panicking workers and long-lived threads.
        self.flush();
    }
}

/// Flushes the calling thread's buffered spans and counters to the global
/// collector. Worker-pool closures call this as their last action: scoped
/// joins can unblock before TLS destructors run, so an explicit flush is
/// what guarantees the coordinator's [`take_trace`] sees worker events.
pub fn flush_thread() {
    THREAD_BUF.with(|buf| buf.borrow_mut().flush());
}

#[derive(Default)]
struct Collector {
    spans: Vec<SpanEvent>,
    counters: BTreeMap<&'static str, u64>,
    threads: BTreeMap<u64, String>,
}

fn collector() -> &'static Mutex<Collector> {
    static COLLECTOR: OnceLock<Mutex<Collector>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Collector::default()))
}

fn push_span(name: Cow<'static, str>, ts_ns: u64, dur: Duration) {
    THREAD_BUF.with(|buf| {
        let mut buf = buf.borrow_mut();
        let tid = buf.tid;
        buf.spans.push(SpanEvent {
            name,
            tid,
            ts_ns,
            dur_ns: dur.as_nanos() as u64,
        });
        if buf.spans.len() >= FLUSH_AT {
            buf.flush();
        }
    });
}

/// Adds `n` to the named counter (thread-locally buffered; merged at
/// flush). No-op unless recording. Counter values must be deterministic
/// per unit of sharded work so that totals are bit-identical across worker
/// widths — sums are commutative, schedules are not.
pub fn counter_add(name: &'static str, n: u64) {
    if !recording() || n == 0 {
        return;
    }
    THREAD_BUF.with(|buf| {
        let mut buf = buf.borrow_mut();
        for entry in buf.counters.iter_mut() {
            if entry.0 == name {
                entry.1 += n;
                return;
            }
        }
        buf.counters.push((name, n));
    });
}

/// Registers a human-readable label for the current thread (emitted as a
/// Chrome-trace `thread_name` metadata event). No-op unless recording.
pub fn label_thread(label: &str) {
    if !recording() {
        return;
    }
    let tid = THREAD_BUF.with(|buf| buf.borrow().tid);
    collector()
        .lock()
        .unwrap()
        .threads
        .insert(tid, label.to_owned());
}

/// RAII span guard; see [`span`] and [`span_dyn`].
#[must_use = "dropping a Span guard immediately closes the span"]
pub struct Span {
    inner: Option<(Cow<'static, str>, u64)>,
}

/// Opens a named span. Records a complete event (start offset + duration +
/// thread id) when dropped; free when recording is off.
pub fn span(name: &'static str) -> Span {
    if !recording() {
        return Span { inner: None };
    }
    Span {
        inner: Some((Cow::Borrowed(name), now_ns())),
    }
}

/// Opens a span with a lazily-built dynamic name (e.g. `step:{label}`);
/// the closure only runs when recording.
pub fn span_dyn(make_name: impl FnOnce() -> String) -> Span {
    if !recording() {
        return Span { inner: None };
    }
    Span {
        inner: Some((Cow::Owned(make_name()), now_ns())),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, ts_ns)) = self.inner.take() {
            let dur = Duration::from_nanos(now_ns().saturating_sub(ts_ns));
            push_span(name, ts_ns, dur);
        }
    }
}

/// Flushes the calling thread's buffers and drains the global collector
/// into a [`Trace`]. Worker closures flushed via [`flush_thread`] before
/// their pools joined; call this from the coordinating thread after the
/// traced region.
pub fn take_trace() -> Trace {
    THREAD_BUF.with(|buf| buf.borrow_mut().flush());
    let mut collector = collector().lock().unwrap();
    let spans = std::mem::take(&mut collector.spans);
    let counters = std::mem::take(&mut collector.counters)
        .into_iter()
        .map(|(k, v)| (k.to_owned(), v))
        .collect();
    let threads = std::mem::take(&mut collector.threads);
    Trace {
        spans,
        counters,
        threads,
    }
}

// ---------------------------------------------------------------------------
// Trace: validation, aggregation, Chrome export
// ---------------------------------------------------------------------------

/// One recorded complete span.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Span name (a stage name, `step:<label>`, `task:<i>`, …).
    pub name: Cow<'static, str>,
    /// Small-integer thread id (stable within the process).
    pub tid: u64,
    /// Start offset from the process epoch, nanoseconds.
    pub ts_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

impl SpanEvent {
    fn end_ns(&self) -> u64 {
        self.ts_ns.saturating_add(self.dur_ns)
    }
}

/// Everything one recording session collected: spans (per-thread record
/// order preserved), merged counters, and thread labels.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Complete-span events.
    pub spans: Vec<SpanEvent>,
    /// Named counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Thread id → human label.
    pub threads: BTreeMap<u64, String>,
}

impl Trace {
    /// Checks structural sanity: per thread, spans recorded later (RAII
    /// drop order) must end no earlier than ones recorded before —
    /// timestamps are monotone — and when ordered by start time, spans
    /// must nest properly (contain or follow, never partially overlap).
    /// Both properties hold by construction for balanced guards; a
    /// violation means a span leaked or clocks misbehaved.
    pub fn validate(&self) -> Result<(), String> {
        let mut per_tid: BTreeMap<u64, Vec<&SpanEvent>> = BTreeMap::new();
        for span in &self.spans {
            per_tid.entry(span.tid).or_default().push(span);
        }
        for (tid, spans) in &per_tid {
            // Record order = guard drop order: end times never go backwards.
            let mut last_end = 0u64;
            for span in spans {
                if span.end_ns() < last_end {
                    return Err(format!(
                        "tid {tid}: span `{}` ends at {} ns, before an earlier-recorded \
                         span's end {} ns (unbalanced guards?)",
                        span.name,
                        span.end_ns(),
                        last_end
                    ));
                }
                last_end = span.end_ns();
            }
            // Start order: proper nesting, no partial overlap.
            let mut by_start: Vec<&SpanEvent> = spans.clone();
            by_start.sort_by_key(|s| (s.ts_ns, std::cmp::Reverse(s.dur_ns)));
            let mut stack: Vec<&SpanEvent> = Vec::new();
            for span in by_start {
                while let Some(top) = stack.last() {
                    if top.end_ns() <= span.ts_ns {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                if let Some(top) = stack.last() {
                    if span.end_ns() > top.end_ns() {
                        return Err(format!(
                            "tid {tid}: span `{}` [{}, {}] partially overlaps `{}` [{}, {}]",
                            span.name,
                            span.ts_ns,
                            span.end_ns(),
                            top.name,
                            top.ts_ns,
                            top.end_ns()
                        ));
                    }
                }
                stack.push(span);
            }
        }
        Ok(())
    }

    /// Sums span durations by name across all threads.
    pub fn self_times(&self) -> BTreeMap<String, Duration> {
        let mut totals: BTreeMap<String, Duration> = BTreeMap::new();
        for span in &self.spans {
            *totals.entry(span.name.to_string()).or_default() += Duration::from_nanos(span.dur_ns);
        }
        totals
    }

    /// Serializes to the Chrome Trace Event Format (JSON): one `"X"`
    /// complete event per span (`ts`/`dur` in microseconds), `"M"`
    /// `thread_name` metadata events for labeled threads, counter totals
    /// under `"counters"`, and `meta` key/value pairs under `"otherData"`.
    /// Loads in Perfetto / `chrome://tracing`.
    pub fn to_chrome_json(&self, meta: &[(String, String)]) -> String {
        let mut out = String::with_capacity(128 + self.spans.len() * 96);
        out.push_str("{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {");
        for (i, (key, value)) in meta.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json_string(key), json_string(value)));
        }
        out.push_str("},\n\"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {value}", json_string(name)));
        }
        out.push_str("},\n\"traceEvents\": [\n");
        let mut first = true;
        for (tid, label) in &self.threads {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": {}}}}}",
                json_string(label)
            ));
        }
        for span in &self.spans {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"name\": {}, \"cat\": \"cextend\", \
                 \"ts\": {:.3}, \"dur\": {:.3}}}",
                span.tid,
                json_string(&span.name),
                span.ts_ns as f64 / 1000.0,
                span.dur_ns as f64 / 1000.0
            ));
        }
        out.push_str("\n]\n}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Recording state and the collector are global; serialize the tests
    /// that touch them.
    fn recording_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn level_parsing_matches_contract() {
        assert_eq!(parse_level(None), 0);
        assert_eq!(parse_level(Some("")), 0);
        assert_eq!(parse_level(Some("0")), 0);
        assert_eq!(parse_level(Some("2")), 2);
        assert_eq!(parse_level(Some("1")), 1);
        assert_eq!(parse_level(Some("yes")), 1);
        assert_eq!(parse_level(Some(" 2 ")), 2);
    }

    #[test]
    fn frames_accumulate_stages_and_propagate_to_parent() {
        let outer = frame();
        stage_add("hasse", Duration::from_millis(3));
        {
            let inner = frame();
            stage_add("hasse", Duration::from_millis(2));
            stage_add("fill", Duration::from_millis(1));
            let totals = inner.totals();
            assert_eq!(
                totals,
                vec![
                    ("hasse", Duration::from_millis(2)),
                    ("fill", Duration::from_millis(1)),
                ]
            );
        }
        let totals = outer.totals();
        assert_eq!(
            totals,
            vec![
                ("hasse", Duration::from_millis(5)),
                ("fill", Duration::from_millis(1)),
            ]
        );
    }

    #[test]
    fn dropped_frame_still_pops_and_propagates() {
        let outer = frame();
        {
            let _inner = frame();
            stage_add("repair", Duration::from_millis(7));
            // dropped without totals()
        }
        stage_add("repair", Duration::from_millis(1));
        assert_eq!(outer.totals(), vec![("repair", Duration::from_millis(8))]);
    }

    #[test]
    fn stage_guard_times_into_frame() {
        let f = frame();
        {
            let _g = stage("coloring");
            std::thread::sleep(Duration::from_millis(2));
        }
        let totals = f.totals();
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].0, "coloring");
        assert!(totals[0].1 >= Duration::from_millis(1));
    }

    #[test]
    fn spans_balance_counters_merge_and_chrome_roundtrips() {
        let _lock = recording_lock();
        let _ = take_trace();
        set_recording(true);
        label_thread("test-main");
        {
            let _outer = span("solve");
            {
                let _inner = span_dyn(|| "step:r2".to_owned());
                counter_add("probes", 3);
            }
            counter_add("probes", 2);
            counter_add("shards", 1);
        }
        // Worker-thread events stitch in when the scoped thread exits.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                label_thread("worker-0");
                let (_, dur) = timed("conflict_build", || {
                    std::thread::sleep(Duration::from_millis(1))
                });
                assert!(dur >= Duration::from_millis(1));
                counter_add("probes", 5);
                flush_thread();
            });
        });
        set_recording(false);
        let trace = take_trace();
        trace.validate().expect("balanced trace");
        let names: Vec<_> = trace.spans.iter().map(|s| s.name.clone()).collect();
        assert_eq!(
            trace.spans.len(),
            3,
            "spans: {names:?} counters: {:?} threads: {:?}",
            trace.counters,
            trace.threads
        );
        assert_eq!(trace.counters.get("probes"), Some(&10));
        assert_eq!(trace.counters.get("shards"), Some(&1));
        assert_eq!(trace.threads.len(), 2);
        let self_times = trace.self_times();
        assert!(self_times.contains_key("solve"));
        assert!(self_times["conflict_build"] >= Duration::from_millis(1));

        let json = trace.to_chrome_json(&[("commit".to_owned(), "abc123".to_owned())]);
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"step:r2\""));
        assert!(json.contains("\"commit\": \"abc123\""));
        assert!(json.contains("\"probes\": 10"));
    }

    #[test]
    fn spans_balance_under_panic() {
        let _lock = recording_lock();
        let _ = take_trace();
        set_recording(true);
        let result = std::panic::catch_unwind(|| {
            let _outer = span("solve");
            let _inner = span("hasse");
            panic!("boom");
        });
        assert!(result.is_err());
        set_recording(false);
        let trace = take_trace();
        assert_eq!(trace.spans.len(), 2);
        trace.validate().expect("guards unwound cleanly");
    }

    #[test]
    fn disabled_recording_records_nothing() {
        let _lock = recording_lock();
        let _ = take_trace();
        set_recording(false);
        {
            let _s = span("solve");
            counter_add("probes", 9);
            let _g = stage("fill");
        }
        let trace = take_trace();
        assert!(trace.spans.is_empty());
        assert!(trace.counters.is_empty());
    }

    #[test]
    fn validate_rejects_partial_overlap() {
        let trace = Trace {
            spans: vec![
                SpanEvent {
                    name: Cow::Borrowed("b"),
                    tid: 1,
                    ts_ns: 50,
                    dur_ns: 100,
                },
                SpanEvent {
                    name: Cow::Borrowed("a"),
                    tid: 1,
                    ts_ns: 0,
                    dur_ns: 100,
                },
            ],
            ..Trace::default()
        };
        assert!(trace.validate().is_err());
    }

    #[test]
    fn validate_rejects_non_monotone_record_order() {
        let trace = Trace {
            spans: vec![
                SpanEvent {
                    name: Cow::Borrowed("late"),
                    tid: 1,
                    ts_ns: 100,
                    dur_ns: 100,
                },
                SpanEvent {
                    name: Cow::Borrowed("early"),
                    tid: 1,
                    ts_ns: 0,
                    dur_ns: 10,
                },
            ],
            ..Trace::default()
        };
        assert!(trace.validate().is_err());
    }

    #[test]
    fn chrome_json_escapes_names() {
        let trace = Trace {
            spans: vec![SpanEvent {
                name: Cow::Borrowed("we\"ird\\name"),
                tid: 1,
                ts_ns: 0,
                dur_ns: 1,
            }],
            ..Trace::default()
        };
        let json = trace.to_chrome_json(&[]);
        assert!(json.contains("we\\\"ird\\\\name"));
    }

    #[test]
    fn render_tree_indents_and_pads() {
        let txt = render_tree(&[
            (0, "phase1", Duration::from_secs(1)),
            (1, "hasse", Duration::from_millis(250)),
        ]);
        assert!(txt.contains("[trace] phase1"));
        assert!(txt.contains("[trace]   hasse"));
    }
}
