//! CLI for the paper-reproduction experiments.

use cextend_bench::experiments;
use cextend_bench::ExperimentOpts;
use std::process::ExitCode;

const USAGE: &str = "\
usage: experiments <id>|all [options]

experiments: table1 fig8a fig8b fig9 fig10 fig11a fig11b fig12 fig13 ablate

options:
  --scale-factor F   multiply the paper's scale labels by F (default 0.02)
  --paper-scale      shorthand for --scale-factor 1.0 (hours of runtime!)
  --n-ccs N          CC-set size (default 150; the paper uses 1001)
  --n-areas N        distinct Area codes (default 12)
  --runs R           independent runs to average (default 3)
  --seed S           base RNG seed (default 7)
  --out DIR          write JSON snapshots to DIR
";

fn parse(args: &[String]) -> Result<(Vec<String>, ExperimentOpts), String> {
    let mut opts = ExperimentOpts::default();
    let mut ids = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut take = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--scale-factor" => {
                opts.scale_factor = take("--scale-factor")?
                    .parse()
                    .map_err(|e| format!("bad --scale-factor: {e}"))?
            }
            "--paper-scale" => opts.scale_factor = 1.0,
            "--n-ccs" => {
                opts.n_ccs = take("--n-ccs")?
                    .parse()
                    .map_err(|e| format!("bad --n-ccs: {e}"))?
            }
            "--n-areas" => {
                opts.n_areas = take("--n-areas")?
                    .parse()
                    .map_err(|e| format!("bad --n-areas: {e}"))?
            }
            "--runs" => {
                opts.runs = take("--runs")?
                    .parse()
                    .map_err(|e| format!("bad --runs: {e}"))?
            }
            "--seed" => {
                opts.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--out" => opts.out_dir = Some(take("--out")?.into()),
            "-h" | "--help" => return Err(USAGE.to_owned()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`\n\n{USAGE}"))
            }
            id => ids.push(id.to_owned()),
        }
        i += 1;
    }
    if ids.is_empty() {
        return Err(USAGE.to_owned());
    }
    Ok((ids, opts))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (ids, opts) = match parse(&args) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let ids: Vec<String> = if ids.len() == 1 && ids[0] == "all" {
        experiments::ALL.iter().map(|s| (*s).to_owned()).collect()
    } else {
        ids
    };
    println!(
        "# cextend experiments — scale_factor={}, n_ccs={}, n_areas={}, runs={}, seed={}\n",
        opts.scale_factor, opts.n_ccs, opts.n_areas, opts.runs, opts.seed
    );
    for id in &ids {
        let start = std::time::Instant::now();
        if let Err(msg) = experiments::run(id, &opts) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
        println!("[{id} finished in {:?}]\n", start.elapsed());
    }
    ExitCode::SUCCESS
}
