//! CLI for the paper-reproduction experiments, generic over workloads.

use cextend_bench::experiments;
use cextend_bench::ExperimentOpts;
use cextend_obs::narrate;
use cextend_workloads::WORKLOAD_NAMES;
use std::process::ExitCode;

const USAGE: &str = "\
usage: experiments <id>|all|sched|scale|profile|perf|perf-check|perf-trend|fuzz-spec|spec-check [options]

experiments: table1 fig8a fig8b fig9 fig10 fig11a fig11b fig12 fig13 ablate
             sched (star-vs-chain step-scheduler sweep: serial vs parallel
                   wall per level on every multi-step workload, asserting
                   both modes produce bit-identical relations)
             fuzz-spec (generates --iters random well-typed workload specs
                   and runs each through the differential oracles:
                   indexed ≡ naive conflict builder and serial ≡ parallel
                   scheduler bit-identity; fails on any divergence)
             spec-check (parses + statically checks every spec under
                   specs/, and asserts every specs/bad/*.spec is rejected)
             scale (paper-scale runs: census at 40x and dcdense at 62.5x —
                   both >=10^6 R1 tuples under --paper-scale — with Phase II
                   (and, under --phase1 parallel, Phase 1) sharded across
                   CEXTEND_SCHED_WORKERS; merges a wall + per-phase +
                   peak-RSS `scale` section into <out>/BENCH_perf.json and
                   appends a \"kind\":\"scale\" line to BENCH_history.jsonl;
                   CEXTEND_SCALE_MAX_WALL_S / CEXTEND_SCALE_MAX_RSS_MB set
                   hard budgets for CI smoke runs)
             profile (traces one chain run of --workload with the obs
                   recorder armed: writes <out>/trace.json in the Chrome
                   Trace Event Format — open in https://ui.perfetto.dev —
                   and prints a per-stage self-time table cross-checked
                   against the StageTimings phase totals; fails on any
                   unbalanced span or non-monotone timestamp)
             perf (times the full chain on every workload — one record per
                   completion step plus per scheduler level × mode — writes
                   BENCH_perf.json and appends to BENCH_history.jsonl)
             perf-check (compares <out>/BENCH_perf.json against --baseline,
                   fails on a >3x wall-time regression of any shared record;
                   ignores BENCH_history.jsonl)
             perf-trend (renders the per-record wall-time trend over the
                   accumulated --history lines; writes <out>/perf_trend.md)

options:
  --workload W       scenario to drive: census (default), retail, supply
                     (3-relation chain: orders→stores→regions), logistics
                     (branching star: shipments→{warehouses,carriers}),
                     dcdense (adversarial DC-dense events→slots), or
                     spec:<path> — a checked workload-spec file
                     (e.g. spec:specs/supply.spec)
  --scheduler M      step scheduler for chain solves: serial (default) or
                     parallel (independent steps run concurrently;
                     bit-identical results under a fixed seed)
  --conflict B       conflict-hypergraph builder: indexed (default) or
                     naive (the retained O(|P|^k) baseline; identical
                     output, build cost only — for A/B measurement)
  --dcplan P         DC planner for the indexed builder: cost (default;
                     sampled-statistics planning, bulk clique emission,
                     per-partition index-kind choice) or static (the PR 5
                     hints; identical output — the measured oracle)
  --phase1 M         Phase 1 mode: serial (default) or parallel (shards
                     Algorithm 2 bitmap passes, leftover grouping and
                     per-shard RNG completion across CEXTEND_SCHED_WORKERS;
                     bit-identical results for any worker count)
  --scale-factor F   multiply the workload's scale labels by F (default 0.02)
  --paper-scale      shorthand for --scale-factor 1.0 (hours of runtime!)
  --n-ccs N          CC-set size (default 150; the paper uses 1001)
  --knob NAME=V      workload-owned generator knob (census: areas; retail &
                     supply: regions, max-group; logistics: districts,
                     max-group; dcdense: tracks, rooms, max-group);
                     repeatable
  --n-areas N        alias for --knob areas=N (census)
  --runs R           independent runs to average (default 3)
  --seed S           base RNG seed (default 7)
  --iters N          fuzz-spec iterations (default 25)
  --out DIR          write JSON snapshots to DIR
  --baseline FILE    committed perf baseline for perf-check
                     (default: ./BENCH_perf.json; its `scale` section is
                     compared too when parameters match)
  --history FILE     BENCH_history.jsonl for perf-trend
                     (default: ./BENCH_history.jsonl, the committed file)
  --label L          build label stamped into BENCH_history.jsonl records
                     (git-describe-ish; default: dev)
  --stamp S          timestamp stamped into BENCH_history.jsonl records
                     (default: unstamped — the harness never reads clocks)
";

fn parse(args: &[String]) -> Result<(Vec<String>, ExperimentOpts), String> {
    let mut opts = ExperimentOpts::default();
    let mut ids = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut take = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--workload" => {
                let name = take("--workload")?;
                if let Some(path) = name.strip_prefix("spec:") {
                    // Parse + statically check the spec up front, so a bad
                    // file is a clean CLI error rather than a panic later.
                    cextend_spec::load_workload(std::path::Path::new(path))
                        .map_err(|e| e.to_string())?;
                } else if !WORKLOAD_NAMES.contains(&name.as_str()) {
                    return Err(format!(
                        "unknown workload `{name}`; known: {WORKLOAD_NAMES:?} or spec:<path>"
                    ));
                }
                opts.workload = name;
            }
            "--scale-factor" => {
                opts.scale_factor = take("--scale-factor")?
                    .parse()
                    .map_err(|e| format!("bad --scale-factor: {e}"))?
            }
            "--paper-scale" => opts.scale_factor = 1.0,
            "--n-ccs" => {
                opts.n_ccs = take("--n-ccs")?
                    .parse()
                    .map_err(|e| format!("bad --n-ccs: {e}"))?
            }
            "--knob" => {
                let kv = take("--knob")?;
                let (name, value) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("bad --knob `{kv}`: expected NAME=VALUE"))?;
                let value: i64 = value
                    .parse()
                    .map_err(|e| format!("bad --knob value in `{kv}`: {e}"))?;
                opts.knobs.insert(name.to_owned(), value);
            }
            "--n-areas" => {
                let n: i64 = take("--n-areas")?
                    .parse()
                    .map_err(|e| format!("bad --n-areas: {e}"))?;
                opts.knobs.insert("areas".to_owned(), n);
            }
            "--runs" => {
                opts.runs = take("--runs")?
                    .parse()
                    .map_err(|e| format!("bad --runs: {e}"))?
            }
            "--seed" => {
                opts.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--iters" => {
                opts.iters = take("--iters")?
                    .parse()
                    .map_err(|e| format!("bad --iters: {e}"))?
            }
            "--scheduler" => {
                let mode = take("--scheduler")?;
                opts.scheduler = cextend_core::SchedulerMode::parse(&mode)
                    .ok_or_else(|| format!("bad --scheduler `{mode}`: serial or parallel"))?;
            }
            "--conflict" => {
                let kind = take("--conflict")?;
                opts.conflict = cextend_core::ConflictBuilderKind::parse(&kind)
                    .ok_or_else(|| format!("bad --conflict `{kind}`: indexed or naive"))?;
            }
            "--dcplan" => {
                let kind = take("--dcplan")?;
                opts.dcplan = cextend_core::DcPlannerKind::parse(&kind)
                    .ok_or_else(|| format!("bad --dcplan `{kind}`: cost or static"))?;
            }
            "--phase1" => {
                opts.parallel_phase1 = match take("--phase1")?.as_str() {
                    "parallel" => true,
                    "serial" => false,
                    other => return Err(format!("bad --phase1 `{other}`: serial or parallel")),
                };
            }
            "--out" => opts.out_dir = Some(take("--out")?.into()),
            "--baseline" => opts.baseline = Some(take("--baseline")?.into()),
            "--history" => opts.history = Some(take("--history")?.into()),
            "--label" => opts.label = take("--label")?,
            "--stamp" => opts.stamp = take("--stamp")?,
            "-h" | "--help" => return Err(USAGE.to_owned()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`\n\n{USAGE}"))
            }
            id => ids.push(id.to_owned()),
        }
        i += 1;
    }
    if ids.is_empty() {
        return Err(USAGE.to_owned());
    }
    // Validate knob names against the selected workload's published set —
    // or every workload's, when `perf`, `sched` or `scale` is requested
    // (they sweep across workloads).
    // `opts.workload()` handles both registry names and (already-validated)
    // `spec:` paths; spec knob slices are interned, so they're 'static too.
    let mut known: Vec<&str> = opts
        .workload()
        .meta()
        .knobs
        .iter()
        .map(|(name, _)| *name)
        .collect();
    if ids
        .iter()
        .any(|id| id == "perf" || id == "sched" || id == "scale")
    {
        for w in cextend_workloads::all_workloads() {
            known.extend(w.meta().knobs.iter().map(|(name, _)| *name));
        }
        known.sort_unstable();
        known.dedup();
    }
    for name in opts.knobs.keys() {
        if !known.contains(&name.as_str()) {
            return Err(format!(
                "workload `{}` has no knob `{name}`; known: {known:?}",
                opts.workload
            ));
        }
    }
    Ok((ids, opts))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (ids, opts) = match parse(&args) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let ids: Vec<String> = if ids.len() == 1 && ids[0] == "all" {
        experiments::ALL.iter().map(|s| (*s).to_owned()).collect()
    } else {
        ids
    };
    let knobs = opts
        .knobs
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",");
    // Progress narration goes to stderr (the obs human sink) so stdout
    // carries only the machine-readable tables.
    narrate!(
        "# cextend experiments — workload={}, scale_factor={}, n_ccs={}, runs={}, seed={}{}\n",
        opts.workload,
        opts.scale_factor,
        opts.n_ccs,
        opts.runs,
        opts.seed,
        if knobs.is_empty() {
            String::new()
        } else {
            format!(", knobs=[{knobs}]")
        }
    );
    for id in &ids {
        let start = std::time::Instant::now();
        if let Err(msg) = experiments::run(id, &opts) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
        narrate!("[{id} finished in {:?}]\n", start.elapsed());
    }
    ExitCode::SUCCESS
}
