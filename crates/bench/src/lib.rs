//! # cextend-bench — experiment drivers and micro-benchmarks
//!
//! Reproduces every table and figure of the paper's evaluation (Section 6)
//! plus the ablations listed in DESIGN.md, generically over the registered
//! workloads (`census`, `retail`). The `experiments` binary drives
//! everything:
//!
//! ```sh
//! cargo run --release -p cextend-bench --bin experiments -- all
//! cargo run --release -p cextend-bench --bin experiments -- fig8a --scale-factor 0.05
//! cargo run --release -p cextend-bench --bin experiments -- table1 --workload retail
//! cargo run --release -p cextend-bench --bin experiments -- perf --runs 1 --out results/
//! ```
//!
//! Criterion micro-benchmarks (one per pipeline stage) live in `benches/`.

#![warn(missing_docs)]

pub mod benchdata;
pub mod experiments;
pub mod harness;

pub use benchdata::dcdense_largest_partition;
pub use harness::{run_averaged, run_once, ExperimentOpts, RunResult, Table};
