//! Shared inputs for the criterion micro-benchmarks.
//!
//! The `conflict_build` and `coloring` benches both measure the largest
//! real `V_join` partition of a generated `dcdense` view; extracting it
//! lives here so the two benches are guaranteed to time the same input
//! (same partition-selection rule, same DC binding).

use cextend_constraints::BoundDc;
use cextend_table::{Relation, RowId};
use cextend_workloads::DcSet;
use std::collections::BTreeMap;

use crate::harness::ExperimentOpts;

/// Generates `dcdense` at scale `label` (default harness scale factor) and
/// returns its ground-truth join view, the rows of the largest
/// `(Room, Shift)` partition, and the chosen DC set bound against the view.
pub fn dcdense_largest_partition(label: u32, set: DcSet) -> (Relation, Vec<RowId>, Vec<BoundDc>) {
    let opts = ExperimentOpts {
        workload: "dcdense".to_owned(),
        ..ExperimentOpts::default()
    };
    let data = opts.dataset(label, None, 0);
    let view = data.truth_join();
    let room = view.schema().col_id("Room").expect("Room in view");
    let shift = view.schema().col_id("Shift").expect("Shift in view");
    let mut by_combo: BTreeMap<(String, String), Vec<RowId>> = BTreeMap::new();
    for r in view.rows() {
        let key = (
            view.get(r, room).expect("complete").to_string(),
            view.get(r, shift).expect("complete").to_string(),
        );
        by_combo.entry(key).or_default().push(r);
    }
    let rows = by_combo
        .into_values()
        .max_by_key(Vec::len)
        .expect("non-empty view");
    let dcs = opts
        .workload()
        .dcs(set)
        .iter()
        .map(|d| d.bind(view.schema(), view.name()).expect("DCs bind"))
        .collect();
    (view, rows, dcs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_the_largest_and_dcs_bind() {
        let (view, rows, dcs) = dcdense_largest_partition(1, DcSet::All);
        assert!(!rows.is_empty());
        assert!(rows.len() >= view.n_rows() / 12, "largest of ≤6 combos");
        assert_eq!(dcs.len(), 7, "the full dcdense DC set");
        assert!(rows.iter().all(|&r| r < view.n_rows()));
    }
}
