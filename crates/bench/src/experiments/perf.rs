//! The perf-baseline smoke and its regression guard.
//!
//! `perf` times the full FK-completion chain on **every registered
//! workload** (both CC families, one record per completion step) at small
//! scale and writes the timings to `BENCH_perf.json`, seeding the bench
//! trajectory that CI uploads as an artifact on every run. Unlike the
//! figure experiments this sweep ignores `--workload`: its whole point is a
//! cross-workload baseline.
//!
//! `perf-check` reads a freshly written `BENCH_perf.json` back and compares
//! it against the committed baseline: any record present in both whose wall
//! time regressed by more than [`REGRESSION_FACTOR`]× fails the check (new
//! records are allowed; see [`check`] for the sub-millisecond noise floor).
//! Every failure — parameter mismatches and regressed records alike — is
//! collected and reported before the check exits non-zero, so one red
//! record cannot hide the rest in CI logs.
//!
//! Besides the per-step records, `perf` times every multi-step workload's
//! chain under **both step schedulers** (one record per scheduler level and
//! mode, wall = min over runs — see `super::sched`), and appends a one-line
//! summary of the whole sweep to `BENCH_history.jsonl` next to
//! `BENCH_perf.json`: the `--label` (git-describe-ish) and `--stamp`
//! (timestamp) the caller passed, the run parameters, and every record's
//! wall time. The baseline file is overwritten per run; the history file
//! only ever grows, and `perf-check` never reads it.

use crate::harness::{fmt_s, run_chain_averaged, run_meta, ExperimentOpts, RunMeta, Table};
use cextend_core::SolverConfig;
use cextend_obs::narrate;
use cextend_workloads::{all_workloads, DcSet};
use serde::Serialize;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Wall-time growth beyond which `perf-check` fails a record.
pub const REGRESSION_FACTOR: f64 = 3.0;

/// Wall times are clamped up to this many seconds before comparing, so
/// scheduling noise on sub-millisecond records cannot trip the guard.
pub const NOISE_FLOOR_S: f64 = 0.005;

/// Peak-RSS growth beyond which `perf-check` fails a `scale` record. Memory
/// is far less noisy than wall time (the columnar buffers dominate and are
/// deterministic), so the bar is tighter than [`REGRESSION_FACTOR`].
pub const RSS_REGRESSION_FACTOR: f64 = 1.5;

/// Peak-RSS values are clamped up to this many bytes before comparing:
/// below it, allocator and runtime baseline noise dominates the signal.
pub const RSS_NOISE_FLOOR_BYTES: f64 = 64.0 * 1024.0 * 1024.0;

/// One timed (workload, CC family, completion step) cell.
#[derive(Debug, Serialize)]
pub struct PerfRecord {
    /// Workload name.
    pub workload: String,
    /// CC family label (`good` / `bad`).
    pub family: String,
    /// Completion-step label (`Owner→Target`).
    pub step: String,
    /// `R1` rows (the step owner's row count).
    pub n_r1: usize,
    /// `R2` rows (the step target's row count).
    pub n_r2: usize,
    /// CC-set size.
    pub n_ccs: usize,
    /// Phase I seconds (averaged over `runs`).
    pub phase1_s: f64,
    /// Phase II seconds.
    pub phase2_s: f64,
    /// Total wall-clock seconds.
    pub wall_s: f64,
    /// Median relative CC error (sanity: good families must be exact).
    pub cc_median: f64,
    /// DC error (must be 0.0 — Proposition 5.5).
    pub dc_error: f64,
}

/// The `BENCH_perf.json` document.
#[derive(Debug, Serialize)]
pub struct PerfBaseline {
    /// Snapshot format version.
    pub schema_version: u32,
    /// Scale factor the sweep ran at.
    pub scale_factor: f64,
    /// CC-set size requested.
    pub n_ccs: usize,
    /// Runs averaged per cell.
    pub runs: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// CLI-provided knob overrides the sweep ran with (each workload
    /// resolves them against its own defaults).
    pub knobs: BTreeMap<String, i64>,
    /// Conflict-builder label the sweep solved with (`--conflict`): wall
    /// times under `naive` are not comparable to `indexed` ones, so the
    /// label gates `perf-check` like the other run parameters.
    pub conflict: String,
    /// DC-planner label the sweep solved with (`--dcplan`): cost-based
    /// plans bulk-emit pair DCs and reorder enumeration, so the label
    /// gates comparability like `conflict` does.
    pub dcplan: String,
    /// Set when the sweep was extended with `--workload spec:<path>` —
    /// identifies where the extra `spec:*` records came from. Deliberately
    /// **not** a comparability parameter: a spec's records appear and
    /// disappear like any workload's, so a label difference must not
    /// false-flag the whole document as a parameter mismatch.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub workload: Option<String>,
    /// Build/environment provenance (git commit, worker width). Not a
    /// comparability parameter — see [`RunMeta`].
    pub meta: RunMeta,
    /// One record per (workload, family, step).
    pub records: Vec<PerfRecord>,
}

/// Runs the perf baseline and writes `BENCH_perf.json` (into `--out` when
/// set, else the working directory).
pub fn run(opts: &ExperimentOpts) {
    let mut table = Table::new(
        "perf",
        &format!(
            "Perf baseline — full chain on every workload at scale 1x (factor {})",
            opts.scale_factor
        ),
        &[
            "Workload", "CCs", "Step", "R1", "R2", "phase I", "phase II", "total", "CC med",
            "DC err",
        ],
    );
    let mut records = Vec::new();
    // The sweep covers every registered workload; a `--workload spec:<path>`
    // selection rides along as one extra entry, its records keyed under the
    // spec's `spec:<name>` meta name. The selector string (second element)
    // is what dataset generation resolves, which for specs is the path form.
    let mut sweep: Vec<(Box<dyn cextend_workloads::Workload>, String)> = all_workloads()
        .into_iter()
        .map(|w| {
            let name = w.meta().name.to_owned();
            (w, name)
        })
        .collect();
    if opts.workload.starts_with("spec:") {
        sweep.push((opts.workload(), opts.workload.clone()));
    }
    for (workload, selector) in sweep {
        let meta = workload.meta();
        let sub = ExperimentOpts {
            workload: selector,
            ..opts.clone()
        };
        let data = sub.dataset(1, None, 0);
        for family in workload.cc_families().iter().copied() {
            let chain = run_chain_averaged(
                workload.as_ref(),
                &data,
                family,
                DcSet::All,
                sub.n_ccs,
                sub.seed,
                &SolverConfig::hybrid()
                    .with_conflict(sub.conflict)
                    .with_dc_planner(sub.dcplan),
                sub.runs,
            );
            for step in &chain.steps {
                let r = &step.result;
                assert_eq!(
                    r.dc_error, 0.0,
                    "Proposition 5.5 violated on {} step {}",
                    meta.name, step.step
                );
                // Solved sizes, not generator sizes: later steps include the
                // dimension tuples minted upstream.
                let (n_r1, n_r2) = (step.n_r1, step.n_r2);
                table.push(vec![
                    meta.name.to_owned(),
                    family.label().to_owned(),
                    step.step.clone(),
                    n_r1.to_string(),
                    n_r2.to_string(),
                    fmt_s(r.phase1_s),
                    fmt_s(r.phase2_s),
                    fmt_s(r.wall_s),
                    format!("{:.3}", r.cc_median),
                    format!("{:.3}", r.dc_error),
                ]);
                records.push(PerfRecord {
                    workload: meta.name.to_owned(),
                    family: family.label().to_owned(),
                    step: step.step.clone(),
                    n_r1,
                    n_r2,
                    n_ccs: step.n_ccs,
                    phase1_s: r.phase1_s,
                    phase2_s: r.phase2_s,
                    wall_s: r.wall_s,
                    cc_median: r.cc_median,
                    dc_error: r.dc_error,
                });
            }
        }
    }
    // Scheduler comparison: one record per (multi-step workload, scheduler
    // mode, level), wall = min over runs so the serial-vs-parallel signal
    // survives scheduling jitter. The sweep asserts both modes produce
    // bit-identical relations before any timing is recorded.
    for t in super::sched::sweep_all(opts) {
        let step = format!("sched-L{}-{}", t.level, t.mode.label());
        table.push(vec![
            t.workload.clone(),
            "good".to_owned(),
            format!("{} [{}]", step, t.step_labels.join(" + ")),
            t.n_r1.to_string(),
            t.n_r2.to_string(),
            fmt_s(t.phase1_s),
            fmt_s(t.phase2_s),
            fmt_s(t.wall_s),
            format!("{:.3}", t.cc_median),
            format!("{:.3}", t.dc_error),
        ]);
        records.push(PerfRecord {
            workload: t.workload,
            family: "good".to_owned(),
            step,
            n_r1: t.n_r1,
            n_r2: t.n_r2,
            n_ccs: t.n_ccs,
            phase1_s: t.phase1_s,
            phase2_s: t.phase2_s,
            wall_s: t.wall_s,
            cc_median: t.cc_median,
            dc_error: t.dc_error,
        });
    }
    println!("{}", table.render());

    let baseline = PerfBaseline {
        schema_version: 2,
        scale_factor: opts.scale_factor,
        n_ccs: opts.n_ccs,
        runs: opts.runs,
        seed: opts.seed,
        knobs: opts.knobs.clone(),
        conflict: opts.conflict.label().to_owned(),
        dcplan: opts.dcplan.label().to_owned(),
        workload: opts
            .workload
            .starts_with("spec:")
            .then(|| opts.workload.clone()),
        meta: run_meta(),
        records,
    };
    let dir = opts
        .out_dir
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    std::fs::create_dir_all(&dir).expect("create output dir");
    let path = dir.join("BENCH_perf.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&baseline).expect("serialize"),
    )
    .expect("write BENCH_perf.json");
    narrate!("[perf baseline written to {}]", path.display());

    let history = dir.join("BENCH_history.jsonl");
    append_history(&history, opts, &baseline);
    narrate!("[perf history appended to {}]\n", history.display());
}

/// One `BENCH_history.jsonl` line: the whole sweep compressed to its
/// identity (label + stamp + run parameters) and per-record wall times.
#[derive(Debug, Serialize)]
struct HistoryRecord {
    /// Build label (`--label`, git-describe-ish).
    label: String,
    /// Timestamp stamp (`--stamp`).
    stamp: String,
    /// Snapshot format version (matches the baseline's).
    schema_version: u32,
    /// Scale factor the sweep ran at.
    scale_factor: f64,
    /// CC-set size requested.
    n_ccs: usize,
    /// Runs averaged per cell.
    runs: usize,
    /// Base RNG seed.
    seed: u64,
    /// Conflict-builder label the sweep solved with.
    conflict: String,
    /// DC-planner label the sweep solved with.
    dcplan: String,
    /// The `spec:<path>` selection that extended the sweep, when one did
    /// (same pass-through rule as the baseline's field).
    #[serde(skip_serializing_if = "Option::is_none")]
    workload: Option<String>,
    /// `workload/family/step` → wall seconds, every record of the sweep.
    walls: BTreeMap<String, f64>,
}

/// Appends the sweep to the perf history, one JSON line per `perf` run —
/// the trajectory `BENCH_perf.json` (a single overwritten snapshot) cannot
/// show. `perf-check` never reads this file.
fn append_history(path: &Path, opts: &ExperimentOpts, baseline: &PerfBaseline) {
    let record = HistoryRecord {
        label: opts.label.clone(),
        stamp: opts.stamp.clone(),
        schema_version: baseline.schema_version,
        scale_factor: baseline.scale_factor,
        n_ccs: baseline.n_ccs,
        runs: baseline.runs,
        seed: baseline.seed,
        conflict: baseline.conflict.clone(),
        dcplan: baseline.dcplan.clone(),
        workload: baseline.workload.clone(),
        walls: baseline
            .records
            .iter()
            .map(|r| (format!("{}/{}/{}", r.workload, r.family, r.step), r.wall_s))
            .collect(),
    };
    let line = serde_json::to_string(&record).expect("serialize history record");
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("open BENCH_history.jsonl");
    writeln!(file, "{line}").expect("append history line");
}

/// A record's identity and wall time, parsed from a `BENCH_perf.json`.
type WallTimes = BTreeMap<(String, String, String), f64>;

/// Per-workload timings parsed from one `scale` record.
struct ScaleTimes {
    /// Total wall seconds.
    wall: f64,
    /// Peak RSS bytes — absent on platforms without `VmHWM`.
    rss: Option<f64>,
    /// Phase I seconds — absent on pre-v3 sections without phase fields.
    phase1: Option<f64>,
    /// Phase II seconds — same optionality as `phase1`.
    phase2: Option<f64>,
    /// Conflict-graph build seconds — absent on sections written before
    /// the Phase II sub-stage fields existed.
    conflict: Option<f64>,
    /// Pure weighted-coloring seconds — same optionality as `conflict`.
    coloring: Option<f64>,
    /// Invalid-tuple handling seconds — same optionality as `conflict`.
    invalid: Option<f64>,
}

/// The parsed `scale` section of a `BENCH_perf.json` (written by
/// `experiments -- scale`): its own run parameters plus, per workload, the
/// wall time, per-phase times and the peak RSS.
struct ParsedScale {
    /// Same rendered-string parameter gate as the perf records'.
    params: Vec<(&'static str, String)>,
    /// Workload → parsed timings.
    records: BTreeMap<String, ScaleTimes>,
}

/// A parsed `BENCH_perf.json`: the run parameters wall times depend on,
/// per-record wall times, and the optional paper-scale section.
struct ParsedBaseline {
    /// `(scale_factor, n_ccs, runs, seed, knobs)` — rendered as strings
    /// for exact, float-formatting-stable comparison.
    params: Vec<(&'static str, String)>,
    walls: WallTimes,
    /// The `scale` section, when the document carries one.
    scale: Option<ParsedScale>,
}

fn parse_baseline(path: &Path) -> Result<ParsedBaseline, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
    let doc = serde_json::from_str(&text)
        .map_err(|e| format!("cannot parse `{}`: {e}", path.display()))?;
    let field = super::json_field;
    let serde::Value::Object(top) = doc else {
        return Err(format!("`{}` is not a JSON object", path.display()));
    };
    let Some(serde::Value::Array(records)) = field(&top, "records") else {
        return Err(format!("`{}` has no `records` array", path.display()));
    };
    let params = render_params(&top);
    let mut walls = WallTimes::new();
    for rec in &records {
        let serde::Value::Object(rec) = rec else {
            return Err("non-object perf record".into());
        };
        let text_field = |name: &str| -> Result<String, String> {
            match field(rec, name) {
                Some(serde::Value::Str(s)) => Ok(s),
                // Pre-chain baselines (schema_version 1) have no `step`.
                None if name == "step" => Ok(String::new()),
                other => Err(format!("perf record field `{name}` is {other:?}")),
            }
        };
        let wall = match field(rec, "wall_s") {
            Some(serde::Value::Float(x)) => x,
            Some(serde::Value::Int(n)) => n as f64,
            other => return Err(format!("perf record field `wall_s` is {other:?}")),
        };
        walls.insert(
            (
                text_field("workload")?,
                text_field("family")?,
                text_field("step")?,
            ),
            wall,
        );
    }
    let scale = match field(&top, "scale") {
        Some(serde::Value::Object(sec)) => Some(parse_scale(&sec)?),
        _ => None,
    };
    Ok(ParsedBaseline {
        params,
        walls,
        scale,
    })
}

/// Renders the comparability-gate parameters of a perf document or its
/// `scale` section (both carry the same fields).
///
/// Wall times are only comparable when both sweeps generated the same
/// datasets and CC load; capture every parameter they depend on. The
/// optional `workload` label (the `spec:<path>` that extended a sweep) is
/// deliberately absent from this list: spec-driven records come and go per
/// run like any workload's, and a label difference alone must not fail the
/// whole document as a parameter mismatch.
fn render_params(obj: &[(String, serde::Value)]) -> Vec<(&'static str, String)> {
    let field = super::json_field;
    let mut params: Vec<(&'static str, String)> = ["scale_factor", "n_ccs", "runs", "seed"]
        .into_iter()
        .map(|name| {
            let rendered = match field(obj, name) {
                Some(serde::Value::Float(x)) => x.to_string(),
                Some(serde::Value::Int(n)) => n.to_string(),
                other => format!("{other:?}"),
            };
            (name, rendered)
        })
        .collect();
    // Knob overrides reshape the generated data too. Absent (pre-v2
    // baselines) means no overrides, i.e. an empty map.
    let knobs = match field(obj, "knobs") {
        Some(v @ serde::Value::Object(_)) => {
            serde_json::to_string(&v).expect("re-render parsed JSON")
        }
        _ => "{}".to_owned(),
    };
    params.push(("knobs", knobs));
    // The conflict builder changes every wall time (~17× on DC-dense
    // records) without touching the data, so it gates comparability too
    // (shared defaulting rule: `super::conflict_label`).
    params.push(("conflict", super::conflict_label(obj)));
    // Likewise the DC planner (cost-based plans reorder enumeration and
    // bulk-emit pair DCs): absent defaults to `cost` via
    // `super::dcplan_label`.
    params.push(("dcplan", super::dcplan_label(obj)));
    params
}

/// Parses a `scale` section object (see `super::scale::ScaleSection`).
fn parse_scale(sec: &[(String, serde::Value)]) -> Result<ParsedScale, String> {
    let field = super::json_field;
    let mut records = BTreeMap::new();
    if let Some(serde::Value::Array(recs)) = field(sec, "records") {
        for rec in &recs {
            let serde::Value::Object(rec) = rec else {
                return Err("non-object scale record".into());
            };
            let Some(serde::Value::Str(workload)) = field(rec, "workload") else {
                return Err("scale record has no `workload` string".into());
            };
            let num = |name: &str| match field(rec, name) {
                Some(serde::Value::Float(x)) => Some(x),
                Some(serde::Value::Int(n)) => Some(n as f64),
                _ => None,
            };
            let wall = num("wall_s")
                .ok_or_else(|| format!("scale record `{workload}` has no `wall_s` number"))?;
            records.insert(
                workload,
                ScaleTimes {
                    wall,
                    // Absent on platforms without /proc (the record is
                    // still wall-comparable).
                    rss: num("peak_rss_bytes"),
                    // Absent on older sections; a wall regression hidden
                    // inside one phase still trips the per-stage bound when
                    // both sides carry it.
                    phase1: num("phase1_s"),
                    phase2: num("phase2_s"),
                    conflict: num("conflict_s"),
                    coloring: num("coloring_s"),
                    invalid: num("invalid_s"),
                },
            );
        }
    }
    Ok(ParsedScale {
        params: render_params(sec),
        records,
    })
}

/// Compares a fresh `BENCH_perf.json` against the committed baseline.
///
/// The two documents must have been produced with the same run parameters
/// (`scale_factor`, `n_ccs`, `runs`, `seed`, `knobs`, `conflict`) — a
/// mismatch means the guard would
/// compare apples to oranges (silently dead when the baseline is heavier,
/// spuriously red when it is lighter), so it fails with a parameter
/// mismatch instead. Given matching parameters, every record present in
/// both documents must have a fresh wall time of at most
/// [`REGRESSION_FACTOR`] × the baseline's, after clamping both sides up to
/// [`NOISE_FLOOR_S`] (sub-millisecond solves jitter far more than 3×
/// between CI machines). New records — new workloads, families or steps —
/// are allowed; a record that *disappeared* fails the check, since that
/// means lost coverage.
///
/// The documents' `scale` sections are compared too — but only when both
/// carry one **and** the sections' own parameters match: the committed
/// section is a 100%-scale run while CI's `scale-smoke` writes a 10% one,
/// and gating on that difference would make the smoke permanently red, so
/// an incomparable (or absent) section is skipped with a printed note
/// instead. Within comparable sections, walls and the per-phase times
/// (`phase1_s`/`phase2_s`, when both sides recorded them) use the same
/// [`REGRESSION_FACTOR`] bound over [`NOISE_FLOOR_S`], peak RSS (when both
/// sides recorded one) uses [`RSS_REGRESSION_FACTOR`] over
/// [`RSS_NOISE_FLOOR_BYTES`], and a disappeared scale workload fails like a
/// disappeared perf record.
pub fn check(baseline_path: &Path, fresh_path: &Path) -> Result<(), String> {
    let baseline = parse_baseline(baseline_path)?;
    let fresh = parse_baseline(fresh_path)?;
    // Collect *every* failure — all parameter mismatches, then (when the
    // parameters agree, so walls are comparable at all) every regressed or
    // disappeared record — before exiting non-zero. A first-failure exit
    // would hide the rest from CI logs.
    let mut failures = Vec::new();
    for ((name, base_value), (_, fresh_value)) in baseline.params.iter().zip(&fresh.params) {
        if base_value != fresh_value {
            failures.push(format!(
                "parameter mismatch: `{name}` is {base_value} in {} but {fresh_value} in {} \
                 — regenerate the committed baseline with the flags CI runs `perf` with",
                baseline_path.display(),
                fresh_path.display(),
            ));
        }
    }
    let comparable = failures.is_empty();
    check_scale_sections(&baseline.scale, &fresh.scale, &mut failures);
    let (baseline, fresh) = (baseline.walls, fresh.walls);
    if comparable {
        for (key, &base_wall) in &baseline {
            let (workload, family, step) = key;
            let label = format!("{workload}/{family}/{step}");
            match fresh.get(key) {
                None => failures.push(format!("record `{label}` disappeared from the fresh run")),
                Some(&fresh_wall) => {
                    let base = base_wall.max(NOISE_FLOOR_S);
                    let now = fresh_wall.max(NOISE_FLOOR_S);
                    if now > REGRESSION_FACTOR * base {
                        failures.push(format!(
                            "record `{label}` regressed {:.1}×: {} → {}",
                            now / base,
                            fmt_s(base_wall),
                            fmt_s(fresh_wall),
                        ));
                    }
                }
            }
        }
    }
    if failures.is_empty() {
        narrate!(
            "[perf-check ok: {} baseline records within {REGRESSION_FACTOR}x of {}]",
            baseline.len(),
            baseline_path.display()
        );
        Ok(())
    } else {
        Err(format!(
            "perf-check failed against {}:\n  {}",
            baseline_path.display(),
            failures.join("\n  ")
        ))
    }
}

/// Compares two optional `scale` sections (see [`check`] for the skip
/// rules), appending any wall/RSS regression or disappeared workload to
/// `failures`.
fn check_scale_sections(
    baseline: &Option<ParsedScale>,
    fresh: &Option<ParsedScale>,
    failures: &mut Vec<String>,
) {
    let (base, fresh) = match (baseline, fresh) {
        (Some(b), Some(f)) => (b, f),
        (None, _) | (_, None) => {
            narrate!("[perf-check: no scale section in both documents — scale records skipped]");
            return;
        }
    };
    if base.params != fresh.params {
        // Expected whenever the committed 100%-scale section meets a CI
        // smoke run at a lighter factor; the perf records above still gate.
        narrate!(
            "[perf-check: scale sections ran at different parameters — scale records skipped]"
        );
        return;
    }
    for (workload, base_t) in &base.records {
        let Some(fresh_t) = fresh.records.get(workload) else {
            failures.push(format!(
                "scale record `{workload}` disappeared from the fresh run"
            ));
            continue;
        };
        // Per-stage bounds alongside the total: a phase that regresses
        // inside an otherwise-flat wall (e.g. Phase 1 slowing while Phase 2
        // speeds up) still fails. Stages absent on either side (pre-phase
        // baselines) are skipped, the wall always compares.
        let stages = [
            ("wall", Some(base_t.wall), Some(fresh_t.wall)),
            ("phase1_s", base_t.phase1, fresh_t.phase1),
            ("phase2_s", base_t.phase2, fresh_t.phase2),
            ("conflict_s", base_t.conflict, fresh_t.conflict),
            ("coloring_s", base_t.coloring, fresh_t.coloring),
            ("invalid_s", base_t.invalid, fresh_t.invalid),
        ];
        for (stage, base_s, fresh_s) in stages {
            let (Some(base_s), Some(fresh_s)) = (base_s, fresh_s) else {
                continue;
            };
            let base_w = base_s.max(NOISE_FLOOR_S);
            let now_w = fresh_s.max(NOISE_FLOOR_S);
            if now_w > REGRESSION_FACTOR * base_w {
                failures.push(format!(
                    "scale record `{workload}` {stage} regressed {:.1}×: {} → {}",
                    now_w / base_w,
                    fmt_s(base_s),
                    fmt_s(fresh_s),
                ));
            }
        }
        if let (Some(base_rss), Some(fresh_rss)) = (base_t.rss, fresh_t.rss) {
            let base_m = base_rss.max(RSS_NOISE_FLOOR_BYTES);
            let now_m = fresh_rss.max(RSS_NOISE_FLOOR_BYTES);
            if now_m > RSS_REGRESSION_FACTOR * base_m {
                failures.push(format!(
                    "scale record `{workload}` peak RSS regressed {:.2}×: {:.0}MB → {:.0}MB",
                    now_m / base_m,
                    base_rss / (1024.0 * 1024.0),
                    fresh_rss / (1024.0 * 1024.0),
                ));
            }
        }
    }
    narrate!(
        "[perf-check: {} scale records compared (walls and phase sub-stages within \
         {REGRESSION_FACTOR}x, peak RSS within {RSS_REGRESSION_FACTOR}x)]",
        base.records.len()
    );
}

/// CLI entry point for `perf-check`: compares `<out>/BENCH_perf.json` (the
/// fresh run) against `--baseline` (default: `BENCH_perf.json` in the
/// working directory, i.e. the committed file).
pub fn check_cli(opts: &ExperimentOpts) -> Result<(), String> {
    let baseline = opts
        .baseline
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_perf.json"));
    let fresh = opts
        .out_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("."))
        .join("BENCH_perf.json");
    check(&baseline, &fresh)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc_at(scale: f64, records: &[(&str, &str, &str, f64)]) -> String {
        let rows: Vec<String> = records
            .iter()
            .map(|(w, f, s, wall)| {
                format!(r#"{{"workload":"{w}","family":"{f}","step":"{s}","wall_s":{wall}}}"#)
            })
            .collect();
        format!(
            r#"{{"schema_version":2,"scale_factor":{scale},"n_ccs":15,"runs":1,"records":[{}]}}"#,
            rows.join(",")
        )
    }

    fn doc(records: &[(&str, &str, &str, f64)]) -> String {
        doc_at(0.005, records)
    }

    fn write(dir: &Path, name: &str, text: &str) -> PathBuf {
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap();
        path
    }

    #[test]
    fn check_passes_within_factor_and_allows_new_records() {
        let dir = std::env::temp_dir().join("cextend-perf-check-ok");
        std::fs::create_dir_all(&dir).unwrap();
        let base = write(
            &dir,
            "base.json",
            &doc(&[("census", "good", "Persons→Housing", 0.1)]),
        );
        let fresh = write(
            &dir,
            "fresh.json",
            &doc(&[
                ("census", "good", "Persons→Housing", 0.25),
                ("supply", "bad", "Stores→Regions", 9.0),
            ]),
        );
        check(&base, &fresh).unwrap();
    }

    #[test]
    fn check_fails_on_regression_and_missing_records() {
        let dir = std::env::temp_dir().join("cextend-perf-check-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let base = write(
            &dir,
            "base.json",
            &doc(&[
                ("census", "good", "Persons→Housing", 0.1),
                ("retail", "bad", "Orders→Customers", 0.1),
            ]),
        );
        let fresh = write(
            &dir,
            "fresh.json",
            &doc(&[("census", "good", "Persons→Housing", 0.5)]),
        );
        let err = check(&base, &fresh).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        assert!(err.contains("disappeared"), "{err}");
    }

    #[test]
    fn check_rejects_mismatched_run_parameters() {
        let dir = std::env::temp_dir().join("cextend-perf-check-params");
        std::fs::create_dir_all(&dir).unwrap();
        let records = [("census", "good", "Persons→Housing", 0.1)];
        let base = write(&dir, "base.json", &doc_at(0.02, &records));
        let fresh = write(&dir, "fresh.json", &doc_at(0.005, &records));
        let err = check(&base, &fresh).unwrap_err();
        assert!(err.contains("parameter mismatch"), "{err}");
        assert!(err.contains("scale_factor"), "{err}");

        // Knob overrides reshape the data, so they gate comparability too.
        let with_knobs =
            doc(&records).replace(r#""runs":1,"#, r#""runs":1,"knobs":{"regions":100},"#);
        let base = write(&dir, "base-knobs.json", &with_knobs);
        let fresh = write(&dir, "fresh-knobs.json", &doc(&records));
        let err = check(&base, &fresh).unwrap_err();
        assert!(err.contains("knobs"), "{err}");

        // A naive-conflict sweep's walls are ~17x an indexed one's on
        // DC-dense records, so the builder label gates comparability; a
        // document without the field (pre-PR5) counts as indexed.
        let with_naive = doc(&records).replace(r#""runs":1,"#, r#""runs":1,"conflict":"naive","#);
        let base = write(&dir, "base-naive.json", &with_naive);
        let fresh = write(&dir, "fresh-indexed.json", &doc(&records));
        let err = check(&base, &fresh).unwrap_err();
        assert!(err.contains("conflict"), "{err}");
        let with_indexed =
            doc(&records).replace(r#""runs":1,"#, r#""runs":1,"conflict":"indexed","#);
        let base = write(&dir, "base-indexed.json", &with_indexed);
        check(&base, &fresh).unwrap();
    }

    #[test]
    fn check_reports_every_failure_not_just_the_first() {
        let dir = std::env::temp_dir().join("cextend-perf-check-all");
        std::fs::create_dir_all(&dir).unwrap();
        let base = write(
            &dir,
            "base.json",
            &doc(&[
                ("census", "good", "Persons→Housing", 0.1),
                ("retail", "bad", "Orders→Customers", 0.1),
                ("supply", "good", "Orders→Stores", 0.1),
            ]),
        );
        let fresh = write(
            &dir,
            "fresh.json",
            &doc(&[
                ("census", "good", "Persons→Housing", 0.9),
                ("retail", "bad", "Orders→Customers", 0.9),
            ]),
        );
        let err = check(&base, &fresh).unwrap_err();
        // Both regressions *and* the disappearance appear in one report.
        assert!(err.contains("census/good"), "{err}");
        assert!(err.contains("retail/bad"), "{err}");
        assert!(err.contains("disappeared"), "{err}");
        assert_eq!(err.matches("regressed").count(), 2, "{err}");

        // Parameter mismatches are also all reported at once.
        let other = write(
            &dir,
            "other.json",
            &doc_at(0.02, &[("census", "good", "Persons→Housing", 0.1)])
                .replace(r#""n_ccs":15"#, r#""n_ccs":99"#),
        );
        let err = check(&other, &fresh).unwrap_err();
        assert!(err.contains("scale_factor"), "{err}");
        assert!(err.contains("n_ccs"), "{err}");
    }

    #[test]
    fn spec_workload_label_does_not_gate_comparability() {
        let dir = std::env::temp_dir().join("cextend-perf-check-speclabel");
        std::fs::create_dir_all(&dir).unwrap();
        let records = [("spec:supply", "good", "Orders→Stores", 0.1)];
        // A baseline stamped with the `workload` pass-through label must
        // stay comparable to a fresh run without one (and vice versa) —
        // the label identifies spec-driven records, it is not a parameter.
        let with_label = doc(&records).replace(
            r#""runs":1,"#,
            r#""runs":1,"workload":"spec:specs/supply.spec","#,
        );
        let base = write(&dir, "base.json", &with_label);
        let fresh = write(&dir, "fresh.json", &doc(&records));
        check(&base, &fresh).unwrap();
        check(&fresh, &base).unwrap();
    }

    #[test]
    fn history_file_is_ignored_by_the_guard() {
        let dir = std::env::temp_dir().join("cextend-perf-check-history");
        std::fs::create_dir_all(&dir).unwrap();
        let records = [("census", "good", "Persons→Housing", 0.1)];
        let base = write(&dir, "base.json", &doc(&records));
        let fresh = write(&dir, "BENCH_perf.json", &doc(&records));
        // A (even malformed) history file next to the fresh baseline must
        // not affect the guard — it only ever reads BENCH_perf.json.
        write(&dir, "BENCH_history.jsonl", "not json at all\n{broken");
        check(&base, &fresh).unwrap();
    }

    #[test]
    fn check_tolerates_sub_noise_floor_jitter() {
        let dir = std::env::temp_dir().join("cextend-perf-check-noise");
        std::fs::create_dir_all(&dir).unwrap();
        let base = write(
            &dir,
            "base.json",
            &doc(&[("census", "good", "Persons→Housing", 0.0004)]),
        );
        // 10× worse in absolute terms, but still under the noise floor.
        let fresh = write(
            &dir,
            "fresh.json",
            &doc(&[("census", "good", "Persons→Housing", 0.004)]),
        );
        check(&base, &fresh).unwrap();
    }

    /// A perf doc with a `scale` section whose parameters are fixed and
    /// whose records are `(workload, wall_s, peak_rss_bytes)` triples.
    fn doc_with_scale(section_factor: f64, scale_records: &[(&str, f64, Option<u64>)]) -> String {
        let rows: Vec<String> = scale_records
            .iter()
            .map(|(w, wall, rss)| {
                let rss = rss.map_or(String::new(), |b| format!(r#","peak_rss_bytes":{b}"#));
                format!(r#"{{"workload":"{w}","wall_s":{wall}{rss}}}"#)
            })
            .collect();
        let scale = format!(
            r#","scale":{{"scale_factor":{section_factor},"n_ccs":150,"runs":1,"seed":7,"knobs":{{}},"conflict":"indexed","records":[{}]}}"#,
            rows.join(",")
        );
        // Splice the section in before the document's closing brace.
        let base = doc(&[("census", "good", "Persons→Housing", 0.1)]);
        format!("{}{scale}}}", &base[..base.len() - 1])
    }

    #[test]
    fn scale_sections_compare_walls_and_rss_when_parameters_match() {
        let dir = std::env::temp_dir().join("cextend-perf-check-scale");
        std::fs::create_dir_all(&dir).unwrap();
        let gib = 1u64 << 30;
        let base = write(
            &dir,
            "base.json",
            &doc_with_scale(1.0, &[("census", 100.0, Some(4 * gib))]),
        );
        // Within both bounds: passes.
        let ok = write(
            &dir,
            "ok.json",
            &doc_with_scale(1.0, &[("census", 150.0, Some(5 * gib))]),
        );
        check(&base, &ok).unwrap();
        // Wall blown (>3x).
        let slow = write(
            &dir,
            "slow.json",
            &doc_with_scale(1.0, &[("census", 400.0, Some(4 * gib))]),
        );
        let err = check(&base, &slow).unwrap_err();
        assert!(err.contains("wall regressed"), "{err}");
        // RSS blown (>1.5x) at unchanged wall.
        let fat = write(
            &dir,
            "fat.json",
            &doc_with_scale(1.0, &[("census", 100.0, Some(7 * gib))]),
        );
        let err = check(&base, &fat).unwrap_err();
        assert!(err.contains("peak RSS regressed"), "{err}");
        // Disappeared scale workload fails.
        let empty = write(&dir, "empty.json", &doc_with_scale(1.0, &[]));
        let err = check(&base, &empty).unwrap_err();
        assert!(err.contains("scale record `census` disappeared"), "{err}");
    }

    /// Like [`doc_with_scale`] but with phase sub-stage fields:
    /// `(workload, wall_s, phase1_s, phase2_s)`.
    fn doc_with_phases(scale_records: &[(&str, f64, f64, f64)]) -> String {
        let rows: Vec<String> = scale_records
            .iter()
            .map(|(w, wall, p1, p2)| {
                format!(r#"{{"workload":"{w}","wall_s":{wall},"phase1_s":{p1},"phase2_s":{p2}}}"#)
            })
            .collect();
        let scale = format!(
            r#","scale":{{"scale_factor":1.0,"n_ccs":150,"runs":1,"seed":7,"knobs":{{}},"conflict":"indexed","records":[{}]}}"#,
            rows.join(",")
        );
        let base = doc(&[("census", "good", "Persons→Housing", 0.1)]);
        format!("{}{scale}}}", &base[..base.len() - 1])
    }

    #[test]
    fn scale_sections_compare_phase_sub_stages() {
        let dir = std::env::temp_dir().join("cextend-perf-check-phases");
        std::fs::create_dir_all(&dir).unwrap();
        let base = write(
            &dir,
            "base.json",
            &doc_with_phases(&[("dcdense", 100.0, 60.0, 40.0)]),
        );
        // Phase 1 blown >3x while the wall stays flat (Phase 2 absorbed the
        // difference): the per-stage bound catches it.
        let p1_slow = write(
            &dir,
            "p1slow.json",
            &doc_with_phases(&[("dcdense", 100.0, 190.0, 2.0)]),
        );
        let err = check(&base, &p1_slow).unwrap_err();
        assert!(err.contains("phase1_s regressed"), "{err}");
        assert!(!err.contains("wall regressed"), "{err}");
        // Phase 2 regression is caught symmetrically.
        let p2_slow = write(
            &dir,
            "p2slow.json",
            &doc_with_phases(&[("dcdense", 100.0, 2.0, 130.0)]),
        );
        let err = check(&base, &p2_slow).unwrap_err();
        assert!(err.contains("phase2_s regressed"), "{err}");
        // Within bounds on every stage: passes.
        let ok = write(
            &dir,
            "ok.json",
            &doc_with_phases(&[("dcdense", 120.0, 80.0, 40.0)]),
        );
        check(&base, &ok).unwrap();
        // Phases absent on one side (pre-phase baseline): only the wall
        // compares, so the mixed pair passes at flat wall.
        let gib = 1u64 << 30;
        let no_phases = write(
            &dir,
            "nophases.json",
            &doc_with_scale(1.0, &[("dcdense", 100.0, Some(gib))]),
        );
        check(&no_phases, &p1_slow).unwrap();
        check(&base, &no_phases).unwrap();
    }

    /// Like [`doc_with_phases`] but with the Phase II sub-stage fields:
    /// `(workload, wall_s, conflict_s, coloring_s, invalid_s)`.
    fn doc_with_substages(scale_records: &[(&str, f64, f64, f64, f64)]) -> String {
        let rows: Vec<String> = scale_records
            .iter()
            .map(|(w, wall, cf, co, inv)| {
                format!(
                    r#"{{"workload":"{w}","wall_s":{wall},"conflict_s":{cf},"coloring_s":{co},"invalid_s":{inv}}}"#
                )
            })
            .collect();
        let scale = format!(
            r#","scale":{{"scale_factor":1.0,"n_ccs":150,"runs":1,"seed":7,"knobs":{{}},"conflict":"indexed","records":[{}]}}"#,
            rows.join(",")
        );
        let base = doc(&[("census", "good", "Persons→Housing", 0.1)]);
        format!("{}{scale}}}", &base[..base.len() - 1])
    }

    #[test]
    fn scale_sections_compare_phase2_sub_stages() {
        let dir = std::env::temp_dir().join("cextend-perf-check-substages");
        std::fs::create_dir_all(&dir).unwrap();
        let base = write(
            &dir,
            "base.json",
            &doc_with_substages(&[("census", 100.0, 30.0, 20.0, 1.0)]),
        );
        // Each sub-stage trips its own bound even at a flat wall.
        for (name, rec) in [
            ("conflict_s", ("census", 100.0, 95.0, 2.0, 1.0)),
            ("coloring_s", ("census", 100.0, 30.0, 65.0, 1.0)),
            ("invalid_s", ("census", 100.0, 30.0, 20.0, 48.0)),
        ] {
            let slow = write(&dir, &format!("{name}.json"), &doc_with_substages(&[rec]));
            let err = check(&base, &slow).unwrap_err();
            assert!(err.contains(&format!("{name} regressed")), "{name}: {err}");
            assert!(!err.contains("wall regressed"), "{err}");
        }
        // Sub-second invalid handling sits under the noise floor on both
        // sides at small scale; the clamp keeps jitter from tripping it.
        let ok = write(
            &dir,
            "ok.json",
            &doc_with_substages(&[("census", 110.0, 50.0, 35.0, 0.004)]),
        );
        check(&base, &ok).unwrap();
        // Sub-stages absent on one side (older section): only the fields
        // both sides carry compare.
        let plain = write(
            &dir,
            "plain.json",
            &doc_with_phases(&[("census", 100.0, 60.0, 40.0)]),
        );
        check(&base, &plain).unwrap();
        check(&plain, &base).unwrap();
    }

    #[test]
    fn dcplan_label_gates_comparability_with_cost_default() {
        let dir = std::env::temp_dir().join("cextend-perf-check-dcplan");
        std::fs::create_dir_all(&dir).unwrap();
        let records = [("census", "good", "Persons→Housing", 0.1)];
        // A static-planner baseline is not comparable to a default (cost)
        // fresh run…
        let with_static = doc(&records).replace(r#""runs":1,"#, r#""runs":1,"dcplan":"static","#);
        let base = write(&dir, "base-static.json", &with_static);
        let fresh = write(&dir, "fresh.json", &doc(&records));
        let err = check(&base, &fresh).unwrap_err();
        assert!(err.contains("dcplan"), "{err}");
        // …while an absent field counts as `cost`, keeping pre-planner
        // documents comparable to default runs.
        let with_cost = doc(&records).replace(r#""runs":1,"#, r#""runs":1,"dcplan":"cost","#);
        let base = write(&dir, "base-cost.json", &with_cost);
        check(&base, &fresh).unwrap();
    }

    #[test]
    fn scale_sections_skip_when_absent_or_incomparable() {
        let dir = std::env::temp_dir().join("cextend-perf-check-scale-skip");
        std::fs::create_dir_all(&dir).unwrap();
        let gib = 1u64 << 30;
        let committed = write(
            &dir,
            "committed.json",
            &doc_with_scale(1.0, &[("census", 100.0, Some(4 * gib))]),
        );
        // The CI shape: the committed section is a 100% run, the smoke ran
        // at 10% — incomparable parameters skip the section, not fail it,
        // even with a 10x "regression" in the records.
        let smoke = write(
            &dir,
            "smoke.json",
            &doc_with_scale(0.1, &[("census", 1000.0, Some(8 * gib))]),
        );
        check(&committed, &smoke).unwrap();
        // No section at all on either side: also a skip.
        let plain = write(
            &dir,
            "plain.json",
            &doc(&[("census", "good", "Persons→Housing", 0.1)]),
        );
        check(&committed, &plain).unwrap();
        check(&plain, &smoke).unwrap();
        // RSS absent on one side (non-Linux runner): wall still compared.
        let no_rss = write(
            &dir,
            "norss.json",
            &doc_with_scale(1.0, &[("census", 400.0, None)]),
        );
        let err = check(&committed, &no_rss).unwrap_err();
        assert!(err.contains("wall regressed"), "{err}");
        assert!(!err.contains("peak RSS"), "{err}");
    }

    #[test]
    fn check_reads_pre_chain_baselines_without_step_fields() {
        let dir = std::env::temp_dir().join("cextend-perf-check-v1");
        std::fs::create_dir_all(&dir).unwrap();
        let base = write(
            &dir,
            "base.json",
            r#"{"schema_version":1,"scale_factor":0.005,"n_ccs":15,"runs":1,"records":[{"workload":"census","family":"good","wall_s":0.1}]}"#,
        );
        let fresh = write(
            &dir,
            "fresh.json",
            &doc(&[("census", "good", "Persons→Housing", 0.1)]),
        );
        // The v1 record keys under an empty step, so it reads cleanly but
        // counts as disappeared — exactly the signal to regenerate.
        let err = check(&base, &fresh).unwrap_err();
        assert!(err.contains("disappeared"), "{err}");
    }
}
