//! The perf-baseline smoke: times `solve()` on **every registered
//! workload** (both CC families) at small scale and writes the timings to
//! `BENCH_perf.json`, seeding the bench trajectory that CI uploads as an
//! artifact on every run. Unlike the figure experiments this sweep ignores
//! `--workload`: its whole point is a cross-workload baseline.

use crate::harness::{fmt_s, run_averaged, ExperimentOpts, Table};
use cextend_core::SolverConfig;
use cextend_workloads::{all_workloads, DcSet};
use serde::Serialize;

/// One timed (workload, CC family) cell.
#[derive(Debug, Serialize)]
pub struct PerfRecord {
    /// Workload name.
    pub workload: String,
    /// CC family label (`good` / `bad`).
    pub family: String,
    /// `R1` rows.
    pub n_r1: usize,
    /// `R2` rows.
    pub n_r2: usize,
    /// CC-set size.
    pub n_ccs: usize,
    /// Phase I seconds (averaged over `runs`).
    pub phase1_s: f64,
    /// Phase II seconds.
    pub phase2_s: f64,
    /// Total wall-clock seconds.
    pub wall_s: f64,
    /// Median relative CC error (sanity: good families must be exact).
    pub cc_median: f64,
    /// DC error (must be 0.0 — Proposition 5.5).
    pub dc_error: f64,
}

/// The `BENCH_perf.json` document.
#[derive(Debug, Serialize)]
pub struct PerfBaseline {
    /// Snapshot format version.
    pub schema_version: u32,
    /// Scale factor the sweep ran at.
    pub scale_factor: f64,
    /// CC-set size requested.
    pub n_ccs: usize,
    /// Runs averaged per cell.
    pub runs: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// One record per (workload, family).
    pub records: Vec<PerfRecord>,
}

/// Runs the perf baseline and writes `BENCH_perf.json` (into `--out` when
/// set, else the working directory).
pub fn run(opts: &ExperimentOpts) {
    let mut table = Table::new(
        "perf",
        &format!(
            "Perf baseline — solve() on every workload at scale 1x (factor {})",
            opts.scale_factor
        ),
        &[
            "Workload", "CCs", "R1", "R2", "phase I", "phase II", "total", "CC med", "DC err",
        ],
    );
    let mut records = Vec::new();
    for workload in all_workloads() {
        let meta = workload.meta();
        let sub = ExperimentOpts {
            workload: meta.name.to_owned(),
            ..opts.clone()
        };
        let data = sub.dataset(1, None, 0);
        let dcs = sub.dcs(DcSet::All);
        for family in workload.cc_families().iter().copied() {
            let ccs = sub.ccs(family, sub.n_ccs, &data, 0);
            let r = run_averaged(&data, &ccs, &dcs, &SolverConfig::hybrid(), sub.runs);
            assert_eq!(r.dc_error, 0.0, "Proposition 5.5 violated on {}", meta.name);
            table.push(vec![
                meta.name.to_owned(),
                family.label().to_owned(),
                data.n_r1().to_string(),
                data.n_r2().to_string(),
                fmt_s(r.phase1_s),
                fmt_s(r.phase2_s),
                fmt_s(r.wall_s),
                format!("{:.3}", r.cc_median),
                format!("{:.3}", r.dc_error),
            ]);
            records.push(PerfRecord {
                workload: meta.name.to_owned(),
                family: family.label().to_owned(),
                n_r1: data.n_r1(),
                n_r2: data.n_r2(),
                n_ccs: ccs.len(),
                phase1_s: r.phase1_s,
                phase2_s: r.phase2_s,
                wall_s: r.wall_s,
                cc_median: r.cc_median,
                dc_error: r.dc_error,
            });
        }
    }
    println!("{}", table.render());

    let baseline = PerfBaseline {
        schema_version: 1,
        scale_factor: opts.scale_factor,
        n_ccs: opts.n_ccs,
        runs: opts.runs,
        seed: opts.seed,
        records,
    };
    let dir = opts
        .out_dir
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    std::fs::create_dir_all(&dir).expect("create output dir");
    let path = dir.join("BENCH_perf.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&baseline).expect("serialize"),
    )
    .expect("write BENCH_perf.json");
    println!("[perf baseline written to {}]\n", path.display());
}
