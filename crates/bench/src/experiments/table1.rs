//! Table 1: data scales. Verifies the generator reproduces the paper's
//! household counts (scaled) and persons-per-household ratio.

use crate::harness::{ExperimentOpts, Table};
use cextend_census::scales::PAPER_SCALES;

/// Runs the Table 1 reproduction.
pub fn run(opts: &ExperimentOpts) {
    let mut table = Table::new(
        "table1",
        &format!(
            "Data scales (generator at scale_factor {}; paper counts in parentheses)",
            opts.scale_factor
        ),
        &[
            "Scale",
            "Persons",
            "Housing",
            "VJoin",
            "paper Persons",
            "paper Housing",
        ],
    );
    for s in PAPER_SCALES {
        // Keep the big scales cheap unless running at paper scale.
        if s.label > 40 && opts.scale_factor >= 0.5 {
            continue;
        }
        let data = opts.dataset(s.label, 2, 0);
        table.push(vec![
            format!("{}x", s.label),
            data.n_persons().to_string(),
            data.n_households().to_string(),
            data.n_persons().to_string(), // |VJoin| = |Persons| by construction
            s.persons.to_string(),
            s.housing.to_string(),
        ]);
    }
    table.emit(opts);
}
