//! Table 1: data scales. Verifies the generator reproduces the workload's
//! expected `R1`/`R2` ratio at every scale label (and, for workloads that
//! reproduce a published artifact, the external counts), then runs one
//! hybrid solve at the smallest label as a Proposition 5.5 smoke: zero DC
//! error and exact join recovery, whatever the schema. Multi-relation
//! workloads report one row-count column per relation and smoke-test the
//! *full FK-completion chain*, step by step.

use crate::harness::{run_chain_once, run_once, ExperimentOpts, Table};
use cextend_workloads::{CcFamily, DcSet};

/// Runs the Table 1 reproduction for the selected workload.
pub fn run(opts: &ExperimentOpts) {
    let workload = opts.workload();
    let meta = workload.meta();
    let with_paper = meta
        .scale_labels
        .iter()
        .any(|&l| workload.paper_counts(l).is_some());
    let row_headers: Vec<String> = meta
        .relation_names
        .iter()
        .map(|name| format!("{name} rows"))
        .collect();
    let mut headers: Vec<&str> = vec!["Scale"];
    headers.extend(row_headers.iter().map(String::as_str));
    headers.push("VJoin");
    headers.push("R1/R2");
    if with_paper {
        headers.push("paper R1");
        headers.push("paper R2");
    }
    let mut table = Table::new(
        "table1",
        &format!(
            "Data scales — {} workload at scale_factor {} (expected ratio ≈{})",
            meta.name, opts.scale_factor, meta.expected_ratio
        ),
        &headers,
    );
    for &label in meta.scale_labels {
        // Keep the big scales cheap unless running at paper scale.
        if label > 40 && opts.scale_factor >= 0.5 {
            continue;
        }
        let data = opts.dataset(label, None, 0);
        let mut row = vec![format!("{label}x")];
        for rel in &data.relations {
            row.push(rel.n_rows().to_string());
        }
        row.push(data.n_r1().to_string()); // |VJoin| = |R1| by construction
        row.push(format!("{:.3}", data.n_r1() as f64 / data.n_r2() as f64));
        if with_paper {
            let (p1, p2) = workload
                .paper_counts(label)
                .map_or((String::new(), String::new()), |(a, b)| {
                    (a.to_string(), b.to_string())
                });
            row.push(p1);
            row.push(p2);
        }
        table.push(row);
    }
    table.emit(opts);

    // Proposition 5.5 smoke at the smallest label: the hybrid must deliver
    // zero DC error and an exactly recovered join on this workload — at
    // every completion step of a multi-relation chain.
    let label = meta.scale_labels[0];
    let data = opts.dataset(label, None, 0);
    if data.n_steps() == 1 {
        let ccs = opts.ccs(CcFamily::Good, opts.n_ccs.min(25), &data, 0);
        let dcs = opts.dcs(DcSet::All);
        let r = run_once(&data, &ccs, &dcs, &opts.solver_config());
        assert_eq!(
            r.dc_error, 0.0,
            "hybrid must guarantee zero DC error on {}",
            meta.name
        );
        println!(
            "[{} solver check at {label}x: DC error {:.3}, join recovered: {}]\n",
            meta.name, r.dc_error, r.join_recovered
        );
    } else {
        let chain = run_chain_once(
            workload.as_ref(),
            &data,
            CcFamily::Good,
            DcSet::All,
            opts.n_ccs.min(25),
            opts.seed,
            &opts.solver_config(),
        );
        for step in &chain.steps {
            assert_eq!(
                step.result.dc_error, 0.0,
                "hybrid must guarantee zero DC error on {} step {}",
                meta.name, step.step
            );
            println!(
                "[{} step {} at {label}x: DC error {:.3}, join recovered: {}]",
                meta.name, step.step, step.result.dc_error, step.result.join_recovered
            );
        }
        println!(
            "[{} chain total at {label}x: DC error {:.3}, join recovered: {}]\n",
            meta.name, chain.total.dc_error, chain.total.join_recovered
        );
    }
}
