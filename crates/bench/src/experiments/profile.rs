//! `profile`: one traced end-to-end run → Chrome-trace export + per-stage
//! self-time table.
//!
//! Arms the `cextend-obs` recorder, drives the selected workload's full
//! FK-completion chain exactly once (a profile wants one clean trace, not
//! an average — `--runs` is ignored), then:
//!
//! - validates the collected trace (balanced spans, monotone per-thread
//!   timestamps) and fails the run on any violation;
//! - prints a per-stage self-time table to stdout (and snapshots it as
//!   `profile.json` under `--out`), cross-checked against the
//!   `StageTimings`-derived phase totals: both are accumulated from the
//!   same clock reads, so they must agree within [`TOLERANCE`];
//! - writes `<out>/trace.json` in the Chrome Trace Event Format, stamped
//!   with the run parameters and [`RunMeta`] provenance — load it in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.

use crate::harness::{chain_steps, fmt_s, run_meta, ExperimentOpts, RunMeta, Table};
use cextend_obs::narrate;
use cextend_workloads::{CcFamily, DcSet};
use std::time::Duration;

/// Maximum relative disagreement between the trace's per-stage sums and the
/// `StageTimings`-derived phase totals. Both sides accumulate the very same
/// measured durations, so in practice they agree exactly; the tolerance
/// only absorbs float formatting in the aggregated seconds.
pub const TOLERANCE: f64 = 0.01;

/// Phase I stage-span names, in pipeline order (the same names
/// `StageTimings::from_named` maps).
pub const PHASE1_STAGES: [&str; 8] = [
    "pairwise",
    "hasse",
    "ilp_build",
    "ilp_solve",
    "fill",
    "repair",
    "leftovers",
    "random",
];

/// Phase II stage-span names, in pipeline order.
pub const PHASE2_STAGES: [&str; 3] = ["conflict_build", "coloring", "invalid"];

/// Runs one traced chain and commits the artifacts (see the module docs).
pub fn run(opts: &ExperimentOpts) -> Result<(), String> {
    let workload = opts.workload();
    let data = opts.dataset(1, None, 0);
    let steps = chain_steps(
        workload.as_ref(),
        &data,
        CcFamily::Good,
        DcSet::All,
        opts.n_ccs,
        opts.seed,
    );
    narrate!(
        "[profile: tracing one {} chain run ({} steps)]",
        opts.workload,
        steps.len()
    );
    // Clear any residue a preceding experiment id left in the collector,
    // then arm the recorder around exactly one chain run.
    let _ = cextend_obs::take_trace();
    cextend_obs::set_recording(true);
    cextend_obs::label_thread("main");
    // Parallel coloring is forced on (output is bit-identical; only the
    // scheduling changes) so the trace shows the Phase II worker pool when
    // `CEXTEND_SCHED_WORKERS` grants one. `--phase1 parallel` and
    // `--scheduler parallel` flow through `solver_config` as usual.
    let config = opts.solver_config().with_parallel_coloring(true);
    let chain = crate::harness::run_chain_with_steps(&data, &steps, &config);
    cextend_obs::set_recording(false);
    let trace = cextend_obs::take_trace();
    trace
        .validate()
        .map_err(|e| format!("profile trace failed validation: {e}"))?;

    // ---- Per-stage self-time table, cross-checked per phase. ------------
    let self_times = trace.self_times();
    let stage_total = |names: &[&str]| -> Duration {
        names
            .iter()
            .filter_map(|n| self_times.get(*n))
            .copied()
            .sum()
    };
    let phase1_trace = stage_total(&PHASE1_STAGES);
    let phase2_trace = stage_total(&PHASE2_STAGES);
    check_agreement("phase1", phase1_trace, chain.total.phase1_s)?;
    check_agreement("phase2", phase2_trace, chain.total.phase2_s)?;

    let mut table = Table::new(
        "profile",
        &format!(
            "Stage self-times of one traced chain run — {} spans on {} threads",
            trace.spans.len(),
            trace.threads.len().max(1)
        ),
        &["Phase", "Stage", "self", "share"],
    );
    for (phase, names, total) in [
        ("phase1", &PHASE1_STAGES[..], phase1_trace),
        ("phase2", &PHASE2_STAGES[..], phase2_trace),
    ] {
        for name in names {
            let t = self_times.get(*name).copied().unwrap_or_default();
            let share = if total > Duration::ZERO {
                t.as_secs_f64() / total.as_secs_f64()
            } else {
                0.0
            };
            table.push(vec![
                phase.to_owned(),
                (*name).to_owned(),
                fmt_s(t.as_secs_f64()),
                format!("{:.1}%", share * 100.0),
            ]);
        }
    }
    table.emit(opts);

    if !trace.counters.is_empty() {
        let mut counters = Table::new("profile-counters", "Trace counters", &["Counter", "Value"]);
        for (name, value) in &trace.counters {
            counters.push(vec![name.clone(), value.to_string()]);
        }
        // Stdout only: the counter map is already inside trace.json, so a
        // second snapshot file would just duplicate it.
        println!("{}", counters.render());
    }

    // ---- Chrome-trace export. -------------------------------------------
    let dir = opts
        .out_dir
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create output dir: {e}"))?;
    let meta = trace_meta(opts, &run_meta());
    let path = dir.join("trace.json");
    std::fs::write(&path, trace.to_chrome_json(&meta))
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    narrate!(
        "[trace written to {} ({} spans, {} counters) — open in https://ui.perfetto.dev]",
        path.display(),
        trace.spans.len(),
        trace.counters.len()
    );
    Ok(())
}

/// The `otherData` key/value pairs stamped into `trace.json`: run
/// parameters first, provenance after.
fn trace_meta(opts: &ExperimentOpts, meta: &RunMeta) -> Vec<(String, String)> {
    let mut pairs = vec![
        ("workload".to_owned(), opts.workload.clone()),
        ("scale_factor".to_owned(), opts.scale_factor.to_string()),
        ("n_ccs".to_owned(), opts.n_ccs.to_string()),
        ("seed".to_owned(), opts.seed.to_string()),
        ("conflict".to_owned(), opts.conflict.label().to_owned()),
    ];
    pairs.extend(meta.as_pairs());
    pairs
}

/// Fails when the trace's per-stage sum and the `StageTimings`-derived
/// phase total disagree by more than [`TOLERANCE`] (relative, with a 1ms
/// absolute floor so near-zero smoke runs cannot false-flag on jitter).
fn check_agreement(phase: &str, trace_sum: Duration, timings_s: f64) -> Result<(), String> {
    let trace_s = trace_sum.as_secs_f64();
    let diff = (trace_s - timings_s).abs();
    if diff > (timings_s * TOLERANCE).max(0.001) {
        return Err(format!(
            "trace/StageTimings disagreement on {phase}: stage spans sum to {} but \
             StageTimings reports {} (diff {})",
            fmt_s(trace_s),
            fmt_s(timings_s),
            fmt_s(diff)
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_check_bounds() {
        check_agreement("phase1", Duration::from_secs_f64(1.004), 1.0).unwrap();
        let err = check_agreement("phase1", Duration::from_secs_f64(1.5), 1.0).unwrap_err();
        assert!(err.contains("phase1"), "{err}");
        // The absolute floor tolerates sub-millisecond noise on tiny runs.
        check_agreement("phase2", Duration::from_micros(900), 0.0).unwrap();
    }

    #[test]
    fn stage_names_match_the_timings_mapping() {
        use cextend_core::StageTimings;
        use std::time::Duration;
        // Every profile stage name must be one `StageTimings::from_named`
        // maps — a renamed stage would silently drop out of the table.
        for name in PHASE1_STAGES.iter().chain(&PHASE2_STAGES) {
            let t = StageTimings::from_named(&[(*name, Duration::from_secs(1))]);
            assert!(
                t.phase1() + t.phase2() == Duration::from_secs(1),
                "stage `{name}` is not mapped by StageTimings::from_named"
            );
        }
    }
}
