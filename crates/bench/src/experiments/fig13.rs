//! Figure 13 (and the surrounding CC-count sweep): runtime breakdown of the
//! hybrid — pairwise comparison, Algorithm 2 recursion, ILP solving,
//! coloring — at scale 10× with `S_all_DC`, for growing CC-set sizes drawn
//! from the good or bad family.
//!
//! Paper shape (at 900 CCs): with good CCs the ILP never runs and coloring
//! dominates (~73%); with bad CCs the ILP dominates (~86%) and everything
//! else is noise.

use crate::harness::{fmt_s, run_averaged, ExperimentOpts, Table};
use cextend_core::SolverConfig;
use cextend_workloads::{CcFamily, DcSet};

/// Runs Figure 13.
pub fn run(opts: &ExperimentOpts) {
    let dcs = opts.dcs(DcSet::All);
    let data = opts.dataset(10, None, 10);
    // The paper sweeps 500–900 CCs out of 1001; sweep the same fractions.
    let sweep: Vec<usize> = [0.5, 0.6, 0.7, 0.8, 0.9]
        .iter()
        .map(|f| ((opts.n_ccs as f64) * f).round() as usize)
        .collect();
    let mut table = Table::new(
        "fig13",
        &format!(
            "Hybrid runtime breakdown — scale 10x, all DCs, growing CC counts ({})",
            opts.workload
        ),
        &[
            "CCs",
            "Family",
            "pairwise",
            "recursion",
            "ILP",
            "coloring",
            "total",
            "ILP %",
        ],
    )
    .with_scale_label(10);
    for family in [CcFamily::Good, CcFamily::Bad] {
        for &n in &sweep {
            let ccs = opts.ccs(family, n, &data, 10);
            let r = run_averaged(&data, &ccs, &dcs, &SolverConfig::hybrid(), opts.runs);
            let ilp_pct = if r.wall_s > 0.0 {
                100.0 * r.ilp_s / r.wall_s
            } else {
                0.0
            };
            table.push(vec![
                n.to_string(),
                format!("{family:?}"),
                fmt_s(r.pairwise_s),
                fmt_s(r.recursion_s),
                fmt_s(r.ilp_s),
                fmt_s(r.coloring_s),
                fmt_s(r.wall_s),
                format!("{ilp_pct:.1}%"),
            ]);
        }
    }
    table.emit(opts);
}
