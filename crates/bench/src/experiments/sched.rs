//! The star-vs-chain scheduler sweep (`sched`).
//!
//! Runs every *multi-step* workload's full FK-completion chain under both
//! step schedulers — `supply` is a chain (one step per level, nothing to
//! parallelize), `logistics` a branching star (two independent steps
//! sharing a level) — and reports wall time per scheduler level. Each
//! mode's level walls are the minimum over the sweep's runs, so scheduling
//! jitter cannot mask the comparison. The sweep also *asserts* that both
//! modes produce bit-identical relations on every run: it doubles as the
//! serial-vs-parallel equivalence gate CI runs.

use crate::harness::{chain_steps, fmt_err, fmt_s, ExperimentOpts, Table};
use cextend_core::metrics::median;
use cextend_core::snowflake::{solve_snowflake, SnowflakeSolution, SnowflakeStep};
use cextend_core::{ConflictBuilderKind, SchedulerMode, SolverConfig};
use cextend_workloads::{all_workloads, CcFamily, DcSet, Workload, WorkloadData};
use serde::Serialize;
use std::collections::BTreeMap;

/// Timing of one scheduler level under one mode.
pub struct LevelTiming {
    /// Workload name.
    pub workload: String,
    /// Scheduler mode the chain ran with.
    pub mode: SchedulerMode,
    /// Level index in execution order.
    pub level: usize,
    /// `Owner→Target` labels of the level's steps, in declared order.
    pub step_labels: Vec<String>,
    /// Whether the level's steps actually ran concurrently.
    pub parallel: bool,
    /// Summed `R1` rows solved across the level's steps.
    pub n_r1: usize,
    /// Summed `R2` rows across the level's steps.
    pub n_r2: usize,
    /// Summed CC-set size across the level's steps.
    pub n_ccs: usize,
    /// Summed Phase I seconds across the level's steps (first run).
    pub phase1_s: f64,
    /// Summed Phase II seconds across the level's steps (first run).
    pub phase2_s: f64,
    /// Level wall-clock seconds — minimum over the sweep's runs.
    pub wall_s: f64,
    /// Median relative CC error pooled over the level's steps (first run).
    pub cc_median: f64,
    /// Worst DC error across the level's steps (must be 0.0).
    pub dc_error: f64,
}

fn level_timings(
    workload: &str,
    mode: SchedulerMode,
    solutions: &[SnowflakeSolution],
    steps: &[SnowflakeStep],
) -> Vec<LevelTiming> {
    let first = &solutions[0];
    first
        .levels
        .iter()
        .enumerate()
        .map(|(k, level)| {
            let members = &level.steps;
            let outcomes: Vec<_> = members.iter().map(|&i| &first.steps[i]).collect();
            let pooled: Vec<f64> = outcomes
                .iter()
                .flat_map(|o| o.report.cc_errors.iter().copied())
                .collect();
            LevelTiming {
                workload: workload.to_owned(),
                mode,
                level: k,
                step_labels: outcomes.iter().map(|o| o.label.clone()).collect(),
                parallel: level.parallel,
                n_r1: outcomes.iter().map(|o| o.n_r1).sum(),
                n_r2: outcomes.iter().map(|o| o.n_r2).sum(),
                n_ccs: members.iter().map(|&i| steps[i].ccs.len()).sum(),
                phase1_s: outcomes
                    .iter()
                    .map(|o| o.stats.timings.phase1().as_secs_f64())
                    .sum(),
                phase2_s: outcomes
                    .iter()
                    .map(|o| o.stats.timings.phase2().as_secs_f64())
                    .sum(),
                wall_s: solutions
                    .iter()
                    .map(|s| s.levels[k].wall.as_secs_f64())
                    .fold(f64::INFINITY, f64::min),
                cc_median: median(&pooled),
                dc_error: outcomes
                    .iter()
                    .map(|o| o.report.dc_error)
                    .fold(0.0, f64::max),
            }
        })
        .collect()
}

/// Runs one workload's chain under both scheduler modes (`runs` solves per
/// mode, distinct solver seeds), asserts the completed relations are
/// bit-identical between modes on every run, and returns the per-level
/// timings of both modes (serial first).
pub fn sweep_workload(
    workload: &dyn Workload,
    data: &WorkloadData,
    n_ccs: usize,
    seed: u64,
    runs: usize,
    conflict: ConflictBuilderKind,
) -> Vec<LevelTiming> {
    let name = workload.meta().name;
    let steps = chain_steps(workload, data, CcFamily::Good, DcSet::All, n_ccs, seed);
    let solve_one = |mode: SchedulerMode, i: usize| -> SnowflakeSolution {
        let config = SolverConfig::hybrid()
            .with_seed(seed + i as u64)
            .with_scheduler(mode)
            .with_conflict(conflict);
        solve_snowflake(data.relations.clone(), &steps, &config)
            .expect("solver never fails with augmentation on")
    };
    // Interleave the modes (and alternate which goes first per run) so
    // allocator/cache drift over the sweep biases neither column — running
    // all serial solves first consistently flattered whichever mode ran
    // earlier.
    let mut serial: Vec<SnowflakeSolution> = Vec::with_capacity(runs.max(1));
    let mut parallel: Vec<SnowflakeSolution> = Vec::with_capacity(runs.max(1));
    for i in 0..runs.max(1) {
        if i % 2 == 0 {
            serial.push(solve_one(SchedulerMode::Serial, i));
            parallel.push(solve_one(SchedulerMode::Parallel, i));
        } else {
            parallel.push(solve_one(SchedulerMode::Parallel, i));
            serial.push(solve_one(SchedulerMode::Serial, i));
        }
    }
    for (run, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        for (st, pt) in s.tables.iter().zip(&p.tables) {
            assert!(
                cextend_table::relations_equal_ordered(st, pt),
                "{name} run {run}: relation {} diverged between scheduler modes",
                st.name()
            );
        }
        assert_eq!(
            s.total_stats().counters,
            p.total_stats().counters,
            "{name} run {run}: solve counters diverged between scheduler modes"
        );
    }
    let mut timings = level_timings(name, SchedulerMode::Serial, &serial, &steps);
    timings.extend(level_timings(
        name,
        SchedulerMode::Parallel,
        &parallel,
        &steps,
    ));
    timings
}

/// The scale label the sweep runs a workload at: its *largest* (the other
/// perf records use label 1). A scheduler comparison needs steps that cost
/// more than the worker pool's spawn overhead, or the parallel column only
/// measures thread startup jitter.
pub fn sweep_label(meta: &cextend_workloads::WorkloadMeta) -> u32 {
    meta.scale_labels.iter().copied().max().unwrap_or(1)
}

/// Solves per scheduler mode: at least three even when `--runs 1`. The
/// level walls are minima, and a single sample per mode would turn the
/// serial-vs-parallel comparison into a scheduling-jitter coin flip.
pub fn sweep_runs(opts: &ExperimentOpts) -> usize {
    opts.runs.max(3)
}

/// All multi-step workloads' sweep timings. A `--workload spec:<path>`
/// selection joins the sweep when its schema graph has ≥ 2 steps, keyed
/// under its `spec:<name>` meta name.
pub fn sweep_all(opts: &ExperimentOpts) -> Vec<LevelTiming> {
    let mut out = Vec::new();
    let mut sweep: Vec<(Box<dyn Workload>, String)> = all_workloads()
        .into_iter()
        .map(|w| {
            let name = w.meta().name.to_owned();
            (w, name)
        })
        .collect();
    if opts.workload.starts_with("spec:") {
        sweep.push((opts.workload(), opts.workload.clone()));
    }
    for (workload, selector) in sweep {
        let meta = workload.meta();
        if meta.n_steps() < 2 {
            continue;
        }
        let sub = ExperimentOpts {
            workload: selector,
            ..opts.clone()
        };
        let data = sub.dataset(sweep_label(&meta), None, 0);
        out.extend(sweep_workload(
            workload.as_ref(),
            &data,
            sub.n_ccs,
            sub.seed,
            sweep_runs(opts),
            sub.conflict,
        ));
    }
    out
}

/// Runs the `sched` experiment: the star-vs-chain table plus the
/// equivalence assertion.
pub fn run(opts: &ExperimentOpts) {
    let mut table = Table::new(
        "sched",
        &format!(
            "Step scheduler — serial vs parallel wall per level (min of {} runs, factor {})",
            opts.runs.max(3),
            opts.scale_factor
        ),
        &[
            "Workload", "Mode", "Level", "Steps", "R1", "CCs", "phase I", "phase II", "wall",
            "speedup", "DC err",
        ],
    );
    let timings = sweep_all(opts);
    for t in &timings {
        assert_eq!(
            t.dc_error, 0.0,
            "Proposition 5.5 violated on {} level {}",
            t.workload, t.level
        );
        let speedup = if t.mode == SchedulerMode::Parallel {
            let serial = timings
                .iter()
                .find(|s| {
                    s.workload == t.workload
                        && s.level == t.level
                        && s.mode == SchedulerMode::Serial
                })
                .expect("serial twin exists");
            format!("{:.2}x", serial.wall_s / t.wall_s.max(1e-9))
        } else {
            "-".to_owned()
        };
        table.push(vec![
            t.workload.clone(),
            format!(
                "{}{}",
                t.mode.label(),
                if t.parallel { "*" } else { "" } // * = actually concurrent
            ),
            t.level.to_string(),
            t.step_labels.join(" + "),
            t.n_r1.to_string(),
            t.n_ccs.to_string(),
            fmt_s(t.phase1_s),
            fmt_s(t.phase2_s),
            fmt_s(t.wall_s),
            speedup,
            fmt_err(t.dc_error),
        ]);
    }
    // `Table::emit` would stamp the snapshot with the CLI-selected
    // workload (default census) and its knobs — none of which describe
    // this cross-workload sweep. Render the table but write a snapshot
    // carrying the sweep's *actual* parameters: the per-workload scale
    // labels and resolved knob maps, and the effective (min-of) run count.
    println!("{}", table.render());
    if let Some(dir) = &opts.out_dir {
        let mut scale_labels: BTreeMap<String, u32> = BTreeMap::new();
        let mut knobs: BTreeMap<String, BTreeMap<String, i64>> = BTreeMap::new();
        for workload in all_workloads() {
            let meta = workload.meta();
            if meta.n_steps() < 2 {
                continue;
            }
            let sub = ExperimentOpts {
                workload: meta.name.to_owned(),
                ..opts.clone()
            };
            scale_labels.insert(meta.name.to_owned(), sweep_label(&meta));
            knobs.insert(meta.name.to_owned(), sub.resolved_knobs());
        }
        let snapshot = SchedSnapshot {
            id: "sched".to_owned(),
            title: table.title.clone(),
            scale_factor: opts.scale_factor,
            n_ccs: opts.n_ccs,
            runs: sweep_runs(opts),
            seed: opts.seed,
            scale_labels,
            knobs,
            records: timings.iter().map(SchedRecord::from).collect(),
        };
        std::fs::create_dir_all(dir).expect("create output dir");
        let path = dir.join("sched.json");
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&snapshot).expect("serialize"),
        )
        .expect("write snapshot");
        println!("[snapshot written to {}]\n", path.display());
    }
    println!("[sched equivalence: parallel and serial relations bit-identical on every run]\n");
}

/// The `sched.json` snapshot: the sweep's actual parameters (per-workload
/// scale labels and resolved knobs — `Table::emit`'s single-workload stamp
/// cannot describe a cross-workload sweep) plus one record per level × mode.
#[derive(Debug, Serialize)]
struct SchedSnapshot {
    /// Experiment id.
    id: String,
    /// Human title.
    title: String,
    /// Scale factor applied to the per-workload labels.
    scale_factor: f64,
    /// CC-set size requested per step.
    n_ccs: usize,
    /// Effective solves per scheduler mode (walls are minima over these).
    runs: usize,
    /// Base RNG seed.
    seed: u64,
    /// Scale label each workload's sweep ran at.
    scale_labels: BTreeMap<String, u32>,
    /// Resolved knob map per swept workload.
    knobs: BTreeMap<String, BTreeMap<String, i64>>,
    /// One record per workload × scheduler mode × level.
    records: Vec<SchedRecord>,
}

/// One serialized sweep record.
#[derive(Debug, Serialize)]
struct SchedRecord {
    /// Workload name.
    workload: String,
    /// Scheduler mode label (`serial` / `parallel`).
    mode: String,
    /// Level index in execution order.
    level: usize,
    /// `Owner→Target` labels of the level's steps.
    steps: Vec<String>,
    /// Whether the level's steps actually ran concurrently.
    parallel: bool,
    /// Summed `R1` rows across the level's steps.
    n_r1: usize,
    /// Summed `R2` rows across the level's steps.
    n_r2: usize,
    /// Summed CC-set size across the level's steps.
    n_ccs: usize,
    /// Summed Phase I seconds.
    phase1_s: f64,
    /// Summed Phase II seconds.
    phase2_s: f64,
    /// Level wall seconds (minimum over the sweep's runs).
    wall_s: f64,
    /// Pooled median relative CC error.
    cc_median: f64,
    /// Worst DC error across the level's steps.
    dc_error: f64,
}

impl From<&LevelTiming> for SchedRecord {
    fn from(t: &LevelTiming) -> SchedRecord {
        SchedRecord {
            workload: t.workload.clone(),
            mode: t.mode.label().to_owned(),
            level: t.level,
            steps: t.step_labels.clone(),
            parallel: t.parallel,
            n_r1: t.n_r1,
            n_r2: t.n_r2,
            n_ccs: t.n_ccs,
            phase1_s: t.phase1_s,
            phase2_s: t.phase2_s,
            wall_s: t.wall_s,
            cc_median: t.cc_median,
            dc_error: t.dc_error,
        }
    }
}
