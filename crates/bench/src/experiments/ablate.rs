//! Ablations of the design decisions called out in DESIGN.md:
//!
//! 1. **Parallel coloring** (§A.3) — serial vs threaded Phase II.
//! 2. **Exact vs greedy coloring** — solution quality (fresh `R2` tuples)
//!    and cost of the backtracking solver.
//! 3. **Branch-and-bound budget** — full B&B vs immediate LP rounding
//!    (`bb_nodes = 0`): CC error and Phase I time.
//! 4. **Marginal augmentation** — already visible in Figures 8/10 via the
//!    two baselines; here HasseOnly shows what dropping the ILP entirely
//!    costs on a bad CC set.
//! 5. **Conflict builder** — the indexed fast path vs the retained naive
//!    `O(|P|^k)` enumeration: identical output, Phase II build cost only.

use crate::harness::{fmt_err, fmt_s, run_averaged, ExperimentOpts, Table};
use cextend_core::{ColoringMode, ConflictBuilderKind, IlpSettings, Phase1Strategy, SolverConfig};
use cextend_workloads::{CcFamily, DcSet};

/// Runs all ablations.
pub fn run(opts: &ExperimentOpts) {
    let dcs = opts.dcs(DcSet::All);
    let data = opts.dataset(10, None, 10);
    let good = opts.ccs(CcFamily::Good, opts.n_ccs, &data, 10);
    let bad = opts.ccs(CcFamily::Bad, opts.n_ccs, &data, 10);

    let mut table = Table::new(
        "ablate",
        &format!(
            "Design-decision ablations — scale 10x, all DCs ({})",
            opts.workload
        ),
        &[
            "Variant", "CCs", "CC med", "CC mean", "phase I", "phase II", "total", "new R2",
        ],
    )
    .with_scale_label(10);
    let cases: Vec<(&str, &str, SolverConfig)> = vec![
        ("hybrid (reference)", "good", SolverConfig::hybrid()),
        (
            "parallel coloring",
            "good",
            SolverConfig {
                parallel_coloring: true,
                ..SolverConfig::hybrid()
            },
        ),
        (
            "exact coloring",
            "good",
            SolverConfig {
                coloring: ColoringMode::Exact { max_steps: 200_000 },
                ..SolverConfig::hybrid()
            },
        ),
        (
            "naive conflict builder",
            "good",
            SolverConfig {
                conflict: ConflictBuilderKind::Naive,
                ..SolverConfig::hybrid()
            },
        ),
        ("hybrid (reference)", "bad", SolverConfig::hybrid()),
        (
            "bb_nodes = 0 (round only)",
            "bad",
            SolverConfig {
                ilp: IlpSettings {
                    bb_nodes: 0,
                    ..IlpSettings::default()
                },
                ..SolverConfig::hybrid()
            },
        ),
        (
            "no repair pass",
            "bad",
            SolverConfig {
                ilp: IlpSettings {
                    repair_passes: 0,
                    ..IlpSettings::default()
                },
                ..SolverConfig::hybrid()
            },
        ),
        (
            "HasseOnly (drop ILP)",
            "bad",
            SolverConfig {
                phase1: Phase1Strategy::HasseOnly,
                ..SolverConfig::hybrid()
            },
        ),
    ];
    for (name, which, config) in cases {
        let ccs = if which == "good" { &good } else { &bad };
        let r = run_averaged(&data, ccs, &dcs, &config, opts.runs);
        assert_eq!(r.dc_error, 0.0, "every variant still guarantees DCs");
        table.push(vec![
            name.to_owned(),
            which.to_owned(),
            fmt_err(r.cc_median),
            fmt_err(r.cc_mean),
            fmt_s(r.phase1_s),
            fmt_s(r.phase2_s),
            fmt_s(r.wall_s),
            r.new_r2_tuples.to_string(),
        ]);
    }
    table.emit(opts);
}
