//! `scale`: paper-scale throughput runs with wall *and* peak-memory
//! records.
//!
//! The figure experiments default to laptop-sized fractions of the paper's
//! data scales; this driver runs the two single-step workloads that reach
//! 10⁶ `R1` tuples at 100% scale — Census (Table 1's 40× row: 1,015,686
//! persons) and the DC-dense adversarial Events/Slots scenario — through
//! the full hybrid pipeline with Phase II conflict building + coloring
//! sharded by partition across the `CEXTEND_SCHED_WORKERS` pool.
//!
//! Each scenario is stamped with the knobs it runs at: both raise their
//! partition-count knob (`areas` / `rooms`) far above the figure-experiment
//! defaults, because pair DCs materialize a conflict edge per violating
//! tuple pair *within* a partition — at 10⁶ rows the edge count (and so
//! wall and memory) is governed by partition size, exactly the regime the
//! paper's Section A.3 sharding targets.
//!
//! Results go three places:
//!
//! - a `scale.json` table snapshot (via the usual [`Table::emit`]);
//! - a `scale` section **merged into** `<out>/BENCH_perf.json` — run `perf`
//!   first; `perf-check` compares the section's wall and peak-RSS numbers
//!   against the committed baseline when both ran at the same parameters
//!   (and skips the section otherwise, so a 10% CI smoke never gates
//!   against the committed 100% records);
//! - one `"kind":"scale"` line appended to `BENCH_history.jsonl`
//!   (`perf-trend` shows perf lines only and notes how many scale lines it
//!   skipped).
//!
//! CI budget asserts: when `CEXTEND_SCALE_MAX_WALL_S` /
//! `CEXTEND_SCALE_MAX_RSS_MB` are set, every record must come in under
//! them or the driver fails — the `scale-smoke` CI step pins both.

use crate::harness::{fmt_s, run_averaged, run_meta, ExperimentOpts, RunMeta, Table};
use cextend_core::SolverConfig;
use cextend_obs::narrate;
use cextend_table::{peak_rss_bytes, reset_peak_rss};
use cextend_workloads::{workload_by_name, CcFamily, DcSet, WorkloadParams};
use serde::Serialize;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// One paper-scale scenario: a registered workload, the generator scale
/// that reaches the paper's full size (≥10⁶ `R1` tuples at factor 1.0),
/// and the knob overrides that keep its `V_join` partitions small enough
/// for the pair-DC conflict cliques to stay tractable at that size.
pub struct ScaleScenario {
    /// Registered workload name.
    pub workload: &'static str,
    /// Generator scale at `--paper-scale` (factor 1.0).
    pub full_scale: f64,
    /// Scenario knob overrides (CLI `--knob` values win over these).
    pub knobs: &'static [(&'static str, i64)],
}

/// The paper-scale scenarios, in run order.
///
/// - `census` at scale 40 is Table 1's 40× row: 1,015,686 persons across
///   392,800 households. `areas=1024` bounds the owner-pair (`DC_OO`)
///   cliques to ~150 owners per `(Tenure, Area)` partition.
/// - `dcdense` at scale 62.5 generates 250,000 slots × ~4 events ≈ 10⁶
///   events. `rooms=10000` yields ~20,000 `(Room, Shift)` partitions of
///   ~50 events, bounding the Anchor-pair cliques and the ternary
///   `nae-track` hyperedge enumeration.
pub const SCENARIOS: [ScaleScenario; 2] = [
    ScaleScenario {
        workload: "census",
        full_scale: 40.0,
        knobs: &[("areas", 1024)],
    },
    ScaleScenario {
        workload: "dcdense",
        full_scale: 62.5,
        knobs: &[("rooms", 10_000)],
    },
];

/// One scenario's committed record: sizes, wall split and peak memory.
#[derive(Debug, Serialize)]
pub struct ScaleRecord {
    /// Workload name.
    pub workload: String,
    /// Effective generator scale (`full_scale × scale_factor`).
    pub scale: f64,
    /// Knobs the scenario resolved to (scenario defaults + CLI overrides).
    pub knobs: BTreeMap<String, i64>,
    /// `R1` rows generated.
    pub n_r1: usize,
    /// `R2` rows generated.
    pub n_r2: usize,
    /// CC-set size.
    pub n_ccs: usize,
    /// Phase I seconds (averaged over `runs`).
    pub phase1_s: f64,
    /// Algorithm 2 (Hasse recursion) seconds — Phase I sub-stage.
    pub hasse_s: f64,
    /// Local-search repair seconds — Phase I sub-stage.
    pub repair_s: f64,
    /// Leftover-completion seconds — Phase I sub-stage.
    pub leftovers_s: f64,
    /// Baseline random-completion seconds — Phase I sub-stage.
    pub random_s: f64,
    /// Phase II seconds.
    pub phase2_s: f64,
    /// Conflict-graph construction seconds — Phase II sub-stage.
    pub conflict_s: f64,
    /// Weighted-coloring seconds (pure coloring, no graph build) — Phase II
    /// sub-stage.
    pub coloring_s: f64,
    /// Invalid-tuple handling seconds — Phase II sub-stage.
    pub invalid_s: f64,
    /// Total wall-clock seconds.
    pub wall_s: f64,
    /// Median relative CC error.
    pub cc_median: f64,
    /// DC error (must be 0.0).
    pub dc_error: f64,
    /// Generated-relation column-buffer bytes (engine accounting).
    pub relation_heap_bytes: usize,
    /// Process peak RSS over *this scenario only*, when the platform
    /// exposes it: the high-water mark is reset (`clear_refs`, see
    /// [`reset_peak_rss`]) before each scenario's generate+solve, so the
    /// value is per-workload rather than "peak up to and including this
    /// scenario". Records written by drivers before schema note v2.1 carry
    /// the old monotone semantics; on platforms where the reset is
    /// unavailable the value degrades back to monotone.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub peak_rss_bytes: Option<u64>,
}

/// The `scale` section of `BENCH_perf.json`: run parameters (the
/// comparability gate, mirroring the perf sweep's) plus one record per
/// scenario.
#[derive(Debug, Serialize)]
pub struct ScaleSection {
    /// Scale factor applied to each scenario's `full_scale` (1.0 = paper
    /// scale).
    pub scale_factor: f64,
    /// CC-set size requested.
    pub n_ccs: usize,
    /// Runs averaged per record.
    pub runs: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// CLI-provided knob overrides.
    pub knobs: BTreeMap<String, i64>,
    /// Conflict-builder label.
    pub conflict: String,
    /// DC planner label (`cost` or `static`).
    pub dcplan: String,
    /// Phase 1 mode label (`parallel` or `serial`). Not a comparability
    /// gate: both modes are bit-identical, only scheduling differs.
    pub phase1: String,
    /// Build/environment provenance (git commit, worker width). Not a
    /// comparability gate — see [`RunMeta`].
    pub meta: RunMeta,
    /// One record per scenario.
    pub records: Vec<ScaleRecord>,
}

/// Reads an `f64` budget from the environment (`None` when unset; an
/// unparsable value is a hard error, not a silently-dropped budget).
fn env_budget(name: &str) -> Result<Option<f64>, String> {
    match std::env::var(name) {
        Err(_) => Ok(None),
        Ok(s) => s
            .trim()
            .parse::<f64>()
            .map(Some)
            .map_err(|e| format!("bad {name}=`{s}`: {e}")),
    }
}

/// Runs every scenario at `full_scale × --scale-factor` and commits the
/// records (see the module docs for where they land).
pub fn run(opts: &ExperimentOpts) -> Result<(), String> {
    let max_wall_s = env_budget("CEXTEND_SCALE_MAX_WALL_S")?;
    let max_rss_mb = env_budget("CEXTEND_SCALE_MAX_RSS_MB")?;
    let mut table = Table::new(
        "scale",
        &format!(
            "Paper-scale runs — {} of full scale, sharded Phase II",
            opts.scale_factor
        ),
        &[
            "Workload", "Scale", "R1", "R2", "CCs", "phase I", "phase II", "total", "CC med",
            "DC err", "rel heap", "peak RSS",
        ],
    );
    let mut records = Vec::new();
    let mut failures = Vec::new();
    for scenario in &SCENARIOS {
        let workload = workload_by_name(scenario.workload).expect("scenario is registered");
        let meta = workload.meta();
        // Scenario knob defaults, overridden by any CLI `--knob` the
        // workload owns.
        let mut knobs: BTreeMap<String, i64> = scenario
            .knobs
            .iter()
            .map(|&(name, v)| (name.to_owned(), v))
            .collect();
        for (name, &v) in &opts.knobs {
            if meta.knobs.iter().any(|&(k, _)| k == name.as_str()) {
                knobs.insert(name.clone(), v);
            }
        }
        let scale = scenario.full_scale * opts.scale_factor;
        let params = WorkloadParams {
            scale,
            seed: opts.seed,
            r2_cols: None,
            knobs: knobs.clone(),
        };
        narrate!(
            "[scale: generating {} at scale {scale} (knobs: {knobs:?})]",
            meta.name
        );
        // Per-workload peak memory: drop the process high-water mark to the
        // current RSS so this scenario's record doesn't inherit the peak of
        // a heavier predecessor.
        reset_peak_rss();
        let data = workload.generate(&params);
        let heap = cextend_table::MemStats::capture(data.relations.iter().chain(&data.truth))
            .relation_heap_bytes;
        let ccs = workload.ccs(CcFamily::Good, opts.n_ccs, &data, opts.seed);
        let dcs = workload.dcs(DcSet::All);
        let config = SolverConfig::hybrid()
            .with_conflict(opts.conflict)
            .with_dc_planner(opts.dcplan)
            .with_parallel_coloring(true)
            .with_parallel_phase1(opts.parallel_phase1);
        let result = run_averaged(&data, &ccs, &dcs, &config, opts.runs);
        assert_eq!(
            result.dc_error, 0.0,
            "Proposition 5.5 violated on {} at scale {scale}",
            meta.name
        );
        let peak = peak_rss_bytes();
        table.push(vec![
            meta.name.to_owned(),
            format!("{scale}"),
            data.n_r1().to_string(),
            data.n_r2().to_string(),
            ccs.len().to_string(),
            fmt_s(result.phase1_s),
            fmt_s(result.phase2_s),
            fmt_s(result.wall_s),
            format!("{:.3}", result.cc_median),
            format!("{:.3}", result.dc_error),
            fmt_mb(heap as u64),
            peak.map_or("-".to_owned(), fmt_mb),
        ]);
        if let Some(budget) = max_wall_s {
            if result.wall_s > budget {
                failures.push(format!(
                    "{}: wall {} exceeds CEXTEND_SCALE_MAX_WALL_S={budget}",
                    meta.name,
                    fmt_s(result.wall_s)
                ));
            }
        }
        if let (Some(budget), Some(rss)) = (max_rss_mb, peak) {
            if rss as f64 / (1024.0 * 1024.0) > budget {
                failures.push(format!(
                    "{}: peak RSS {} exceeds CEXTEND_SCALE_MAX_RSS_MB={budget}",
                    meta.name,
                    fmt_mb(rss)
                ));
            }
        }
        records.push(ScaleRecord {
            workload: meta.name.to_owned(),
            scale,
            knobs,
            n_r1: data.n_r1(),
            n_r2: data.n_r2(),
            n_ccs: ccs.len(),
            phase1_s: result.phase1_s,
            hasse_s: result.recursion_s,
            repair_s: result.repair_s,
            leftovers_s: result.leftovers_s,
            random_s: result.random_s,
            phase2_s: result.phase2_s,
            conflict_s: result.conflict_s,
            coloring_s: result.color_s,
            invalid_s: result.invalid_s,
            wall_s: result.wall_s,
            cc_median: result.cc_median,
            dc_error: result.dc_error,
            relation_heap_bytes: heap,
            peak_rss_bytes: peak,
        });
    }
    table.emit(opts);

    let section = ScaleSection {
        scale_factor: opts.scale_factor,
        n_ccs: opts.n_ccs,
        runs: opts.runs,
        seed: opts.seed,
        knobs: opts.knobs.clone(),
        conflict: opts.conflict.label().to_owned(),
        dcplan: opts.dcplan.label().to_owned(),
        phase1: if opts.parallel_phase1 {
            "parallel".to_owned()
        } else {
            "serial".to_owned()
        },
        meta: run_meta(),
        records,
    };
    let dir = opts
        .out_dir
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create output dir: {e}"))?;
    let perf_path = dir.join("BENCH_perf.json");
    merge_section(&perf_path, &section)?;
    narrate!("[scale section merged into {}]", perf_path.display());
    let history = dir.join("BENCH_history.jsonl");
    append_history(&history, opts, &section)?;
    narrate!("[scale history appended to {}]\n", history.display());

    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "scale budget exceeded:\n  {}",
            failures.join("\n  ")
        ))
    }
}

/// Formats bytes as mebibytes.
fn fmt_mb(bytes: u64) -> String {
    format!("{:.0}MB", bytes as f64 / (1024.0 * 1024.0))
}

/// Writes (or replaces) the `scale` key of `<path>` in place, preserving
/// every other field of the perf document. When the file doesn't exist yet
/// (running `scale` before `perf`), a scale-only stub is written — the
/// perf sweep overwrites it wholesale, so run `perf` first to keep both.
fn merge_section(path: &Path, section: &ScaleSection) -> Result<(), String> {
    let section_value: serde::Value =
        serde_json::from_str(&serde_json::to_string(section).expect("serialize scale section"))
            .expect("round-trip scale section");
    let mut top: Vec<(String, serde::Value)> = match std::fs::read_to_string(path) {
        Err(_) => {
            narrate!(
                "[note: `{}` does not exist yet — writing a scale-only stub; \
                 run `experiments -- perf` first to keep perf records too]",
                path.display()
            );
            vec![("schema_version".to_owned(), serde::Value::Int(2))]
        }
        Ok(text) => match serde_json::from_str(&text) {
            Ok(serde::Value::Object(obj)) => obj,
            _ => {
                return Err(format!(
                    "`{}` is not a JSON object — regenerate it with `experiments -- perf`",
                    path.display()
                ))
            }
        },
    };
    match top.iter_mut().find(|(k, _)| k == "scale") {
        Some((_, v)) => *v = section_value,
        None => top.push(("scale".to_owned(), section_value)),
    }
    let doc = serde_json::to_string_pretty(&serde::Value::Object(top)).expect("serialize");
    std::fs::write(path, doc).map_err(|e| format!("write {}: {e}", path.display()))
}

/// One `"kind":"scale"` history line: run identity plus per-scenario wall
/// and peak RSS. `perf-trend` filters these out (different parameter space
/// than the perf sweep); the line exists so the committed history carries
/// the paper-scale trajectory too.
#[derive(Debug, Serialize)]
struct ScaleHistoryRecord {
    label: String,
    stamp: String,
    schema_version: u32,
    /// Discriminator `perf-trend` skips on.
    kind: &'static str,
    scale_factor: f64,
    n_ccs: usize,
    runs: usize,
    seed: u64,
    conflict: String,
    /// Workload → wall seconds.
    walls: BTreeMap<String, f64>,
    /// Workload → peak RSS in MiB (absent entries: platform hides RSS).
    peak_rss_mb: BTreeMap<String, f64>,
}

fn append_history(
    path: &Path,
    opts: &ExperimentOpts,
    section: &ScaleSection,
) -> Result<(), String> {
    let record = ScaleHistoryRecord {
        label: opts.label.clone(),
        stamp: opts.stamp.clone(),
        schema_version: 2,
        kind: "scale",
        scale_factor: section.scale_factor,
        n_ccs: section.n_ccs,
        runs: section.runs,
        seed: section.seed,
        conflict: section.conflict.clone(),
        walls: section
            .records
            .iter()
            .map(|r| (r.workload.clone(), r.wall_s))
            .collect(),
        peak_rss_mb: section
            .records
            .iter()
            .filter_map(|r| {
                r.peak_rss_bytes
                    .map(|b| (r.workload.clone(), b as f64 / (1024.0 * 1024.0)))
            })
            .collect(),
    };
    let line = serde_json::to_string(&record).expect("serialize scale history record");
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("open {}: {e}", path.display()))?;
    writeln!(file, "{line}").map_err(|e| format!("append {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_reach_a_million_r1_tuples_at_full_scale() {
        // `census`: Table 1's 40× row. `dcdense`: 250k slots × ~4 events.
        for s in &SCENARIOS {
            let expected_r1 = match s.workload {
                "census" => 1_015_686.0,
                "dcdense" => 4_000.0 * s.full_scale * 4.0,
                other => panic!("unknown scenario {other}"),
            };
            assert!(
                expected_r1 >= 1_000_000.0,
                "{} reaches only {expected_r1} R1 tuples at full scale",
                s.workload
            );
        }
    }

    #[test]
    fn merge_preserves_existing_perf_fields() {
        let dir = std::env::temp_dir().join("cextend-scale-merge");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_perf.json");
        std::fs::write(
            &path,
            r#"{"schema_version":2,"scale_factor":0.005,"n_ccs":15,"runs":1,"seed":7,"records":[{"workload":"census","family":"good","step":"s","wall_s":0.1}]}"#,
        )
        .unwrap();
        let section = ScaleSection {
            scale_factor: 1.0,
            n_ccs: 150,
            runs: 1,
            seed: 7,
            knobs: BTreeMap::new(),
            conflict: "indexed".to_owned(),
            dcplan: "cost".to_owned(),
            phase1: "parallel".to_owned(),
            meta: run_meta(),
            records: vec![ScaleRecord {
                workload: "census".to_owned(),
                scale: 40.0,
                knobs: [("areas".to_owned(), 1024i64)].into_iter().collect(),
                n_r1: 1_015_686,
                n_r2: 392_800,
                n_ccs: 150,
                phase1_s: 10.0,
                hasse_s: 4.0,
                repair_s: 1.0,
                leftovers_s: 5.0,
                random_s: 0.0,
                phase2_s: 20.0,
                conflict_s: 12.0,
                coloring_s: 6.0,
                invalid_s: 0.5,
                wall_s: 31.0,
                cc_median: 0.0,
                dc_error: 0.0,
                relation_heap_bytes: 1 << 28,
                peak_rss_bytes: Some(2 << 30),
            }],
        };
        merge_section(&path, &section).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Old perf fields survive, the scale section is in.
        assert!(text.contains(r#""family""#), "{text}");
        assert!(text.contains(r#""peak_rss_bytes""#), "{text}");
        assert!(text.contains(r#""scale_factor": 0.005"#), "{text}");
        // Merging again replaces rather than duplicates the section.
        merge_section(&path, &section).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches(r#""peak_rss_bytes""#).count(), 1, "{text}");
    }

    #[test]
    fn merge_without_perf_doc_writes_a_stub() {
        let dir = std::env::temp_dir().join("cextend-scale-stub");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_perf.json");
        let _ = std::fs::remove_file(&path);
        let section = ScaleSection {
            scale_factor: 0.1,
            n_ccs: 50,
            runs: 1,
            seed: 7,
            knobs: BTreeMap::new(),
            conflict: "indexed".to_owned(),
            dcplan: "cost".to_owned(),
            phase1: "serial".to_owned(),
            meta: run_meta(),
            records: Vec::new(),
        };
        merge_section(&path, &section).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains(r#""schema_version""#), "{text}");
        assert!(text.contains(r#""scale""#), "{text}");
    }

    #[test]
    fn env_budget_parses_or_errors() {
        assert_eq!(env_budget("CEXTEND_NO_SUCH_BUDGET").unwrap(), None);
    }
}
