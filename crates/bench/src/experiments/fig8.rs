//! Figures 8a/8b: CC and DC error for baseline, baseline-with-marginals and
//! hybrid as data grows from scale 1× to 40×, with `S_all_DC` and either
//! `S_good_CC` (8a) or `S_bad_CC` (8b).
//!
//! Paper shape to reproduce: hybrid has **zero DC error everywhere** and
//! zero median CC error; the plain baseline has large CC *and* DC errors
//! growing with scale; baseline-with-marginals repairs the CC error but
//! keeps (even worsens) the DC error.

use crate::harness::{fmt_err, run_averaged, ExperimentOpts, Table};
use cextend_core::SolverConfig;
use cextend_workloads::{CcFamily, DcSet};

/// Runs Figure 8a (`Good`) or 8b (`Bad`).
pub fn run(opts: &ExperimentOpts, family: CcFamily, id: &str) {
    let dcs = opts.dcs(DcSet::All);
    let mut table = Table::new(
        id,
        &format!(
            "CC/DC error vs scale — all DCs, {:?} CCs (n={}, {})",
            family, opts.n_ccs, opts.workload
        ),
        &[
            "Scale",
            "CC base",
            "CC base+marg",
            "CC hybrid",
            "DC base",
            "DC base+marg",
            "DC hybrid",
        ],
    );
    for label in [1u32, 2, 5, 10, 40] {
        let data = opts.dataset(label, None, label as u64);
        let ccs = opts.ccs(family, opts.n_ccs, &data, label as u64);
        let base = run_averaged(&data, &ccs, &dcs, &SolverConfig::baseline(), opts.runs);
        let marg = run_averaged(
            &data,
            &ccs,
            &dcs,
            &SolverConfig::baseline_with_marginals(),
            opts.runs,
        );
        let hybrid = run_averaged(&data, &ccs, &dcs, &SolverConfig::hybrid(), opts.runs);
        assert_eq!(hybrid.dc_error, 0.0, "the hybrid guarantees zero DC error");
        table.push(vec![
            format!("{label}x"),
            fmt_err(base.cc_median),
            fmt_err(marg.cc_median),
            fmt_err(hybrid.cc_median),
            fmt_err(base.dc_error),
            fmt_err(marg.dc_error),
            fmt_err(hybrid.dc_error),
        ]);
    }
    table.emit(opts);
}
