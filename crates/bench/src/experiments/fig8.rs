//! Figures 8a/8b: CC and DC error for baseline, baseline-with-marginals and
//! hybrid as data grows from scale 1× to 40×, with `S_all_DC` and either
//! `S_good_CC` (8a) or `S_bad_CC` (8b).
//!
//! Paper shape to reproduce: hybrid has **zero DC error everywhere** and
//! zero median CC error; the plain baseline has large CC *and* DC errors
//! growing with scale; baseline-with-marginals repairs the CC error but
//! keeps (even worsens) the DC error.
//!
//! On a multi-relation workload the sweep runs the *full FK-completion
//! chain* per pipeline and reports one row per (scale, step): the hybrid's
//! zero-DC guarantee must hold at every level of the snowflake.

use crate::harness::{
    chain_steps, fmt_err, run_averaged, run_chain_with_steps_averaged, ExperimentOpts, Table,
};
use cextend_core::SolverConfig;
use cextend_workloads::{CcFamily, DcSet};

const SCALE_LABELS: [u32; 5] = [1, 2, 5, 10, 40];

const PIPELINES: [&str; 3] = ["base", "base+marg", "hybrid"];

fn pipeline_config(name: &str) -> SolverConfig {
    match name {
        "base" => SolverConfig::baseline(),
        "base+marg" => SolverConfig::baseline_with_marginals(),
        "hybrid" => SolverConfig::hybrid(),
        other => unreachable!("unknown pipeline {other}"),
    }
}

/// Runs Figure 8a (`Good`) or 8b (`Bad`).
pub fn run(opts: &ExperimentOpts, family: CcFamily, id: &str) {
    if opts.workload().meta().n_steps() > 1 {
        run_chain(opts, family, id);
        return;
    }
    let dcs = opts.dcs(DcSet::All);
    let mut table = Table::new(
        id,
        &format!(
            "CC/DC error vs scale — all DCs, {:?} CCs (n={}, {})",
            family, opts.n_ccs, opts.workload
        ),
        &[
            "Scale",
            "CC base",
            "CC base+marg",
            "CC hybrid",
            "DC base",
            "DC base+marg",
            "DC hybrid",
        ],
    );
    for label in SCALE_LABELS {
        let data = opts.dataset(label, None, label as u64);
        let ccs = opts.ccs(family, opts.n_ccs, &data, label as u64);
        let base = run_averaged(&data, &ccs, &dcs, &SolverConfig::baseline(), opts.runs);
        let marg = run_averaged(
            &data,
            &ccs,
            &dcs,
            &SolverConfig::baseline_with_marginals(),
            opts.runs,
        );
        let hybrid = run_averaged(&data, &ccs, &dcs, &SolverConfig::hybrid(), opts.runs);
        assert_eq!(hybrid.dc_error, 0.0, "the hybrid guarantees zero DC error");
        table.push(vec![
            format!("{label}x"),
            fmt_err(base.cc_median),
            fmt_err(marg.cc_median),
            fmt_err(hybrid.cc_median),
            fmt_err(base.dc_error),
            fmt_err(marg.dc_error),
            fmt_err(hybrid.dc_error),
        ]);
    }
    table.emit(opts);
}

/// The multi-step variant: one row per (scale, step), every pipeline run
/// over the whole chain.
fn run_chain(opts: &ExperimentOpts, family: CcFamily, id: &str) {
    let workload = opts.workload();
    let mut table = Table::new(
        id,
        &format!(
            "CC/DC error vs scale per chain step — all DCs, {:?} CCs (n={}, {})",
            family, opts.n_ccs, opts.workload
        ),
        &[
            "Scale",
            "Step",
            "CC base",
            "CC base+marg",
            "CC hybrid",
            "DC base",
            "DC base+marg",
            "DC hybrid",
        ],
    );
    for label in SCALE_LABELS {
        let data = opts.dataset(label, None, label as u64);
        // One constraint-generation pass per scale label; every pipeline
        // then solves the identical step set.
        let steps = chain_steps(
            workload.as_ref(),
            &data,
            family,
            DcSet::All,
            opts.n_ccs,
            opts.seed + label as u64,
        );
        let chains: Vec<_> = PIPELINES
            .iter()
            .map(|name| {
                // Every pipeline honors the CLI-selected step scheduler —
                // `--scheduler parallel` must actually exercise the
                // parallel path here, not just in `table1`.
                let config = pipeline_config(name).with_scheduler(opts.scheduler);
                run_chain_with_steps_averaged(&data, &steps, &config, opts.runs)
            })
            .collect();
        let hybrid = &chains[PIPELINES.len() - 1];
        for (s, step) in hybrid.steps.iter().enumerate() {
            assert_eq!(
                step.result.dc_error, 0.0,
                "the hybrid guarantees zero DC error at step {}",
                step.step
            );
            table.push(vec![
                format!("{label}x"),
                step.step.clone(),
                fmt_err(chains[0].steps[s].result.cc_median),
                fmt_err(chains[1].steps[s].result.cc_median),
                fmt_err(chains[2].steps[s].result.cc_median),
                fmt_err(chains[0].steps[s].result.dc_error),
                fmt_err(chains[1].steps[s].result.dc_error),
                fmt_err(chains[2].steps[s].result.dc_error),
            ]);
        }
    }
    table.emit(opts);
}
