//! `fuzz-spec` — the well-typed spec fuzzer behind the differential
//! oracles — and `spec-check`, the corpus gate.
//!
//! `fuzz-spec` generates `--iters` random workload specs (each a ≥3-wide
//! star whose first dimension heads a multi-hop chain), lowers each
//! through the full parse → check → lower pipeline, and solves it under
//! (serial, indexed), (serial, naive) and (parallel, indexed), demanding
//! bit-identical tables and solve counters. Any divergence, solver error
//! or self-rejected spec fails the run. The run also asserts coverage:
//! at least one generated schedule must have ≥ 3 levels and a ≥ 3-wide
//! level, so the oracles demonstrably exercised both chain scheduling and
//! star parallelism.
//!
//! `spec-check` parses + statically checks every `specs/*.spec` and
//! asserts every `specs/bad/*.spec` is rejected by the checker.

use crate::harness::ExperimentOpts;
use cextend_spec::{fuzz_workload, iteration_seed, run_differential_oracles};
use std::path::{Path, PathBuf};

/// Runs the spec fuzzer + differential oracles for `opts.iters`
/// iterations at base seed `opts.seed`.
pub fn run(opts: &ExperimentOpts) -> Result<(), String> {
    // Generated specs are tiny (≤ 60 fact rows), so a handful of CCs per
    // step fully exercises both solver phases; a large `--n-ccs` would
    // only repeat pool samples 25 times over.
    let n_ccs = opts.n_ccs.min(24);
    println!(
        "## fuzz-spec — {} iterations, base seed {}, {} CCs/step",
        opts.iters, opts.seed, n_ccs
    );
    let (mut best_levels, mut best_width) = (0usize, 0usize);
    for iter in 0..opts.iters {
        let workload = fuzz_workload(opts.seed, iter).map_err(|e| {
            format!("iteration {iter}: generated spec failed its own static checks: {e}")
        })?;
        let out = run_differential_oracles(&workload, iteration_seed(opts.seed, iter), n_ccs)
            .map_err(|e| format!("iteration {iter}: {e}"))?;
        println!(
            "  [{iter:>2}] {}: {} steps, {} levels, widest level {} — both oracles ok",
            out.name, out.n_steps, out.levels, out.max_width
        );
        best_levels = best_levels.max(out.levels);
        best_width = best_width.max(out.max_width);
    }
    if best_levels < 3 || best_width < 3 {
        return Err(format!(
            "fuzz-spec coverage miss: deepest schedule {best_levels} levels, widest level \
             {best_width} (need ≥ 3 of each across the run)"
        ));
    }
    println!(
        "\nfuzz-spec: {} iterations green — indexed ≡ naive and serial ≡ parallel on every \
         spec (deepest schedule {best_levels} levels, widest level {best_width})",
        opts.iters
    );
    Ok(())
}

/// Parses + checks the committed corpus: every `specs/*.spec` must pass
/// the static checker, every `specs/bad/*.spec` must be rejected.
pub fn check_corpus(_opts: &ExperimentOpts) -> Result<(), String> {
    let good = spec_files(Path::new("specs"))?;
    if good.is_empty() {
        return Err("specs/: no .spec files found (run from the repo root)".to_owned());
    }
    for path in &good {
        cextend_spec::load_workload(path).map_err(|e| e.to_string())?;
        println!("  ok      {}", path.display());
    }
    let bad = spec_files(Path::new("specs/bad"))?;
    for path in &bad {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        match cextend_spec::parse_spec(&src, &path.display().to_string()) {
            Ok(_) => {
                return Err(format!(
                    "{}: expected the checker to reject this spec, but it passed",
                    path.display()
                ))
            }
            Err(e) => println!("  reject  {e}"),
        }
    }
    println!(
        "\nspec-check: {} corpus specs ok, {} negative specs rejected",
        good.len(),
        bad.len()
    );
    Ok(())
}

/// The `.spec` files directly under `dir`, sorted for stable output.
fn spec_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut out: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "spec"))
        .collect();
    out.sort();
    Ok(out)
}
