//! Figure 9: distribution of per-CC relative errors at the largest accuracy
//! scale (40×) with `S_all_DC` and `S_bad_CC`, baseline vs hybrid
//! (baseline-with-marginals is omitted, as in the paper, because it
//! satisfies all CCs).
//!
//! Paper shape: the hybrid's errors concentrate at 0 (median 0, small
//! mean); the baseline's distribution sits far higher.

use crate::harness::{fmt_err, run_once, ExperimentOpts, Table};
use cextend_core::metrics::median;
use cextend_core::SolverConfig;
use cextend_workloads::{CcFamily, DcSet};

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Runs Figure 9.
pub fn run(opts: &ExperimentOpts) {
    let dcs = opts.dcs(DcSet::All);
    let data = opts.dataset(40, None, 40);
    let ccs = opts.ccs(CcFamily::Bad, opts.n_ccs, &data, 40);
    let mut table = Table::new(
        "fig9",
        &format!(
            "Per-CC relative error distribution — scale 40x, all DCs, bad CCs ({})",
            opts.workload
        ),
        &[
            "Pipeline", "frac=0", "p50", "p75", "p90", "p99", "max", "mean",
        ],
    )
    .with_scale_label(40);
    for (name, config) in [
        ("baseline", SolverConfig::baseline()),
        ("hybrid", SolverConfig::hybrid()),
    ] {
        let r = run_once(&data, &ccs, &dcs, &config);
        let mut errs = r.cc_errors.clone();
        errs.sort_by(f64::total_cmp);
        let zero = errs.iter().filter(|&&e| e == 0.0).count() as f64 / errs.len() as f64;
        table.push(vec![
            name.to_owned(),
            fmt_err(zero),
            fmt_err(median(&errs)),
            fmt_err(percentile(&errs, 0.75)),
            fmt_err(percentile(&errs, 0.90)),
            fmt_err(percentile(&errs, 0.99)),
            fmt_err(percentile(&errs, 1.0)),
            fmt_err(r.cc_mean),
        ]);
    }
    table.emit(opts);
}
