//! Figure 10: CC and DC error for the four combinations of good/bad DCs and
//! good/bad CCs at scale 10×, across the three pipelines (the paper's
//! datasets 11, 12, 4 and 9).
//!
//! Paper shape: the hybrid satisfies all DCs in every quadrant and has
//! median CC error 0; the baselines' DC errors are large for `S_all_DC` and
//! smaller (but nonzero) for `S_good_DC`.

use crate::harness::{fmt_err, run_averaged, ExperimentOpts, Table};
use cextend_core::SolverConfig;
use cextend_workloads::{CcFamily, DcSet};

/// Runs Figure 10.
pub fn run(opts: &ExperimentOpts) {
    let data = opts.dataset(10, None, 10);
    let mut table = Table::new(
        "fig10",
        &format!(
            "Error grid at scale 10x — (DC set × CC set) × pipeline ({})",
            opts.workload
        ),
        &[
            "Dataset",
            "DCs",
            "CCs",
            "CC base",
            "CC base+marg",
            "CC hybrid",
            "DC base",
            "DC base+marg",
            "DC hybrid",
        ],
    )
    .with_scale_label(10);
    let cases = [
        ("11", "good", CcFamily::Good),
        ("12", "good", CcFamily::Bad),
        ("4", "all", CcFamily::Good),
        ("9", "all", CcFamily::Bad),
    ];
    for (ds, dc_kind, family) in cases {
        let dcs = if dc_kind == "good" {
            opts.dcs(DcSet::Good)
        } else {
            opts.dcs(DcSet::All)
        };
        let ccs = opts.ccs(family, opts.n_ccs, &data, 10);
        let base = run_averaged(&data, &ccs, &dcs, &SolverConfig::baseline(), opts.runs);
        let marg = run_averaged(
            &data,
            &ccs,
            &dcs,
            &SolverConfig::baseline_with_marginals(),
            opts.runs,
        );
        let hybrid = run_averaged(&data, &ccs, &dcs, &SolverConfig::hybrid(), opts.runs);
        assert_eq!(hybrid.dc_error, 0.0);
        table.push(vec![
            ds.to_owned(),
            dc_kind.to_owned(),
            format!("{family:?}"),
            fmt_err(base.cc_median),
            fmt_err(marg.cc_median),
            fmt_err(hybrid.cc_median),
            fmt_err(base.dc_error),
            fmt_err(marg.dc_error),
            fmt_err(hybrid.dc_error),
        ]);
    }
    table.emit(opts);
}
