//! One driver per table/figure of the paper's evaluation (Section 6),
//! plus the cross-workload perf baseline. Every driver is
//! workload-generic: `--workload retail` reruns the paper's experiment
//! designs on the Retail orders/customers scenario.
//!
//! | id | artifact |
//! |---|---|
//! | `table1` | Table 1 — data scales + Proposition 5.5 solver check |
//! | `fig8a` | Figure 8a — errors vs scale, all DCs + good CCs |
//! | `fig8b` | Figure 8b — errors vs scale, all DCs + bad CCs |
//! | `fig9` | Figure 9 — per-CC relative error distribution (40×, bad CCs) |
//! | `fig10` | Figure 10 — good/bad DC × good/bad CC error grid (10×) |
//! | `fig11a` | Figure 11a — runtime baseline vs hybrid, phase split |
//! | `fig11b` | Figure 11b — hybrid runtime 10×–160×, good vs bad CCs |
//! | `fig12` | Figure 12 — runtime vs number of `R2` columns |
//! | `fig13` | Figure 13 — runtime breakdown at growing CC counts |
//! | `ablate` | DESIGN.md ablations (parallel/exact coloring, B&B budget) |
//! | `sched` | star-vs-chain step-scheduler sweep: serial vs parallel wall per level, with a bit-identity assertion |
//! | `perf` | perf baseline over *all* workloads (one record per chain step + per scheduler level × mode) → `BENCH_perf.json` + `BENCH_history.jsonl` |
//! | `perf-check` | regression guard: fresh `BENCH_perf.json` vs the committed baseline |
//! | `perf-trend` | per-record wall-time trend table over the accumulated `BENCH_history.jsonl` lines (+ markdown when `--out` is set) |
//! | `scale` | paper-scale runs (census + dcdense at ≥10⁶ `R1` tuples under `--paper-scale`) with sharded Phase II; merges a wall + peak-RSS `scale` section into `BENCH_perf.json` |
//! | `profile` | one traced chain run → `<out>/trace.json` (Chrome Trace Event Format, opens in Perfetto) + per-stage self-time table cross-checked against `StageTimings` |
//! | `fuzz-spec` | seeded well-typed spec fuzzer: `--iters` random specs through the indexed ≡ naive and serial ≡ parallel differential oracles |
//! | `spec-check` | corpus gate: every `specs/*.spec` passes the static checker, every `specs/bad/*.spec` is rejected |

pub mod ablate;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig8;
pub mod fig9;
pub mod fuzzspec;
pub mod perf;
pub mod profile;
pub mod scale;
pub mod sched;
pub mod table1;
pub mod trend;

use crate::harness::ExperimentOpts;
use cextend_workloads::CcFamily;

/// Reads a named field from a parsed JSON object (shared by the
/// `perf-check` and `perf-trend` document readers).
pub(crate) fn json_field(obj: &[(String, serde::Value)], name: &str) -> Option<serde::Value> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v.clone())
}

/// The conflict-builder label of a perf document or history line — **the**
/// comparability rule for `--conflict`: an absent field (pre-PR5 records,
/// written when only one builder existed) maps to the default `indexed`
/// label so old records stay comparable/unflagged. `perf-check`'s
/// parameter gate and `perf-trend`'s `*` flag must agree, so both read it
/// from here.
pub(crate) fn conflict_label(obj: &[(String, serde::Value)]) -> String {
    match json_field(obj, "conflict") {
        Some(serde::Value::Str(s)) => s,
        _ => "indexed".to_owned(),
    }
}

/// The DC-planner label of a perf document or scale section — same
/// defaulting rule as [`conflict_label`]: an absent field (records written
/// before the cost planner existed) maps to the default `cost` label, so
/// old records compare against the default-configured runs that succeed
/// them rather than flagging every document as a parameter mismatch.
pub(crate) fn dcplan_label(obj: &[(String, serde::Value)]) -> String {
    match json_field(obj, "dcplan") {
        Some(serde::Value::Str(s)) => s,
        _ => "cost".to_owned(),
    }
}

/// All figure/table experiment ids, in run order (`perf` is driven
/// separately: it sweeps every workload and writes `BENCH_perf.json`).
pub const ALL: [&str; 10] = [
    "table1", "fig8a", "fig8b", "fig9", "fig10", "fig11a", "fig11b", "fig12", "fig13", "ablate",
];

/// Runs one experiment by id.
pub fn run(id: &str, opts: &ExperimentOpts) -> Result<(), String> {
    match id {
        "table1" => table1::run(opts),
        "fig8a" => fig8::run(opts, CcFamily::Good, "fig8a"),
        "fig8b" => fig8::run(opts, CcFamily::Bad, "fig8b"),
        "fig9" => fig9::run(opts),
        "fig10" => fig10::run(opts),
        "fig11a" => fig11::run_11a(opts),
        "fig11b" => fig11::run_11b(opts),
        "fig12" => fig12::run(opts),
        "fig13" => fig13::run(opts),
        "ablate" => ablate::run(opts),
        "sched" => sched::run(opts),
        "scale" => scale::run(opts)?,
        "profile" => profile::run(opts)?,
        "perf" => perf::run(opts),
        "perf-check" => perf::check_cli(opts)?,
        "perf-trend" => trend::run(opts)?,
        "fuzz-spec" => fuzzspec::run(opts)?,
        "spec-check" => fuzzspec::check_corpus(opts)?,
        other => {
            return Err(format!(
                "unknown experiment `{other}`; known: {ALL:?}, `sched`, `scale`, `profile`, \
                 `perf`, `perf-check`, `perf-trend`, `fuzz-spec` and `spec-check`"
            ))
        }
    }
    Ok(())
}
