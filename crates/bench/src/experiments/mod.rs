//! One driver per table/figure of the paper's evaluation (Section 6).
//!
//! | id | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — data scales |
//! | `fig8a` | Figure 8a — errors vs scale, `S_all_DC` + `S_good_CC` |
//! | `fig8b` | Figure 8b — errors vs scale, `S_all_DC` + `S_bad_CC` |
//! | `fig9` | Figure 9 — per-CC relative error distribution (40×, bad CCs) |
//! | `fig10` | Figure 10 — good/bad DC × good/bad CC error grid (10×) |
//! | `fig11a` | Figure 11a — runtime baseline vs hybrid, phase split |
//! | `fig11b` | Figure 11b — hybrid runtime 10×–160×, good vs bad CCs |
//! | `fig12` | Figure 12 — runtime vs number of `R2` columns |
//! | `fig13` | Figure 13 — runtime breakdown at 500–900 CCs |
//! | `ablate` | DESIGN.md ablations (parallel/exact coloring, B&B budget) |

pub mod ablate;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig8;
pub mod fig9;
pub mod table1;

use crate::harness::ExperimentOpts;

/// All experiment ids, in run order.
pub const ALL: [&str; 10] = [
    "table1", "fig8a", "fig8b", "fig9", "fig10", "fig11a", "fig11b", "fig12", "fig13", "ablate",
];

/// Runs one experiment by id.
pub fn run(id: &str, opts: &ExperimentOpts) -> Result<(), String> {
    match id {
        "table1" => table1::run(opts),
        "fig8a" => fig8::run(opts, cextend_census::CcFamily::Good, "fig8a"),
        "fig8b" => fig8::run(opts, cextend_census::CcFamily::Bad, "fig8b"),
        "fig9" => fig9::run(opts),
        "fig10" => fig10::run(opts),
        "fig11a" => fig11::run_11a(opts),
        "fig11b" => fig11::run_11b(opts),
        "fig12" => fig12::run(opts),
        "fig13" => fig13::run(opts),
        "ablate" => ablate::run(opts),
        other => return Err(format!("unknown experiment `{other}`; known: {ALL:?}")),
    }
    Ok(())
}
