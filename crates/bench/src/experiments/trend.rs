//! `perf-trend`: the per-record wall-time trend over the accumulated
//! `BENCH_history.jsonl` lines.
//!
//! `perf` appends one line per sweep (see `super::perf::append_history`);
//! this experiment reads those lines back and renders the trajectory the
//! single overwritten `BENCH_perf.json` snapshot cannot show: one row per
//! `workload/family/step` record, one column per history line (oldest
//! first, capped at the most recent [`MAX_COLUMNS`]), each cell the
//! record's wall time plus its ratio to the previous line. A markdown
//! rendering is written to `<out>/perf_trend.md` when `--out` is set —
//! the ROADMAP's "benchmark dashboard" artifact.
//!
//! Lines whose run parameters (`scale_factor`, `n_ccs`, `runs`, `seed`,
//! `conflict` builder) differ from the newest line's are still shown but
//! flagged with `*` in the column header: their walls are not
//! apples-to-apples, exactly the comparability rule `perf-check` enforces.
//!
//! `"kind":"scale"` lines (appended by `experiments -- scale`) live in a
//! different parameter space than the perf sweep — showing them here would
//! make the newest scale line the comparability anchor and star every perf
//! column — so they are skipped with a printed count.

use super::{conflict_label, json_field as field};
use crate::harness::{fmt_s, ExperimentOpts, Table};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Most recent history lines shown (older lines are summarized away).
pub const MAX_COLUMNS: usize = 6;

/// One parsed `BENCH_history.jsonl` line.
#[derive(Debug)]
struct HistoryLine {
    label: String,
    stamp: String,
    /// Rendered run parameters, for comparability flagging.
    params: String,
    /// The `spec:<path>` selection that extended the sweep, when one did.
    /// Shown in the column header but **excluded** from `params`: a label
    /// difference must not star the column as a parameter mismatch (the
    /// spec's records simply appear/disappear like any workload's).
    workload: Option<String>,
    /// `workload/family/step` → wall seconds.
    walls: BTreeMap<String, f64>,
}

fn parse_line(line: &str, lineno: usize) -> Result<HistoryLine, String> {
    let doc = serde_json::from_str(line)
        .map_err(|e| format!("history line {lineno} is not valid JSON: {e}"))?;
    let serde::Value::Object(top) = doc else {
        return Err(format!("history line {lineno} is not a JSON object"));
    };
    let text = |name: &str| -> String {
        match field(&top, name) {
            Some(serde::Value::Str(s)) => s,
            other => format!("{other:?}"),
        }
    };
    let num = |name: &str| -> String {
        match field(&top, name) {
            Some(serde::Value::Float(x)) => x.to_string(),
            Some(serde::Value::Int(n)) => n.to_string(),
            other => format!("{other:?}"),
        }
    };
    // The conflict-builder and DC-planner labels count as run parameters:
    // naive walls are not comparable to indexed ones, nor static-planner
    // walls to cost-planner ones (shared defaulting rules:
    // `super::conflict_label` / `super::dcplan_label`).
    let conflict = conflict_label(&top);
    let dcplan = super::dcplan_label(&top);
    let params = format!(
        "scale_factor={} n_ccs={} runs={} seed={} conflict={} dcplan={}",
        num("scale_factor"),
        num("n_ccs"),
        num("runs"),
        num("seed"),
        conflict,
        dcplan
    );
    let Some(serde::Value::Object(walls_obj)) = field(&top, "walls") else {
        return Err(format!("history line {lineno} has no `walls` object"));
    };
    let mut walls = BTreeMap::new();
    for (key, v) in walls_obj {
        let wall = match v {
            serde::Value::Float(x) => x,
            serde::Value::Int(n) => n as f64,
            other => return Err(format!("history line {lineno}: wall `{key}` is {other:?}")),
        };
        walls.insert(key, wall);
    }
    let workload = match field(&top, "workload") {
        Some(serde::Value::Str(s)) => Some(s),
        _ => None,
    };
    Ok(HistoryLine {
        label: text("label"),
        stamp: text("stamp"),
        params,
        workload,
        walls,
    })
}

/// `true` for `"kind":"scale"` lines — `experiments -- scale` appends
/// those, and their walls/parameters live in a different space than the
/// perf sweep's (unparsable lines are *not* scale lines; `parse_line`
/// reports them properly).
fn is_scale_line(line: &str) -> bool {
    match serde_json::from_str(line) {
        Ok(serde::Value::Object(top)) => {
            matches!(field(&top, "kind"), Some(serde::Value::Str(k)) if k == "scale")
        }
        _ => false,
    }
}

/// Reads the perf history lines, returning `(lines, scale_lines_skipped)`.
fn read_history(path: &Path) -> Result<(Vec<HistoryLine>, usize), String> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "cannot read history `{}`: {e} — run `experiments -- perf` first",
            path.display()
        )
    })?;
    let mut scale_skipped = 0;
    let lines: Vec<HistoryLine> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .filter(|(_, l)| {
            let scale = is_scale_line(l);
            scale_skipped += usize::from(scale);
            !scale
        })
        .map(|(i, l)| parse_line(l, i + 1))
        .collect::<Result<_, _>>()?;
    if lines.is_empty() {
        return Err(format!(
            "history `{}` has no perf lines — run `experiments -- perf` first",
            path.display()
        ));
    }
    Ok((lines, scale_skipped))
}

/// The trend matrix: record keys × (shown) history lines, cells rendered
/// as `wall (×ratio-to-previous-shown-line)`.
fn render_rows(lines: &[HistoryLine]) -> (Vec<String>, Vec<Vec<String>>) {
    let newest_params = &lines[lines.len() - 1].params;
    let shown = &lines[lines.len().saturating_sub(MAX_COLUMNS)..];
    let headers: Vec<String> = std::iter::once("Record".to_owned())
        .chain(shown.iter().map(|l| {
            format!(
                "{}@{}{}{}",
                l.label,
                l.stamp,
                l.workload
                    .as_ref()
                    .map(|w| format!(" ({w})"))
                    .unwrap_or_default(),
                if l.params == *newest_params { "" } else { "*" }
            )
        }))
        .collect();
    let mut keys: Vec<&String> = Vec::new();
    for l in shown {
        for k in l.walls.keys() {
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
    }
    keys.sort();
    let rows = keys
        .iter()
        .map(|&key| {
            let mut row = vec![key.clone()];
            let mut prev: Option<f64> = None;
            for l in shown {
                row.push(match l.walls.get(key) {
                    None => "-".to_owned(),
                    Some(&w) => {
                        let cell = match prev {
                            Some(p) if p > 0.0 => format!("{} (x{:.2})", fmt_s(w), w / p),
                            _ => fmt_s(w),
                        };
                        prev = Some(w);
                        cell
                    }
                });
            }
            row
        })
        .collect();
    (headers, rows)
}

/// Records whose wall time rose over the **last ≥2 consecutive deltas**
/// between comparable shown lines — the "creeping regression" signal a
/// single 3× `perf-check` bound misses. Only lines with the newest line's
/// parameters participate (a starred column's wall says nothing about a
/// trend); lines missing the record are skipped, not streak-breaking.
/// Each entry renders as `key (+P% over N lines)`.
fn rising_records(lines: &[HistoryLine]) -> Vec<String> {
    let newest_params = &lines[lines.len() - 1].params;
    let shown = &lines[lines.len().saturating_sub(MAX_COLUMNS)..];
    let comparable: Vec<&HistoryLine> = shown
        .iter()
        .filter(|l| &l.params == newest_params)
        .collect();
    let mut keys: Vec<&String> = Vec::new();
    for l in &comparable {
        for k in l.walls.keys() {
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
    }
    keys.sort();
    let mut rising = Vec::new();
    for key in keys {
        let values: Vec<f64> = comparable
            .iter()
            .filter_map(|l| l.walls.get(key))
            .copied()
            .collect();
        // Trailing streak of strictly upward deltas.
        let mut streak = 0;
        for w in values.windows(2).rev() {
            if w[1] > w[0] {
                streak += 1;
            } else {
                break;
            }
        }
        if streak >= 2 {
            let first = values[values.len() - 1 - streak];
            let last = values[values.len() - 1];
            rising.push(format!(
                "{key} (+{:.0}% over {streak} deltas)",
                (last / first - 1.0) * 100.0
            ));
        }
    }
    rising
}

fn markdown(
    title: &str,
    headers: &[String],
    rows: &[Vec<String>],
    skipped: usize,
    rising: &[String],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n\n"));
    if skipped > 0 {
        out.push_str(&format!(
            "_{skipped} older history line(s) not shown (cap: {MAX_COLUMNS} columns)._\n\n"
        ));
    }
    if !rising.is_empty() {
        // One line per warning so a CI job summary can surface it verbatim.
        out.push_str(&format!(
            "**⚠ rising walls ({} record(s) up for ≥2 consecutive comparable lines):** {}\n\n",
            rising.len(),
            rising.join(", ")
        ));
    }
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!(
        "|{}\n",
        headers.iter().map(|_| "---|").collect::<String>()
    ));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out.push_str(
        "\nCells are per-record wall seconds; `(xR)` is the ratio to the previous shown \
         line. A `*` column ran with different parameters than the newest line, so its \
         walls are not directly comparable.\n",
    );
    out
}

/// Runs `perf-trend`: reads the history at `--history` (default
/// `BENCH_history.jsonl` in the working directory — the committed
/// trajectory), prints the trend table and writes `perf_trend.md` into
/// `--out` when set.
pub fn run(opts: &ExperimentOpts) -> Result<(), String> {
    let path = opts
        .history
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_history.jsonl"));
    let (lines, scale_skipped) = read_history(&path)?;
    if scale_skipped > 0 {
        println!(
            "[{scale_skipped} \"kind\":\"scale\" line(s) skipped — paper-scale records are \
             compared by perf-check, not trended here]"
        );
    }
    let (headers, rows) = render_rows(&lines);
    let rising = rising_records(&lines);
    let skipped = lines.len().saturating_sub(MAX_COLUMNS);
    let title = format!(
        "Perf trend — {} history line(s) from {}",
        lines.len(),
        path.display()
    );
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new("perf-trend", &title, &header_refs);
    for row in &rows {
        table.push(row.clone());
    }
    println!("{}", table.render());
    if skipped > 0 {
        println!("[{skipped} older history line(s) not shown; cap {MAX_COLUMNS}]");
    }
    if rising.is_empty() {
        println!("[perf-trend: no record rising for >=2 consecutive comparable lines]");
    } else {
        // Grep-stable marker line; CI copies it into the job summary.
        println!(
            "[perf-trend warning: {} record(s) rising for >=2 consecutive lines: {}]",
            rising.len(),
            rising.join(", ")
        );
    }
    if let Some(dir) = &opts.out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("create output dir: {e}"))?;
        let md_path = dir.join("perf_trend.md");
        std::fs::write(
            &md_path,
            markdown(&title, &headers, &rows, skipped, &rising),
        )
        .map_err(|e| format!("write {}: {e}", md_path.display()))?;
        println!("[markdown trend written to {}]\n", md_path.display());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(label: &str, scale: f64, walls: &[(&str, f64)]) -> String {
        let walls: Vec<String> = walls.iter().map(|(k, w)| format!(r#""{k}":{w}"#)).collect();
        format!(
            r#"{{"label":"{label}","stamp":"s","schema_version":2,"scale_factor":{scale},"n_ccs":15,"runs":1,"seed":7,"walls":{{{}}}}}"#,
            walls.join(",")
        )
    }

    fn write_history(name: &str, lines: &[String]) -> PathBuf {
        let dir = std::env::temp_dir().join("cextend-perf-trend");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        path
    }

    #[test]
    fn trend_renders_ratios_and_new_records() {
        let path = write_history(
            "ok.jsonl",
            &[
                line("a", 0.005, &[("census/good/s", 0.1)]),
                line(
                    "b",
                    0.005,
                    &[("census/good/s", 0.2), ("dcdense/good/s", 0.05)],
                ),
            ],
        );
        let (lines, _) = read_history(&path).unwrap();
        let (headers, rows) = render_rows(&lines);
        assert_eq!(headers.len(), 3);
        assert!(!headers[1].ends_with('*'), "same params: no flag");
        assert_eq!(rows.len(), 2);
        let census = rows.iter().find(|r| r[0] == "census/good/s").unwrap();
        assert!(census[2].contains("x2.00"), "{census:?}");
        let fresh = rows.iter().find(|r| r[0] == "dcdense/good/s").unwrap();
        assert_eq!(fresh[1], "-");
        assert!(!fresh[2].contains('x'), "first value has no ratio");
    }

    #[test]
    fn incomparable_lines_are_flagged() {
        let path = write_history(
            "flag.jsonl",
            &[
                line("old", 0.02, &[("census/good/s", 0.4)]),
                line("new", 0.005, &[("census/good/s", 0.1)]),
            ],
        );
        let (lines, _) = read_history(&path).unwrap();
        let (headers, _) = render_rows(&lines);
        assert!(headers[1].ends_with('*'), "{headers:?}");
        assert!(!headers[2].ends_with('*'));
    }

    #[test]
    fn naive_conflict_lines_are_flagged() {
        // Same data parameters, different conflict builder: walls differ
        // ~17x on DC-dense records, so the older line must be starred. An
        // absent field (pre-PR5 line) counts as indexed.
        let naive = line("old", 0.005, &[("dcdense/good/s", 1.7)])
            .replace(r#""runs":1,"#, r#""runs":1,"conflict":"naive","#);
        let path = write_history(
            "flag-conflict.jsonl",
            &[naive, line("new", 0.005, &[("dcdense/good/s", 0.1)])],
        );
        let (lines, _) = read_history(&path).unwrap();
        let (headers, _) = render_rows(&lines);
        assert!(headers[1].ends_with('*'), "{headers:?}");
        assert!(!headers[2].ends_with('*'));
    }

    #[test]
    fn spec_workload_label_passes_through_unflagged() {
        // A sweep extended with `--workload spec:<path>` stamps the label
        // into its history line; the trend shows it in the header without
        // treating it as a run-parameter difference.
        let with_label = line("a", 0.005, &[("spec:supply/good/s", 0.1)]).replace(
            r#""runs":1,"#,
            r#""runs":1,"workload":"spec:specs/supply.spec","#,
        );
        let path = write_history(
            "speclabel.jsonl",
            &[with_label, line("b", 0.005, &[("spec:supply/good/s", 0.1)])],
        );
        let (lines, _) = read_history(&path).unwrap();
        let (headers, _) = render_rows(&lines);
        assert!(
            headers[1].contains("(spec:specs/supply.spec)"),
            "{headers:?}"
        );
        assert!(
            !headers[1].ends_with('*'),
            "spec label must not flag comparability: {headers:?}"
        );
        assert!(!headers[2].ends_with('*'), "{headers:?}");
    }

    #[test]
    fn column_cap_keeps_newest_lines() {
        let many: Vec<String> = (0..10)
            .map(|i| line(&format!("l{i}"), 0.005, &[("census/good/s", 0.1)]))
            .collect();
        let path = write_history("cap.jsonl", &many);
        let (lines, _) = read_history(&path).unwrap();
        let (headers, _) = render_rows(&lines);
        assert_eq!(headers.len(), MAX_COLUMNS + 1);
        assert!(headers[MAX_COLUMNS].starts_with("l9@"));
    }

    #[test]
    fn scale_lines_are_skipped_not_anchored() {
        // A scale line is the *newest* entry; if it weren't skipped it
        // would become the comparability anchor and star every perf
        // column. Its walls keys (bare workload names) must not appear as
        // records either.
        let scale_line = r#"{"label":"x","stamp":"s","schema_version":2,"kind":"scale","scale_factor":1.0,"n_ccs":150,"runs":1,"seed":7,"conflict":"indexed","walls":{"census":120.0},"peak_rss_mb":{"census":4096.0}}"#;
        let path = write_history(
            "scale-skip.jsonl",
            &[
                line("a", 0.005, &[("census/good/s", 0.1)]),
                line("b", 0.005, &[("census/good/s", 0.1)]),
                scale_line.to_owned(),
            ],
        );
        let (lines, scale_skipped) = read_history(&path).unwrap();
        assert_eq!(scale_skipped, 1);
        assert_eq!(lines.len(), 2);
        let (headers, rows) = render_rows(&lines);
        assert!(
            headers.iter().all(|h| !h.ends_with('*')),
            "scale line must not anchor comparability: {headers:?}"
        );
        assert!(rows.iter().all(|r| r[0] != "census"), "{rows:?}");
    }

    #[test]
    fn missing_or_empty_history_errors() {
        let err = read_history(Path::new("/nonexistent/h.jsonl")).unwrap_err();
        assert!(err.contains("run `experiments -- perf` first"), "{err}");
        let path = write_history("empty.jsonl", &[String::new()]);
        assert!(read_history(&path).is_err());
    }

    #[test]
    fn markdown_contains_table_and_caveat() {
        let path = write_history("md.jsonl", &[line("a", 0.005, &[("census/good/s", 0.1)])]);
        let (lines, _) = read_history(&path).unwrap();
        let (headers, rows) = render_rows(&lines);
        let md = markdown("t", &headers, &rows, 2, &[]);
        assert!(md.contains("| Record |"));
        assert!(md.contains("census/good/s"));
        assert!(md.contains("2 older history line(s)"));
        assert!(!md.contains("rising walls"));
        let md = markdown(
            "t",
            &headers,
            &rows,
            0,
            &["census/good/s (+40%)".to_owned()],
        );
        assert!(md.contains("rising walls"), "{md}");
        assert!(md.contains("census/good/s (+40%)"), "{md}");
    }

    #[test]
    fn rising_records_flags_two_consecutive_upward_deltas() {
        let path = write_history(
            "rising.jsonl",
            &[
                line("a", 0.005, &[("census/good/s", 0.10), ("flat/good/s", 0.2)]),
                line("b", 0.005, &[("census/good/s", 0.12), ("flat/good/s", 0.2)]),
                line("c", 0.005, &[("census/good/s", 0.15), ("flat/good/s", 0.2)]),
            ],
        );
        let (lines, _) = read_history(&path).unwrap();
        let rising = rising_records(&lines);
        assert_eq!(rising.len(), 1, "{rising:?}");
        assert!(rising[0].starts_with("census/good/s (+50%"), "{rising:?}");
    }

    #[test]
    fn rising_ignores_broken_streaks_and_incomparable_lines() {
        // A dip before the last rise: only one trailing upward delta.
        let path = write_history(
            "rising-dip.jsonl",
            &[
                line("a", 0.005, &[("census/good/s", 0.10)]),
                line("b", 0.005, &[("census/good/s", 0.20)]),
                line("c", 0.005, &[("census/good/s", 0.15)]),
                line("d", 0.005, &[("census/good/s", 0.18)]),
            ],
        );
        let (lines, _) = read_history(&path).unwrap();
        assert!(rising_records(&lines).is_empty());
        // Rising, but across lines with different parameters: the starred
        // lines drop out of the streak entirely.
        let path = write_history(
            "rising-params.jsonl",
            &[
                line("a", 0.02, &[("census/good/s", 0.10)]),
                line("b", 0.02, &[("census/good/s", 0.12)]),
                line("c", 0.005, &[("census/good/s", 0.15)]),
            ],
        );
        let (lines, _) = read_history(&path).unwrap();
        assert!(rising_records(&lines).is_empty());
    }
}
