//! Figures 11a and 11b: runtime comparisons with phase breakdown.
//!
//! 11a — baseline vs hybrid with `S_all_DC` + `S_bad_CC` at scales 10× and
//! 40×. Paper shape: the baseline spends nearly everything in Phase I (its
//! Phase II is a random assignment); the hybrid's total is far smaller (17×
//! on average in the paper) but its Phase II is a visible share.
//!
//! 11b — hybrid only, `S_good_DC`, scales 10×–160×, good vs bad CCs. Paper
//! shape: near-linear growth; the bad family costs more (the ILP runs).

use crate::harness::{fmt_s, run_averaged, ExperimentOpts, Table};
use cextend_core::SolverConfig;
use cextend_workloads::{CcFamily, DcSet};

/// Runs Figure 11a.
pub fn run_11a(opts: &ExperimentOpts) {
    let dcs = opts.dcs(DcSet::All);
    let mut table = Table::new(
        "fig11a",
        &format!(
            "Runtime baseline vs hybrid — all DCs, bad CCs ({}; shaded area = phase II)",
            opts.workload
        ),
        &["Scale", "Pipeline", "phase I", "phase II", "total"],
    );
    for label in [10u32, 40] {
        let data = opts.dataset(label, None, label as u64);
        let ccs = opts.ccs(CcFamily::Bad, opts.n_ccs, &data, label as u64);
        for (name, config) in [
            ("baseline", SolverConfig::baseline()),
            ("baseline+marg", SolverConfig::baseline_with_marginals()),
            ("hybrid", SolverConfig::hybrid()),
        ] {
            let r = run_averaged(&data, &ccs, &dcs, &config, opts.runs);
            table.push(vec![
                format!("{label}x"),
                name.to_owned(),
                fmt_s(r.phase1_s),
                fmt_s(r.phase2_s),
                fmt_s(r.wall_s),
            ]);
        }
    }
    table.emit(opts);
}

/// Runs Figure 11b.
pub fn run_11b(opts: &ExperimentOpts) {
    let dcs = opts.dcs(DcSet::Good);
    let mut table = Table::new(
        "fig11b",
        &format!(
            "Hybrid runtime vs scale — good DCs, good vs bad CCs ({})",
            opts.workload
        ),
        &["Scale", "CCs", "phase I", "phase II", "total"],
    );
    for label in [10u32, 40, 80, 160] {
        // The largest scales only run when explicitly scaled down or when
        // the user accepts paper-scale runtimes.
        if label > 40 && opts.scale_factor > 0.25 {
            continue;
        }
        let data = opts.dataset(label, None, label as u64);
        for family in [CcFamily::Good, CcFamily::Bad] {
            let ccs = opts.ccs(family, opts.n_ccs, &data, label as u64);
            let r = run_averaged(&data, &ccs, &dcs, &SolverConfig::hybrid(), opts.runs);
            table.push(vec![
                format!("{label}x"),
                format!("{family:?}"),
                fmt_s(r.phase1_s),
                fmt_s(r.phase2_s),
                fmt_s(r.wall_s),
            ]);
        }
    }
    table.emit(opts);
}
