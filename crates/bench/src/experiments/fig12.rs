//! Figure 12: hybrid runtime at scale 10× with `S_good_DC` + `S_good_CC` as
//! the number of non-key `Housing` columns grows 2 → 10.
//!
//! Paper shape: total runtime grows several-fold (5.17 → 38.66 minutes)
//! and the growth is dominated by coloring — more `B` columns mean finer
//! `V_join` partitions. Reproducing this requires completing *all* `R2`
//! columns in Phase I (`complete_all_r2_columns`), since the paper
//! partitions by every `B` column.

use crate::harness::{fmt_s, run_averaged, ExperimentOpts, Table};
use cextend_census::{s_good_dc, CcFamily};
use cextend_core::SolverConfig;

/// Runs Figure 12.
pub fn run(opts: &ExperimentOpts) {
    let dcs = s_good_dc();
    let mut table = Table::new(
        "fig12",
        "Hybrid runtime vs number of R2 columns — scale 10x, S_good_DC, S_good_CC",
        &[
            "R2 cols",
            "recursion",
            "coloring",
            "phase I",
            "phase II",
            "total",
        ],
    );
    for n_cols in [2usize, 4, 6, 8, 10] {
        let data = opts.dataset(10, n_cols, 10);
        let ccs = opts.ccs(CcFamily::Good, opts.n_ccs, &data, 10);
        let config = SolverConfig {
            complete_all_r2_columns: true,
            ..SolverConfig::hybrid()
        };
        let r = run_averaged(&data, &ccs, &dcs, &config, opts.runs);
        table.push(vec![
            n_cols.to_string(),
            fmt_s(r.recursion_s),
            fmt_s(r.coloring_s),
            fmt_s(r.phase1_s),
            fmt_s(r.phase2_s),
            fmt_s(r.wall_s),
        ]);
    }
    table.emit(opts);
}
