//! Figure 12: hybrid runtime at scale 10× with the good DC and CC sets as
//! the number of non-key `R2` columns grows across the workload's
//! supported progression (Census: 2 → 10; Retail: 2 → 6).
//!
//! Paper shape (Census): total runtime grows several-fold (5.17 → 38.66
//! minutes) and the growth is dominated by coloring — more `B` columns
//! mean finer `V_join` partitions. Reproducing this requires completing
//! *all* `R2` columns in Phase I (`complete_all_r2_columns`), since the
//! paper partitions by every `B` column.

use crate::harness::{fmt_s, run_averaged, ExperimentOpts, Table};
use cextend_core::SolverConfig;
use cextend_workloads::{CcFamily, DcSet};

/// Runs Figure 12.
pub fn run(opts: &ExperimentOpts) {
    let dcs = opts.dcs(DcSet::Good);
    let meta = opts.workload().meta();
    let mut table = Table::new(
        "fig12",
        &format!(
            "Hybrid runtime vs number of R2 columns — scale 10x, good DCs, good CCs ({})",
            meta.name
        ),
        &[
            "R2 cols",
            "recursion",
            "coloring",
            "phase I",
            "phase II",
            "total",
        ],
    )
    .with_scale_label(10);
    for &n_cols in meta.r2_col_counts {
        let data = opts.dataset(10, Some(n_cols), 10);
        let ccs = opts.ccs(CcFamily::Good, opts.n_ccs, &data, 10);
        let config = SolverConfig {
            complete_all_r2_columns: true,
            ..SolverConfig::hybrid()
        };
        let r = run_averaged(&data, &ccs, &dcs, &config, opts.runs);
        table.push(vec![
            n_cols.to_string(),
            fmt_s(r.recursion_s),
            fmt_s(r.coloring_s),
            fmt_s(r.phase1_s),
            fmt_s(r.phase2_s),
            fmt_s(r.wall_s),
        ]);
    }
    table.emit(opts);
}
