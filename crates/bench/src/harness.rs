//! Shared experiment machinery: workload-generic dataset/pipeline runners,
//! result records, table printing and JSON snapshots.
//!
//! Nothing here names a concrete schema: the workload (selected by
//! [`ExperimentOpts::workload`]) owns its generator knobs, CC families and
//! DC sets, and the runners consume the generic [`WorkloadData`].

use cextend_constraints::{CardinalityConstraint, DenialConstraint};
use cextend_core::metrics::{evaluate, median, EvaluationReport};
use cextend_core::snowflake::{solve_snowflake, SnowflakeStep};
use cextend_core::{
    solve, ConflictBuilderKind, DcPlannerKind, SchedulerMode, SolveStats, SolverConfig,
};
use cextend_obs::narrate;
use cextend_workloads::{
    workload_by_name, CcFamily, DcSet, Workload, WorkloadData, WorkloadParams,
};
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Build/environment metadata stamped into `BENCH_perf.json`, the `scale`
/// section and `trace.json` exports, so every committed artifact records
/// the build and worker configuration that produced it. None of these
/// fields participate in `perf-check`'s comparability gate (which reads a
/// fixed parameter list) — they are provenance, not parameters.
#[derive(Clone, Debug, Serialize)]
pub struct RunMeta {
    /// `git rev-parse --short HEAD`, when a git binary and repository are
    /// available (absent otherwise — e.g. release tarballs).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub git_commit: Option<String>,
    /// Worker-pool width an unbounded batch would run at
    /// ([`cextend_sched::pool_width`]): the `CEXTEND_SCHED_WORKERS`
    /// override when set, else detected hardware parallelism.
    pub pool_width: usize,
    /// The raw `CEXTEND_SCHED_WORKERS` value, when set (distinguishes a
    /// pinned pool from a detected one of the same width).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub sched_workers: Option<String>,
}

/// Captures [`RunMeta`] from the environment. Tolerates every failure
/// mode: no git binary, not a repository, unset variables.
pub fn run_meta() -> RunMeta {
    let git_commit = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        .filter(|s| !s.is_empty());
    RunMeta {
        git_commit,
        pool_width: cextend_sched::pool_width(usize::MAX),
        sched_workers: std::env::var("CEXTEND_SCHED_WORKERS").ok(),
    }
}

impl RunMeta {
    /// The metadata as key/value pairs for
    /// [`cextend_obs::Trace::to_chrome_json`]'s `otherData` section.
    pub fn as_pairs(&self) -> Vec<(String, String)> {
        let mut pairs = Vec::new();
        if let Some(commit) = &self.git_commit {
            pairs.push(("git_commit".to_owned(), commit.clone()));
        }
        pairs.push(("pool_width".to_owned(), self.pool_width.to_string()));
        if let Some(w) = &self.sched_workers {
            pairs.push(("sched_workers".to_owned(), w.clone()));
        }
        pairs
    }
}

/// Global experiment options (CLI-controlled).
#[derive(Clone, Debug)]
pub struct ExperimentOpts {
    /// Which registered workload to drive (`census`, `retail`, `supply`).
    pub workload: String,
    /// Multiplier applied to the workload's scale labels: the paper's `k×`
    /// becomes `k × scale_factor` here. The default 0.02 keeps every
    /// experiment laptop-sized; `--paper-scale` sets it to 1.0.
    pub scale_factor: f64,
    /// CC-set size (the paper uses 1001).
    pub n_ccs: usize,
    /// Independent runs to average over (the paper uses 3).
    pub runs: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Workload-owned generator knobs (e.g. census `areas`, retail
    /// `regions`); names are published by `WorkloadMeta::knobs`.
    pub knobs: BTreeMap<String, i64>,
    /// Where to write JSON snapshots (`None` disables).
    pub out_dir: Option<PathBuf>,
    /// Committed perf baseline `perf-check` compares against (`None` means
    /// `BENCH_perf.json` in the working directory).
    pub baseline: Option<PathBuf>,
    /// Step scheduler the solver runs chains with (`--scheduler`).
    pub scheduler: SchedulerMode,
    /// Conflict-hypergraph builder the solver uses (`--conflict`); output
    /// is bit-identical across kinds, only build cost differs — `naive` is
    /// the measured baseline for the indexed fast path.
    pub conflict: ConflictBuilderKind,
    /// DC planner for the indexed conflict builder (`--dcplan`); output is
    /// bit-identical across kinds — `static` is the retained oracle the
    /// cost planner is measured against.
    pub dcplan: DcPlannerKind,
    /// Shard Phase I's bulk work across the `CEXTEND_SCHED_WORKERS` pool
    /// (`--phase1 parallel|serial`); output is bit-identical either way.
    pub parallel_phase1: bool,
    /// `BENCH_history.jsonl` path `perf-trend` reads (`--history`; `None`
    /// means the file in the working directory, i.e. the committed one).
    pub history: Option<PathBuf>,
    /// Build label (git-describe-ish) stamped into `BENCH_history.jsonl`
    /// records (`--label`).
    pub label: String,
    /// Timestamp stamp for `BENCH_history.jsonl` records (`--stamp`) — the
    /// harness never reads clocks itself, so runs stay reproducible.
    pub stamp: String,
    /// Iteration count for generative experiments (`fuzz-spec`'s
    /// `--iters`).
    pub iters: usize,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        ExperimentOpts {
            workload: "census".to_owned(),
            scale_factor: 0.02,
            n_ccs: 150,
            runs: 3,
            seed: 7,
            knobs: BTreeMap::new(),
            out_dir: None,
            baseline: None,
            scheduler: SchedulerMode::Serial,
            conflict: ConflictBuilderKind::Indexed,
            dcplan: DcPlannerKind::Cost,
            parallel_phase1: false,
            history: None,
            label: "dev".to_owned(),
            stamp: "unstamped".to_owned(),
            iters: 25,
        }
    }
}

impl ExperimentOpts {
    /// Resolves the selected workload (panics on unknown names; the CLI
    /// validates user input before building opts). `spec:<path>` selects a
    /// spec-file workload, parsed and checked on every resolution.
    pub fn workload(&self) -> Box<dyn Workload> {
        if let Some(path) = self.workload.strip_prefix("spec:") {
            let loaded = cextend_spec::load_workload(std::path::Path::new(path))
                .unwrap_or_else(|e| panic!("{e}"));
            return Box::new(loaded);
        }
        workload_by_name(&self.workload)
            .unwrap_or_else(|| panic!("unknown workload `{}`", self.workload))
    }

    /// Generator parameters at the paper's scale label `k` (scaled by
    /// `scale_factor`), with the CLI knobs applied.
    pub fn params(&self, label: u32, r2_cols: Option<usize>, seed_offset: u64) -> WorkloadParams {
        WorkloadParams {
            scale: f64::from(label) * self.scale_factor,
            seed: self.seed + seed_offset,
            r2_cols,
            knobs: self.knobs.clone(),
        }
    }

    /// Generates data at scale label `k`. `r2_cols` of `None` uses the
    /// workload's default non-key `R2` column count.
    pub fn dataset(&self, label: u32, r2_cols: Option<usize>, seed_offset: u64) -> WorkloadData {
        self.workload()
            .generate(&self.params(label, r2_cols, seed_offset))
    }

    /// CC set of the given family for a dataset.
    pub fn ccs(
        &self,
        family: CcFamily,
        n: usize,
        data: &WorkloadData,
        seed_offset: u64,
    ) -> Vec<CardinalityConstraint> {
        self.workload()
            .ccs(family, n, data, self.seed + seed_offset)
    }

    /// DC set of the given kind for the selected workload.
    pub fn dcs(&self, set: DcSet) -> Vec<DenialConstraint> {
        self.workload().dcs(set)
    }

    /// The hybrid solver configuration with the CLI-selected step
    /// scheduler and conflict builder applied.
    pub fn solver_config(&self) -> SolverConfig {
        SolverConfig::hybrid()
            .with_scheduler(self.scheduler)
            .with_conflict(self.conflict)
            .with_dc_planner(self.dcplan)
            .with_parallel_phase1(self.parallel_phase1)
    }

    /// The fully resolved knob map of the selected workload: every
    /// published knob at its default, overlaid with the CLI-provided
    /// values. Stamped into snapshots so they are reproducible from their
    /// own metadata.
    pub fn resolved_knobs(&self) -> BTreeMap<String, i64> {
        let mut knobs: BTreeMap<String, i64> = self
            .workload()
            .meta()
            .knobs
            .iter()
            .map(|&(name, default)| (name.to_owned(), default))
            .collect();
        for (name, &value) in &self.knobs {
            if knobs.contains_key(name) {
                knobs.insert(name.clone(), value);
            }
        }
        knobs
    }
}

/// The outcome of one pipeline run.
#[derive(Clone, Debug, Serialize)]
pub struct RunResult {
    /// Median relative CC error.
    pub cc_median: f64,
    /// Mean relative CC error.
    pub cc_mean: f64,
    /// Fraction of tuples violating some DC.
    pub dc_error: f64,
    /// Whether `R̂1 ⋈ R̂2` equals the view.
    pub join_recovered: bool,
    /// Total wall-clock seconds.
    pub wall_s: f64,
    /// Phase I seconds.
    pub phase1_s: f64,
    /// Phase II seconds.
    pub phase2_s: f64,
    /// Pairwise-comparison seconds (Figure 13 row 1).
    pub pairwise_s: f64,
    /// Algorithm 2 recursion seconds (Figure 13 row 2) — the `hasse_s`
    /// sub-stage of the Phase 1 breakdown.
    pub recursion_s: f64,
    /// ILP build+solve seconds (Figure 13 row 3).
    pub ilp_s: f64,
    /// ILP greedy-fill seconds (part of the Phase 1 breakdown).
    pub fill_s: f64,
    /// Local-search repair seconds (Phase 1 breakdown).
    pub repair_s: f64,
    /// Leftover-completion seconds (Phase 1 breakdown; Algorithm 2 lines
    /// 14–17).
    pub leftovers_s: f64,
    /// Baseline random-completion seconds (Phase 1 breakdown).
    pub random_s: f64,
    /// Conflict build + coloring seconds (Figure 13 row 4).
    pub coloring_s: f64,
    /// Conflict-hypergraph build seconds (Phase II sub-stage).
    pub conflict_s: f64,
    /// List-coloring + assignment-apply seconds (Phase II sub-stage; the
    /// pure-coloring slice of `coloring_s`).
    pub color_s: f64,
    /// Invalid-tuple placement seconds (Phase II sub-stage).
    pub invalid_s: f64,
    /// Fresh `R2` tuples minted.
    pub new_r2_tuples: usize,
    /// Per-CC relative errors (for Figure 9 distributions).
    #[serde(skip_serializing_if = "Vec::is_empty")]
    pub cc_errors: Vec<f64>,
}

impl RunResult {
    fn from(report: EvaluationReport, stats: SolveStats, wall: Duration) -> RunResult {
        let t = stats.timings;
        RunResult {
            cc_median: report.cc_median,
            cc_mean: report.cc_mean,
            dc_error: report.dc_error,
            join_recovered: report.join_recovered,
            wall_s: wall.as_secs_f64(),
            phase1_s: t.phase1().as_secs_f64(),
            phase2_s: t.phase2().as_secs_f64(),
            pairwise_s: t.pairwise_comparison.as_secs_f64(),
            recursion_s: t.recursion.as_secs_f64(),
            ilp_s: (t.ilp_build + t.ilp_solve).as_secs_f64(),
            fill_s: t.fill.as_secs_f64(),
            repair_s: t.repair.as_secs_f64(),
            leftovers_s: t.leftovers.as_secs_f64(),
            random_s: t.random.as_secs_f64(),
            coloring_s: (t.conflict_build + t.coloring + t.invalid_handling).as_secs_f64(),
            conflict_s: t.conflict_build.as_secs_f64(),
            color_s: t.coloring.as_secs_f64(),
            invalid_s: t.invalid_handling.as_secs_f64(),
            new_r2_tuples: stats.counters.new_r2_tuples,
            cc_errors: report.cc_errors,
        }
    }
}

/// Runs one pipeline once.
pub fn run_once(
    data: &WorkloadData,
    ccs: &[CardinalityConstraint],
    dcs: &[DenialConstraint],
    config: &SolverConfig,
) -> RunResult {
    let instance = data
        .to_instance(ccs.to_vec(), dcs.to_vec())
        .expect("generated instances validate");
    let start = Instant::now();
    let solution = solve(&instance, config).expect("solver never fails with augmentation on");
    let wall = start.elapsed();
    let report = evaluate(&instance, &solution).expect("evaluation");
    assert!(
        report.join_recovered,
        "join recovery is guaranteed (Proposition 5.5)"
    );
    RunResult::from(report, solution.stats, wall)
}

/// Averages the numeric fields of several runs (the paper averages over 3
/// independent runs). `join_recovered` ANDs; the first run's per-CC errors
/// are kept for distribution plots.
fn average_results(results: Vec<RunResult>) -> RunResult {
    let n = results.len() as f64;
    let avg = |f: fn(&RunResult) -> f64| results.iter().map(f).sum::<f64>() / n;
    RunResult {
        cc_median: avg(|r| r.cc_median),
        cc_mean: avg(|r| r.cc_mean),
        dc_error: avg(|r| r.dc_error),
        join_recovered: results.iter().all(|r| r.join_recovered),
        wall_s: avg(|r| r.wall_s),
        phase1_s: avg(|r| r.phase1_s),
        phase2_s: avg(|r| r.phase2_s),
        pairwise_s: avg(|r| r.pairwise_s),
        recursion_s: avg(|r| r.recursion_s),
        ilp_s: avg(|r| r.ilp_s),
        fill_s: avg(|r| r.fill_s),
        repair_s: avg(|r| r.repair_s),
        leftovers_s: avg(|r| r.leftovers_s),
        random_s: avg(|r| r.random_s),
        coloring_s: avg(|r| r.coloring_s),
        conflict_s: avg(|r| r.conflict_s),
        color_s: avg(|r| r.color_s),
        invalid_s: avg(|r| r.invalid_s),
        new_r2_tuples: results.iter().map(|r| r.new_r2_tuples).sum::<usize>() / results.len(),
        cc_errors: results
            .into_iter()
            .next()
            .map(|r| r.cc_errors)
            .unwrap_or_default(),
    }
}

/// Runs one pipeline `runs` times with distinct seeds, averaging the
/// numeric fields.
pub fn run_averaged(
    data: &WorkloadData,
    ccs: &[CardinalityConstraint],
    dcs: &[DenialConstraint],
    config: &SolverConfig,
    runs: usize,
) -> RunResult {
    average_results(
        (0..runs.max(1))
            .map(|i| run_once(data, ccs, dcs, &(*config).with_seed(config.seed + i as u64)))
            .collect(),
    )
}

/// One step's outcome in a chain run.
#[derive(Clone, Debug)]
pub struct StepRunResult {
    /// `Owner→Target` step label.
    pub step: String,
    /// CC-set size the step ran with.
    pub n_ccs: usize,
    /// `R1` rows the step actually solved (includes dimension tuples
    /// minted by earlier steps).
    pub n_r1: usize,
    /// `R2` rows of the step's input.
    pub n_r2: usize,
    /// The step's metrics.
    pub result: RunResult,
}

/// The outcome of one multi-step chain run: per-step metrics plus a chain
/// total aggregated through `SnowflakeSolution::total_stats`.
#[derive(Clone, Debug)]
pub struct ChainRunResult {
    /// Per-step outcomes, in completion order.
    pub steps: Vec<StepRunResult>,
    /// Chain totals: summed timings/counters, per-CC errors pooled across
    /// steps, worst-step DC error, all-steps join recovery.
    pub total: RunResult,
}

/// Builds the constrained chain steps for one (family, DC set) choice:
/// per-step CC/DC sets from [`Workload::step_ccs`] / [`Workload::step_dcs`].
/// Constraint generation (including the ground-truth augmented views the
/// targets are measured on) happens exactly once per call — averaged runs
/// reuse the result and only vary the solver seed.
pub fn chain_steps(
    workload: &dyn Workload,
    data: &WorkloadData,
    family: CcFamily,
    dc_set: DcSet,
    n_ccs: usize,
    seed: u64,
) -> Vec<SnowflakeStep> {
    data.steps
        .iter()
        .enumerate()
        .map(|(i, edge)| SnowflakeStep {
            edge: edge.clone(),
            ccs: workload.step_ccs(i, family, n_ccs, data, seed),
            dcs: workload.step_dcs(i, dc_set),
        })
        .collect()
}

/// Runs a workload's full FK-completion chain once: the chain is driven by
/// `cextend_core::snowflake::solve_snowflake`, and every step is evaluated
/// on its augmented view.
pub fn run_chain_once(
    workload: &dyn Workload,
    data: &WorkloadData,
    family: CcFamily,
    dc_set: DcSet,
    n_ccs: usize,
    seed: u64,
    config: &SolverConfig,
) -> ChainRunResult {
    let steps = chain_steps(workload, data, family, dc_set, n_ccs, seed);
    run_chain_with_steps(data, &steps, config)
}

/// Runs prebuilt chain steps once (the inner loop of the averaged runner).
pub fn run_chain_with_steps(
    data: &WorkloadData,
    steps: &[SnowflakeStep],
    config: &SolverConfig,
) -> ChainRunResult {
    let start = Instant::now();
    let solved = solve_snowflake(data.relations.clone(), steps, config)
        .expect("solver never fails with augmentation on");
    let wall = start.elapsed();

    let total_stats = solved.total_stats();
    let mut all_cc_errors: Vec<f64> = Vec::new();
    let mut worst_dc = 0.0f64;
    let mut all_recovered = true;
    let step_results: Vec<StepRunResult> = solved
        .steps
        .iter()
        .zip(steps)
        .map(|(outcome, step)| {
            all_cc_errors.extend_from_slice(&outcome.report.cc_errors);
            worst_dc = worst_dc.max(outcome.report.dc_error);
            all_recovered &= outcome.report.join_recovered;
            StepRunResult {
                step: outcome.label.clone(),
                n_ccs: step.ccs.len(),
                n_r1: outcome.n_r1,
                n_r2: outcome.n_r2,
                result: RunResult::from(outcome.report.clone(), outcome.stats, outcome.wall),
            }
        })
        .collect();
    let total_report = EvaluationReport {
        cc_median: median(&all_cc_errors),
        cc_mean: if all_cc_errors.is_empty() {
            0.0
        } else {
            all_cc_errors.iter().sum::<f64>() / all_cc_errors.len() as f64
        },
        cc_errors: all_cc_errors,
        dc_error: worst_dc,
        join_recovered: all_recovered,
    };
    ChainRunResult {
        steps: step_results,
        total: RunResult::from(total_report, total_stats, wall),
    }
}

/// Runs prebuilt chain steps `runs` times with distinct solver seeds,
/// averaging the numeric fields per step (and for the chain total). Use
/// this when the same steps drive several solver configurations — the
/// constraint sets are then identical across pipelines by construction.
pub fn run_chain_with_steps_averaged(
    data: &WorkloadData,
    steps: &[SnowflakeStep],
    config: &SolverConfig,
    runs: usize,
) -> ChainRunResult {
    let chains: Vec<ChainRunResult> = (0..runs.max(1))
        .map(|i| run_chain_with_steps(data, steps, &(*config).with_seed(config.seed + i as u64)))
        .collect();
    let n_steps = chains[0].steps.len();
    let steps = (0..n_steps)
        .map(|s| StepRunResult {
            step: chains[0].steps[s].step.clone(),
            n_ccs: chains[0].steps[s].n_ccs,
            n_r1: chains[0].steps[s].n_r1,
            n_r2: chains[0].steps[s].n_r2,
            result: average_results(chains.iter().map(|c| c.steps[s].result.clone()).collect()),
        })
        .collect();
    let total = average_results(chains.into_iter().map(|c| c.total).collect());
    ChainRunResult { steps, total }
}

/// Runs a chain `runs` times with distinct solver seeds, averaging the
/// numeric fields per step (and for the chain total). Constraint
/// generation happens once, before the run loop.
#[allow(clippy::too_many_arguments)] // mirrors run_chain_once plus `runs`
pub fn run_chain_averaged(
    workload: &dyn Workload,
    data: &WorkloadData,
    family: CcFamily,
    dc_set: DcSet,
    n_ccs: usize,
    seed: u64,
    config: &SolverConfig,
    runs: usize,
) -> ChainRunResult {
    let steps = chain_steps(workload, data, family, dc_set, n_ccs, seed);
    run_chain_with_steps_averaged(data, &steps, config, runs)
}

/// A printable experiment table.
///
/// Snapshots are stamped by [`Table::emit`] with everything needed to
/// reproduce them from their own metadata: the workload, the fully
/// resolved knob map, the scale factor (and fixed scale label, when the
/// experiment runs at one), the CC-set size, run count and base seed.
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    /// Experiment id (e.g. `fig8a`).
    pub id: String,
    /// Workload the table was produced on (stamped by [`Table::emit`] so
    /// snapshot records stay attributable and schema-agnostic).
    pub workload: String,
    /// Human title matching the paper artifact.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Fully resolved workload knob map (stamped by [`Table::emit`]).
    pub knobs: BTreeMap<String, i64>,
    /// Scale factor applied to the workload's scale labels (stamped).
    pub scale_factor: f64,
    /// The fixed scale label the experiment ran at, when it does not sweep
    /// labels (sweeps carry the label per row instead).
    pub scale_label: Option<u32>,
    /// CC-set size requested (stamped).
    pub n_ccs: usize,
    /// Independent runs averaged per cell (stamped).
    pub runs: usize,
    /// Base RNG seed (stamped).
    pub seed: u64,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Table {
        Table {
            id: id.to_owned(),
            workload: String::new(),
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            knobs: BTreeMap::new(),
            scale_factor: 0.0,
            scale_label: None,
            n_ccs: 0,
            runs: 0,
            seed: 0,
        }
    }

    /// Records the fixed scale label the experiment runs at.
    pub fn with_scale_label(mut self, label: u32) -> Table {
        self.scale_label = Some(label);
        self
    }

    /// Appends a row.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout and writes a JSON snapshot when `out_dir` is set.
    /// The snapshot is stamped with the active workload name, the resolved
    /// knob map and the scale/seed parameters.
    pub fn emit(&self, opts: &ExperimentOpts) {
        println!("{}", self.render());
        if let Some(dir) = &opts.out_dir {
            let mut snapshot = self.clone();
            snapshot.workload = opts.workload.clone();
            snapshot.knobs = opts.resolved_knobs();
            snapshot.scale_factor = opts.scale_factor;
            snapshot.n_ccs = opts.n_ccs;
            snapshot.runs = opts.runs;
            snapshot.seed = opts.seed;
            std::fs::create_dir_all(dir).expect("create output dir");
            let path = dir.join(format!("{}.json", self.id));
            std::fs::write(
                &path,
                serde_json::to_string_pretty(&snapshot).expect("serialize"),
            )
            .expect("write snapshot");
            narrate!("[snapshot written to {}]\n", path.display());
        }
    }
}

/// Formats seconds compactly.
pub fn fmt_s(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1000.0)
    }
}

/// Formats an error rate to three decimals.
pub fn fmt_err(e: f64) -> String {
    format!("{e:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns() {
        let mut t = Table::new("t", "demo", &["a", "long-header"]);
        t.push(vec!["x".into(), "1".into()]);
        let r = t.render();
        assert!(r.contains("long-header"));
        assert!(r.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("t", "demo", &["a"]);
        t.push(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_s(0.0123), "12.3ms");
        assert_eq!(fmt_s(2.5), "2.50s");
        assert_eq!(fmt_s(120.0), "120s");
        assert_eq!(fmt_err(0.25), "0.250");
    }

    fn smoke_opts(workload: &str) -> ExperimentOpts {
        ExperimentOpts {
            workload: workload.to_owned(),
            scale_factor: 0.005,
            n_ccs: 10,
            runs: 1,
            ..ExperimentOpts::default()
        }
    }

    #[test]
    fn smoke_run_once_census() {
        let opts = smoke_opts("census");
        let data = opts.dataset(1, None, 0);
        let ccs = opts.ccs(CcFamily::Good, 10, &data, 0);
        let dcs = opts.dcs(DcSet::Good);
        let r = run_once(&data, &ccs, &dcs, &SolverConfig::hybrid());
        assert!(r.join_recovered);
        assert_eq!(r.dc_error, 0.0);
    }

    #[test]
    fn smoke_run_once_retail() {
        let opts = smoke_opts("retail");
        let data = opts.dataset(1, None, 0);
        let ccs = opts.ccs(CcFamily::Bad, 10, &data, 0);
        let dcs = opts.dcs(DcSet::All);
        let r = run_once(&data, &ccs, &dcs, &SolverConfig::hybrid());
        assert!(r.join_recovered);
        assert_eq!(r.dc_error, 0.0);
    }

    #[test]
    fn knobs_reach_the_generator() {
        let mut opts = smoke_opts("census");
        opts.knobs.insert("areas".to_owned(), 3);
        let data = opts.dataset(1, None, 0);
        let area = data.r2().schema().col_id("Area").unwrap();
        assert!(data.r2().distinct_values(area).len() <= 3);
    }

    #[test]
    fn resolved_knobs_overlay_defaults() {
        let mut opts = smoke_opts("retail");
        opts.knobs.insert("regions".to_owned(), 4);
        opts.knobs.insert("areas".to_owned(), 3); // census-only: ignored
        let knobs = opts.resolved_knobs();
        assert_eq!(knobs.get("regions"), Some(&4));
        assert!(knobs.contains_key("max-group"), "defaults are stamped");
        assert!(!knobs.contains_key("areas"));
    }

    #[test]
    fn smoke_run_chain_supply() {
        let opts = smoke_opts("supply");
        let workload = opts.workload();
        let data = opts.dataset(1, None, 0);
        let chain = run_chain_once(
            workload.as_ref(),
            &data,
            CcFamily::Good,
            DcSet::All,
            10,
            opts.seed,
            &SolverConfig::hybrid(),
        );
        assert_eq!(chain.steps.len(), 2);
        for step in &chain.steps {
            assert_eq!(step.result.dc_error, 0.0, "{}", step.step);
            assert!(step.result.join_recovered, "{}", step.step);
        }
        assert_eq!(chain.total.dc_error, 0.0);
        assert!(chain.total.join_recovered);
        // The chain total aggregates the per-step timings.
        let wall_sum: f64 = chain.steps.iter().map(|s| s.result.phase1_s).sum();
        assert!((chain.total.phase1_s - wall_sum).abs() < 1e-9);
        // The Phase 1 sub-stages decompose phase1_s exactly.
        for r in chain
            .steps
            .iter()
            .map(|s| &s.result)
            .chain(std::iter::once(&chain.total))
        {
            let stage_sum = r.pairwise_s
                + r.recursion_s
                + r.ilp_s
                + r.fill_s
                + r.repair_s
                + r.leftovers_s
                + r.random_s;
            assert!((r.phase1_s - stage_sum).abs() < 1e-9);
        }
    }

    #[test]
    fn chain_runner_matches_run_once_on_one_step_workloads() {
        let opts = smoke_opts("retail");
        let workload = opts.workload();
        let data = opts.dataset(1, None, 0);
        let chain = run_chain_once(
            workload.as_ref(),
            &data,
            CcFamily::Good,
            DcSet::All,
            10,
            opts.seed,
            &SolverConfig::hybrid(),
        );
        assert_eq!(chain.steps.len(), 1);
        let ccs = opts.ccs(CcFamily::Good, 10, &data, 0);
        let flat = run_once(&data, &ccs, &opts.dcs(DcSet::All), &SolverConfig::hybrid());
        assert_eq!(chain.steps[0].result.cc_median, flat.cc_median);
        assert_eq!(chain.steps[0].result.dc_error, flat.dc_error);
        assert_eq!(chain.steps[0].result.new_r2_tuples, flat.new_r2_tuples);
    }
}
