//! Shared experiment machinery: dataset/pipeline runners, result records,
//! table printing and JSON snapshots.

use cextend_census::{generate, generate_ccs, CcFamily, CensusConfig, CensusData};
use cextend_constraints::{CardinalityConstraint, DenialConstraint};
use cextend_core::metrics::{evaluate, EvaluationReport};
use cextend_core::{solve, CExtensionInstance, SolveStats, SolverConfig};
use serde::Serialize;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Global experiment options (CLI-controlled).
#[derive(Clone, Debug)]
pub struct ExperimentOpts {
    /// Multiplier applied to the paper's scale labels: the paper's `k×`
    /// becomes `k × scale_factor` here. The default 0.02 keeps every
    /// experiment laptop-sized; `--paper-scale` sets it to 1.0.
    pub scale_factor: f64,
    /// CC-set size (the paper uses 1001).
    pub n_ccs: usize,
    /// Distinct `Area` codes in the generator.
    pub n_areas: usize,
    /// Independent runs to average over (the paper uses 3).
    pub runs: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Where to write JSON snapshots (`None` disables).
    pub out_dir: Option<PathBuf>,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        ExperimentOpts {
            scale_factor: 0.02,
            n_ccs: 150,
            n_areas: 12,
            runs: 3,
            seed: 7,
            out_dir: None,
        }
    }
}

impl ExperimentOpts {
    /// Generates data at the paper's scale label `k` (scaled by
    /// `scale_factor`).
    pub fn dataset(&self, label: u32, n_housing_cols: usize, seed_offset: u64) -> CensusData {
        generate(&CensusConfig {
            scale: label as f64 * self.scale_factor,
            n_areas: self.n_areas,
            n_housing_cols,
            seed: self.seed + seed_offset,
        })
    }

    /// CC set of the given family for a dataset.
    pub fn ccs(
        &self,
        family: CcFamily,
        n: usize,
        data: &CensusData,
        seed_offset: u64,
    ) -> Vec<CardinalityConstraint> {
        generate_ccs(family, n, data, self.seed + seed_offset)
    }
}

/// The outcome of one pipeline run.
#[derive(Clone, Debug, Serialize)]
pub struct RunResult {
    /// Median relative CC error.
    pub cc_median: f64,
    /// Mean relative CC error.
    pub cc_mean: f64,
    /// Fraction of tuples violating some DC.
    pub dc_error: f64,
    /// Whether `R̂1 ⋈ R̂2` equals the view.
    pub join_recovered: bool,
    /// Total wall-clock seconds.
    pub wall_s: f64,
    /// Phase I seconds.
    pub phase1_s: f64,
    /// Phase II seconds.
    pub phase2_s: f64,
    /// Pairwise-comparison seconds (Figure 13 row 1).
    pub pairwise_s: f64,
    /// Algorithm 2 recursion seconds (Figure 13 row 2).
    pub recursion_s: f64,
    /// ILP build+solve seconds (Figure 13 row 3).
    pub ilp_s: f64,
    /// Conflict build + coloring seconds (Figure 13 row 4).
    pub coloring_s: f64,
    /// Fresh `R2` tuples minted.
    pub new_r2_tuples: usize,
    /// Per-CC relative errors (for Figure 9 distributions).
    #[serde(skip_serializing_if = "Vec::is_empty")]
    pub cc_errors: Vec<f64>,
}

impl RunResult {
    fn from(report: EvaluationReport, stats: SolveStats, wall: Duration) -> RunResult {
        let t = stats.timings;
        RunResult {
            cc_median: report.cc_median,
            cc_mean: report.cc_mean,
            dc_error: report.dc_error,
            join_recovered: report.join_recovered,
            wall_s: wall.as_secs_f64(),
            phase1_s: t.phase1().as_secs_f64(),
            phase2_s: t.phase2().as_secs_f64(),
            pairwise_s: t.pairwise_comparison.as_secs_f64(),
            recursion_s: t.recursion.as_secs_f64(),
            ilp_s: (t.ilp_build + t.ilp_solve).as_secs_f64(),
            coloring_s: (t.conflict_build + t.coloring + t.invalid_handling).as_secs_f64(),
            new_r2_tuples: stats.counters.new_r2_tuples,
            cc_errors: report.cc_errors,
        }
    }
}

/// Runs one pipeline once.
pub fn run_once(
    data: &CensusData,
    ccs: &[CardinalityConstraint],
    dcs: &[DenialConstraint],
    config: &SolverConfig,
) -> RunResult {
    let instance = CExtensionInstance::new(
        data.persons.clone(),
        data.housing.clone(),
        ccs.to_vec(),
        dcs.to_vec(),
    )
    .expect("generated instances validate");
    let start = Instant::now();
    let solution = solve(&instance, config).expect("solver never fails with augmentation on");
    let wall = start.elapsed();
    let report = evaluate(&instance, &solution).expect("evaluation");
    assert!(
        report.join_recovered,
        "join recovery is guaranteed (Proposition 5.5)"
    );
    RunResult::from(report, solution.stats, wall)
}

/// Runs one pipeline `runs` times with distinct seeds, averaging the
/// numeric fields (the paper averages over 3 independent runs).
pub fn run_averaged(
    data: &CensusData,
    ccs: &[CardinalityConstraint],
    dcs: &[DenialConstraint],
    config: &SolverConfig,
    runs: usize,
) -> RunResult {
    let results: Vec<RunResult> = (0..runs.max(1))
        .map(|i| run_once(data, ccs, dcs, &(*config).with_seed(config.seed + i as u64)))
        .collect();
    let n = results.len() as f64;
    let avg = |f: fn(&RunResult) -> f64| results.iter().map(f).sum::<f64>() / n;
    RunResult {
        cc_median: avg(|r| r.cc_median),
        cc_mean: avg(|r| r.cc_mean),
        dc_error: avg(|r| r.dc_error),
        join_recovered: results.iter().all(|r| r.join_recovered),
        wall_s: avg(|r| r.wall_s),
        phase1_s: avg(|r| r.phase1_s),
        phase2_s: avg(|r| r.phase2_s),
        pairwise_s: avg(|r| r.pairwise_s),
        recursion_s: avg(|r| r.recursion_s),
        ilp_s: avg(|r| r.ilp_s),
        coloring_s: avg(|r| r.coloring_s),
        new_r2_tuples: results.iter().map(|r| r.new_r2_tuples).sum::<usize>() / results.len(),
        cc_errors: results
            .into_iter()
            .next()
            .map(|r| r.cc_errors)
            .unwrap_or_default(),
    }
}

/// A printable experiment table.
#[derive(Debug, Serialize)]
pub struct Table {
    /// Experiment id (e.g. `fig8a`).
    pub id: String,
    /// Human title matching the paper artifact.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Table {
        Table {
            id: id.to_owned(),
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout and writes a JSON snapshot when `out_dir` is set.
    pub fn emit(&self, opts: &ExperimentOpts) {
        println!("{}", self.render());
        if let Some(dir) = &opts.out_dir {
            std::fs::create_dir_all(dir).expect("create output dir");
            let path = dir.join(format!("{}.json", self.id));
            std::fs::write(
                &path,
                serde_json::to_string_pretty(self).expect("serialize"),
            )
            .expect("write snapshot");
            println!("[snapshot written to {}]\n", path.display());
        }
    }
}

/// Formats seconds compactly.
pub fn fmt_s(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1000.0)
    }
}

/// Formats an error rate to three decimals.
pub fn fmt_err(e: f64) -> String {
    format!("{e:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns() {
        let mut t = Table::new("t", "demo", &["a", "long-header"]);
        t.push(vec!["x".into(), "1".into()]);
        let r = t.render();
        assert!(r.contains("long-header"));
        assert!(r.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("t", "demo", &["a"]);
        t.push(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_s(0.0123), "12.3ms");
        assert_eq!(fmt_s(2.5), "2.50s");
        assert_eq!(fmt_s(120.0), "120s");
        assert_eq!(fmt_err(0.25), "0.250");
    }

    #[test]
    fn smoke_run_once() {
        let opts = ExperimentOpts {
            scale_factor: 0.005,
            n_ccs: 10,
            n_areas: 4,
            runs: 1,
            ..ExperimentOpts::default()
        };
        let data = opts.dataset(1, 2, 0);
        let ccs = opts.ccs(CcFamily::Good, 10, &data, 0);
        let dcs = cextend_census::s_good_dc();
        let r = run_once(&data, &ccs, &dcs, &SolverConfig::hybrid());
        assert!(r.join_recovered);
        assert_eq!(r.dc_error, 0.0);
    }
}
