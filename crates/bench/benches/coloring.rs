//! Micro-benchmark: greedy largest-first list coloring (Algorithm 3) on
//! conflict graphs of growing size, plus the exact solver on small ones.

use cextend_hypergraph::{
    coloring_lf, exact_list_coloring, CandidateLists, Color, Coloring, Hypergraph,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A clique of `k` "owners" plus a sparse fringe — the shape census
/// partitions take under `S_all_DC`.
fn conflict_like_graph(n: usize, clique: usize) -> Hypergraph {
    let mut g = Hypergraph::new(n);
    for i in 0..clique.min(n) as u32 {
        for j in (i + 1)..clique.min(n) as u32 {
            g.add_edge(&[i, j]);
        }
    }
    for i in clique..n {
        g.add_edge(&[(i % clique) as u32, i as u32]);
    }
    g
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring_lf");
    for &n in &[100usize, 400, 1600] {
        let clique = n / 10;
        let g = conflict_like_graph(n, clique);
        let colors: Vec<Color> = (0..clique as Color + 1).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut coloring = Coloring::new(g.n_vertices());
                let skipped = coloring_lf(g, &mut coloring, &CandidateLists::Shared(&colors));
                assert!(skipped.is_empty());
                coloring
            })
        });
    }
    group.finish();
}

fn bench_exact(c: &mut Criterion) {
    let g = conflict_like_graph(40, 6);
    let colors: Vec<Color> = (0..7).collect();
    c.bench_function("exact_list_coloring_40", |b| {
        b.iter(|| {
            exact_list_coloring(
                &g,
                &Coloring::new(g.n_vertices()),
                &CandidateLists::Shared(&colors),
                1_000_000,
            )
        })
    });
}

criterion_group!(benches, bench_greedy, bench_exact);
criterion_main!(benches);
