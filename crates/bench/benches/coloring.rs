//! Micro-benchmark: greedy largest-first list coloring (Algorithm 3) on
//! conflict graphs of growing size, plus the exact solver on small ones,
//! plus the `coloring` group on real DC-dense conflict graphs (greedy +
//! fresh-color repair, parameterized by partition size and DC density).

use cextend_bench::dcdense_largest_partition;
use cextend_core::conflict::{build_conflict_graph, ConflictBuilder};
use cextend_hypergraph::{
    color_skipped_with_fresh, coloring_lf, exact_list_coloring, CandidateLists, Color, Coloring,
    Hypergraph,
};
use cextend_workloads::DcSet;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A clique of `k` "owners" plus a sparse fringe — the shape census
/// partitions take under `S_all_DC`.
fn conflict_like_graph(n: usize, clique: usize) -> Hypergraph {
    let mut g = Hypergraph::new(n);
    for i in 0..clique.min(n) as u32 {
        for j in (i + 1)..clique.min(n) as u32 {
            g.add_edge(&[i, j]);
        }
    }
    for i in clique..n {
        g.add_edge(&[(i % clique) as u32, i as u32]);
    }
    g
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring_lf");
    for &n in &[100usize, 400, 1600] {
        let clique = n / 10;
        let g = conflict_like_graph(n, clique);
        let colors: Vec<Color> = (0..clique as Color + 1).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut coloring = Coloring::new(g.n_vertices());
                let skipped = coloring_lf(g, &mut coloring, &CandidateLists::Shared(&colors));
                assert!(skipped.is_empty());
                coloring
            })
        });
    }
    group.finish();
}

/// Greedy + fresh-color completion on the conflict graph of the largest
/// `(Room, Shift)` partition of a generated dcdense view, one arm per DC
/// planner (`static` vs `cost` — the planners must produce identical edge
/// sets, so any timing gap is graph-layout noise and a divergence is a
/// correctness bug this bench trips on). Candidate colors are the
/// partition's slots, as in Algorithm 4.
fn bench_dcdense_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring");
    group.sample_size(10);
    for &label in &[1u32, 5] {
        for (density, set) in [("good", DcSet::Good), ("all", DcSet::All)] {
            let (view, rows, dcs) = dcdense_largest_partition(label, set);
            // One candidate color per slot in the partition (= its anchors).
            let kind = view.schema().col_id("Kind").expect("Kind in view");
            let n_cand = rows
                .iter()
                .filter(|&&r| view.get(r, kind) == Some(cextend_table::Value::str("Anchor")))
                .count();
            let colors: Vec<Color> = (0..n_cand as Color).collect();
            let g_static = build_conflict_graph(&view, &rows, &dcs);
            let g_cost = ConflictBuilder::new_cost(&dcs, &view, rows.len()).build(&view, &rows);
            assert_eq!(
                g_static.n_edges(),
                g_cost.n_edges(),
                "planners must agree before coloring is timed"
            );
            for (planner, g) in [("static", &g_static), ("cost", &g_cost)] {
                let id = format!("p{}_{density}_e{}_{planner}", rows.len(), g.n_edges());
                group.bench_with_input(BenchmarkId::from_parameter(id), g, |b, g| {
                    b.iter(|| {
                        let mut coloring = Coloring::new(g.n_vertices());
                        let skipped =
                            coloring_lf(g, &mut coloring, &CandidateLists::Shared(&colors));
                        color_skipped_with_fresh(g, &mut coloring, &skipped, n_cand as Color);
                        coloring
                    })
                });
            }
        }
    }
    group.finish();
}

fn bench_exact(c: &mut Criterion) {
    let g = conflict_like_graph(40, 6);
    let colors: Vec<Color> = (0..7).collect();
    c.bench_function("exact_list_coloring_40", |b| {
        b.iter(|| {
            exact_list_coloring(
                &g,
                &Coloring::new(g.n_vertices()),
                &CandidateLists::Shared(&colors),
                1_000_000,
            )
        })
    });
}

criterion_group!(benches, bench_greedy, bench_dcdense_coloring, bench_exact);
criterion_main!(benches);
