//! Macro-benchmark for the Phase II work-stealing pipeline: full solves on
//! a small DC-dense instance across coloring modes (serial vs the streamed
//! pipeline at pinned worker widths) and DC planners.
//!
//! Worker widths are pinned via `CEXTEND_SCHED_WORKERS`, so the arms are
//! machine-independent: on a 1-CPU runner the pipeline arms still exercise
//! the atomic work-stealing counter, the result channel and the
//! coordinator's in-order reassembly — their wall should sit within noise
//! of the serial arm there, and pull ahead with real cores. Every
//! configuration is asserted bit-identical to the serial/static reference
//! solve before being timed.

use cextend_bench::ExperimentOpts;
use cextend_core::{solve, DcPlannerKind, SolverConfig};
use cextend_table::relations_equal_ordered;
use cextend_workloads::{CcFamily, DcSet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_phase2_pipeline(c: &mut Criterion) {
    let opts = ExperimentOpts {
        workload: "dcdense".to_owned(),
        ..ExperimentOpts::default()
    };
    let data = opts.dataset(2, None, 0);
    let dcs = opts.dcs(DcSet::All);
    let ccs = opts.ccs(CcFamily::Good, opts.n_ccs, &data, 0);
    let instance = data.to_instance(ccs, dcs).unwrap();
    let reference = solve(
        &instance,
        &SolverConfig::hybrid()
            .with_dc_planner(DcPlannerKind::Static)
            .with_parallel_coloring(false),
    )
    .unwrap();
    let mut group = c.benchmark_group("phase2_pipeline");
    group.sample_size(10);
    for planner in [DcPlannerKind::Static, DcPlannerKind::Cost] {
        for (mode, workers) in [("serial", None), ("pipe2", Some("2")), ("pipe4", Some("4"))] {
            match workers {
                Some(w) => std::env::set_var("CEXTEND_SCHED_WORKERS", w),
                None => std::env::remove_var("CEXTEND_SCHED_WORKERS"),
            }
            let config = SolverConfig::hybrid()
                .with_dc_planner(planner)
                .with_parallel_coloring(workers.is_some());
            let solution = solve(&instance, &config).unwrap();
            assert!(
                relations_equal_ordered(&solution.r1_hat, &reference.r1_hat)
                    && relations_equal_ordered(&solution.r2_hat, &reference.r2_hat),
                "{mode}/{} diverged from the serial static reference",
                planner.label()
            );
            let id = format!("{mode}_{}", planner.label());
            group.bench_with_input(BenchmarkId::from_parameter(id), &instance, |b, inst| {
                b.iter(|| solve(inst, &config).unwrap())
            });
        }
    }
    std::env::remove_var("CEXTEND_SCHED_WORKERS");
    group.finish();
}

criterion_group!(benches, bench_phase2_pipeline);
criterion_main!(benches);
