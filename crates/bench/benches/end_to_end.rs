//! Macro-benchmark: the full solve pipeline (hybrid vs both baselines) on a
//! small Census instance — the engine behind Figures 8–11.

use cextend_bench::ExperimentOpts;
use cextend_core::{solve, SolverConfig};
use cextend_workloads::{CcFamily, DcSet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pipelines(c: &mut Criterion) {
    let opts = ExperimentOpts {
        scale_factor: 0.005,
        n_ccs: 60,
        knobs: [("areas".to_owned(), 6)].into_iter().collect(),
        ..ExperimentOpts::default()
    };
    let data = opts.dataset(5, None, 0);
    let dcs = opts.dcs(DcSet::All);
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for family in [CcFamily::Good, CcFamily::Bad] {
        let ccs = opts.ccs(family, opts.n_ccs, &data, 0);
        let instance = data.to_instance(ccs, dcs.clone()).unwrap();
        for (name, config) in [
            ("hybrid", SolverConfig::hybrid()),
            ("baseline", SolverConfig::baseline()),
            ("baseline_marg", SolverConfig::baseline_with_marginals()),
        ] {
            let id = format!("{name}_{family:?}");
            group.bench_with_input(BenchmarkId::from_parameter(id), &instance, |b, inst| {
                b.iter(|| solve(inst, &config).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
