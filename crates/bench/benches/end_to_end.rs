//! Macro-benchmark: the full solve pipeline (hybrid vs both baselines) on a
//! small Census instance — the engine behind Figures 8–11.

use cextend_bench::ExperimentOpts;
use cextend_census::{s_all_dc, CcFamily};
use cextend_core::{solve, CExtensionInstance, SolverConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pipelines(c: &mut Criterion) {
    let opts = ExperimentOpts {
        scale_factor: 0.005,
        n_areas: 6,
        n_ccs: 60,
        ..ExperimentOpts::default()
    };
    let data = opts.dataset(5, 2, 0);
    let dcs = s_all_dc();
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for family in [CcFamily::Good, CcFamily::Bad] {
        let ccs = opts.ccs(family, opts.n_ccs, &data, 0);
        let instance =
            CExtensionInstance::new(data.persons.clone(), data.housing.clone(), ccs, dcs.clone())
                .unwrap();
        for (name, config) in [
            ("hybrid", SolverConfig::hybrid()),
            ("baseline", SolverConfig::baseline()),
            ("baseline_marg", SolverConfig::baseline_with_marginals()),
        ] {
            let id = format!("{name}_{family:?}");
            group.bench_with_input(BenchmarkId::from_parameter(id), &instance, |b, inst| {
                b.iter(|| solve(inst, &config).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
