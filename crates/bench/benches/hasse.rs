//! Micro-benchmark: Algorithm 2's recursion (the "Recursion" row of
//! Figure 13) — full Phase I on a good CC family, which never touches the
//! ILP.

use cextend_bench::ExperimentOpts;
use cextend_core::{solve, Phase1Strategy, SolverConfig};
use cextend_workloads::{CcFamily, DcSet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_hasse_phase1(c: &mut Criterion) {
    let opts = ExperimentOpts {
        scale_factor: 0.01,
        knobs: [("areas".to_owned(), 8)].into_iter().collect(),
        ..ExperimentOpts::default()
    };
    let mut group = c.benchmark_group("hasse_recursion_end_to_end");
    group.sample_size(10);
    for &n_ccs in &[50usize, 150] {
        let data = opts.dataset(5, None, 0);
        let ccs = opts.ccs(CcFamily::Good, n_ccs, &data, 0);
        let instance = data.to_instance(ccs, opts.dcs(DcSet::Good)).unwrap();
        let config = SolverConfig {
            phase1: Phase1Strategy::HasseOnly,
            ..SolverConfig::hybrid()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(n_ccs),
            &instance,
            |b, instance| b.iter(|| solve(instance, &config).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hasse_phase1);
criterion_main!(benches);
