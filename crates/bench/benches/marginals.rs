//! Micro-benchmarks for the dictionary-code marginal kernels.
//!
//! `cextend_table::marginals` groups rows by packing each row's dictionary
//! codes (Sym) and raw i64 values into a fixed-width key — no `Value`
//! boxing, no hashing of strings. The retained `marginals::naive` module
//! (boxed `Relation::get` + `Vec<Value>` keys) is the measured baseline;
//! both are timed head to head on the census ground truth:
//!
//! - `group_counts` over the low-cardinality `Rel` column (the Phase I
//!   marginal-row shape);
//! - `group_rows` over the high-cardinality FK column (the `dc_error`
//!   violation-grouping shape — thousands of household groups);
//! - `distinct_combos` over the first two string columns of the join view
//!   (the Phase II partition-splitting shape).

use cextend_bench::ExperimentOpts;
use cextend_table::marginals::{self, naive};
use cextend_table::{Dtype, Relation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// The first `n` string-typed columns of a relation.
fn sym_cols(rel: &Relation, n: usize) -> Vec<usize> {
    (0..rel.schema().len())
        .filter(|&c| rel.schema().column(c).dtype == Dtype::Str)
        .take(n)
        .collect()
}

fn bench_marginals(c: &mut Criterion) {
    let opts = ExperimentOpts {
        scale_factor: 0.02,
        ..ExperimentOpts::default()
    };
    let mut group = c.benchmark_group("marginals");
    group.sample_size(10);
    for &label in &[1u32, 5] {
        let data = opts.dataset(label, None, 0);
        let truth_r1 = data.step_owner_truth(0);
        let fk = truth_r1
            .schema()
            .col_id(&data.steps[0].fk_col)
            .expect("truth carries the FK");
        let view = data.truth_join();
        let combo_cols = sym_cols(&view, 2);
        let rel_col = sym_cols(truth_r1, 1);
        let n = truth_r1.n_rows();

        // The naive module is the correctness oracle; agree before timing.
        assert_eq!(
            marginals::group_rows(truth_r1, &[fk]).len(),
            naive::group_rows(truth_r1, &[fk]).len()
        );
        assert_eq!(
            marginals::distinct_combos(&view, &combo_cols),
            naive::distinct_combos(&view, &combo_cols)
        );

        for impl_name in ["coded", "naive"] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("group_counts_n{n}_{impl_name}")),
                truth_r1,
                |b, rel| {
                    b.iter(|| {
                        if impl_name == "coded" {
                            marginals::group_counts(rel, &rel_col).len()
                        } else {
                            naive::group_counts(rel, &rel_col).len()
                        }
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("group_rows_fk_n{n}_{impl_name}")),
                truth_r1,
                |b, rel| {
                    b.iter(|| {
                        if impl_name == "coded" {
                            marginals::group_rows(rel, &[fk]).len()
                        } else {
                            naive::group_rows(rel, &[fk]).len()
                        }
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("distinct_combos_n{n}_{impl_name}")),
                &view,
                |b, v| {
                    b.iter(|| {
                        if impl_name == "coded" {
                            marginals::distinct_combos(v, &combo_cols).len()
                        } else {
                            naive::distinct_combos(v, &combo_cols).len()
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_marginals);
criterion_main!(benches);
