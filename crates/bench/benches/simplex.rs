//! Micro-benchmark: the LP/ILP substrate on Algorithm 1-shaped programs
//! (hard bin rows + elastic CC rows), exact vs float arithmetic.

use cextend_ilp::{solve_ilp, solve_lp, BbConfig, Problem, Rational, Rel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Builds a program with `bins` hard equality groups of `combos` variables
/// each and `ccs` elastic rows over deterministic pseudo-random subsets.
fn algorithm1_shaped(bins: usize, combos: usize, ccs: usize) -> Problem {
    let mut p = Problem::new();
    let mut bin_vars = Vec::new();
    for b in 0..bins {
        let first = p.add_vars(combos);
        let vars: Vec<usize> = (first..first + combos).collect();
        p.add_constraint(
            vars.iter().map(|&v| (v, 1)).collect(),
            Rel::Eq,
            (b % 7 + 3) as i64,
        );
        bin_vars.push(vars);
    }
    for c in 0..ccs {
        let terms: Vec<(usize, i64)> = bin_vars
            .iter()
            .enumerate()
            .filter(|(b, _)| (b + c) % 3 == 0)
            .map(|(_, vars)| (vars[c % combos], 1))
            .collect();
        if !terms.is_empty() {
            p.add_soft_eq(terms, (c % 11) as i64, 1);
        }
    }
    p
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_float");
    group.sample_size(10);
    for &(bins, combos, ccs) in &[(20usize, 4usize, 10usize), (60, 6, 30), (150, 8, 80)] {
        let p = algorithm1_shaped(bins, combos, ccs);
        let id = format!("{bins}bins_{combos}combos_{ccs}ccs");
        group.bench_with_input(BenchmarkId::from_parameter(id), &p, |b, p| {
            b.iter(|| solve_lp::<f64>(p).unwrap())
        });
    }
    group.finish();
}

fn bench_exact_vs_float_ilp(c: &mut Criterion) {
    let p = algorithm1_shaped(8, 3, 6);
    let cfg = BbConfig { max_nodes: 500 };
    c.bench_function("ilp_exact_small", |b| {
        b.iter(|| solve_ilp::<Rational>(&p, &cfg).unwrap())
    });
    c.bench_function("ilp_float_small", |b| {
        b.iter(|| solve_ilp::<f64>(&p, &cfg).unwrap())
    });
}

criterion_group!(benches, bench_lp, bench_exact_vs_float_ilp);
criterion_main!(benches);
