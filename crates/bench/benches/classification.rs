//! Micro-benchmark: pairwise CC classification + Hasse construction
//! (the "Pairwise Comparison" row of Figure 13) for growing CC counts.

use cextend_bench::ExperimentOpts;
use cextend_constraints::{HasseDiagram, RelationshipMatrix};
use cextend_workloads::CcFamily;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_classification(c: &mut Criterion) {
    let opts = ExperimentOpts {
        scale_factor: 0.01,
        knobs: [("areas".to_owned(), 8)].into_iter().collect(),
        ..ExperimentOpts::default()
    };
    let data = opts.dataset(1, None, 0);
    let mut group = c.benchmark_group("pairwise_classification");
    for &n in &[50usize, 150, 400] {
        for family in [CcFamily::Good, CcFamily::Bad] {
            let ccs = opts.ccs(family, n, &data, 0);
            let id = format!("{n}_{family:?}");
            group.bench_with_input(BenchmarkId::from_parameter(id), &ccs, |b, ccs| {
                b.iter(|| {
                    let m = RelationshipMatrix::build(ccs);
                    HasseDiagram::build(&m)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_classification);
criterion_main!(benches);
