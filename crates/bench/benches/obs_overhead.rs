//! Micro-benchmark: the disabled-path cost of the `cextend-obs` tracing
//! layer. With recording off, every `span`/`stage`/`counter_add` call must
//! reduce to a relaxed `AtomicBool` load and an early return — these
//! groups make a regression (say, an accidental allocation or lock on the
//! disabled path) visible next to an uninstrumented baseline loop. The
//! enabled-path group is measured too, as the price list for `profile`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// The workload under the instrumentation: a short arithmetic loop, heavy
/// enough that timer noise doesn't drown the comparison, light enough that
/// per-call overhead still shows.
fn work(n: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..n {
        acc = acc.wrapping_mul(31).wrapping_add(i);
    }
    acc
}

fn bench_disabled(c: &mut Criterion) {
    cextend_obs::set_recording(false);
    let mut group = c.benchmark_group("obs_disabled");
    group.bench_function("baseline", |b| b.iter(|| black_box(work(black_box(256)))));
    group.bench_function("span", |b| {
        b.iter(|| {
            let _s = cextend_obs::span("bench");
            black_box(work(black_box(256)))
        })
    });
    group.bench_function("stage", |b| {
        b.iter(|| {
            let _s = cextend_obs::stage("leftovers");
            black_box(work(black_box(256)))
        })
    });
    group.bench_function("counter_add", |b| {
        b.iter(|| {
            cextend_obs::counter_add("bench.counter", 1);
            black_box(work(black_box(256)))
        })
    });
    group.finish();
}

fn bench_enabled(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_enabled");
    group.bench_function("span", |b| {
        cextend_obs::set_recording(true);
        b.iter(|| {
            let _s = cextend_obs::span("bench");
            black_box(work(black_box(256)))
        });
        cextend_obs::set_recording(false);
        // Keep the collector from growing across iterations/benches.
        let _ = cextend_obs::take_trace();
    });
    group.bench_function("counter_add", |b| {
        cextend_obs::set_recording(true);
        b.iter(|| {
            cextend_obs::counter_add("bench.counter", 1);
            black_box(work(black_box(256)))
        });
        cextend_obs::set_recording(false);
        let _ = cextend_obs::take_trace();
    });
    group.finish();
}

criterion_group!(benches, bench_disabled, bench_enabled);
criterion_main!(benches);
