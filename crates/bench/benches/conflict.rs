//! Micro-benchmarks for Phase II's conflict-hypergraph construction.
//!
//! `conflict_build` measures the indexed builder (`cextend_core::conflict`)
//! under both DC planners — `static` (the PR 5 hints) and `cost` (sampled
//! statistics + bulk pair emission) — head to head against the retained
//! naive `O(|P|^k)` enumeration on real `dcdense` partitions, parameterized
//! by partition size (scale label) and DC density (`good` = anchored gap
//! rows only, `all` = + Anchor cliques + the ternary `nae-track` row).
//! `dc_error_scan` keeps the original edge-enumeration macro cost (the
//! metric runs the same builder).

use cextend_bench::{dcdense_largest_partition, ExperimentOpts};
use cextend_core::conflict::{build_conflict_graph, build_conflict_graph_naive, ConflictBuilder};
use cextend_core::metrics::dc_error;
use cextend_workloads::DcSet;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_conflict_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("conflict_build");
    group.sample_size(10);
    for &label in &[1u32, 5] {
        for (density, set) in [("good", DcSet::Good), ("all", DcSet::All)] {
            let (view, rows, dcs) = dcdense_largest_partition(label, set);
            let p = rows.len();
            let static_edges = build_conflict_graph(&view, &rows, &dcs).n_edges();
            assert_eq!(
                static_edges,
                ConflictBuilder::new_cost(&dcs, &view, rows.len())
                    .build(&view, &rows)
                    .n_edges(),
                "planners must agree before being timed"
            );
            assert_eq!(
                static_edges,
                build_conflict_graph_naive(&view, &rows, &dcs).n_edges(),
                "builders must agree before being timed"
            );
            for builder in ["static", "cost", "naive"] {
                let id = format!("p{p}_{density}_{builder}");
                group.bench_with_input(BenchmarkId::from_parameter(id), &view, |b, view| {
                    b.iter(|| {
                        let g = match builder {
                            "static" => build_conflict_graph(view, &rows, &dcs),
                            "cost" => {
                                ConflictBuilder::new_cost(&dcs, view, rows.len()).build(view, &rows)
                            }
                            _ => build_conflict_graph_naive(view, &rows, &dcs),
                        };
                        assert_eq!(g.n_edges(), static_edges);
                        g
                    })
                });
            }
        }
    }
    group.finish();
}

fn bench_dc_error(c: &mut Criterion) {
    let opts = ExperimentOpts {
        scale_factor: 0.02,
        knobs: [("areas".to_owned(), 8)].into_iter().collect(),
        ..ExperimentOpts::default()
    };
    let mut group = c.benchmark_group("dc_error_scan");
    group.sample_size(10);
    for &label in &[1u32, 5] {
        let data = opts.dataset(label, None, 0);
        for (name, dcs) in [
            ("good", opts.dcs(DcSet::Good)),
            ("all", opts.dcs(DcSet::All)),
        ] {
            let id = format!("{label}x_{name}");
            let truth = data.ground_truth().clone();
            group.bench_with_input(BenchmarkId::from_parameter(id), &truth, |b, truth| {
                b.iter(|| {
                    let e = dc_error(truth, &dcs).unwrap();
                    assert_eq!(e, 0.0);
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_conflict_build, bench_dc_error);
criterion_main!(benches);
