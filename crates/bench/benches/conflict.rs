//! Micro-benchmark: conflict hypergraph construction + DC-error evaluation
//! (the edge-enumeration cost that dominates Phase II on dense DC sets).

use cextend_bench::ExperimentOpts;
use cextend_core::metrics::dc_error;
use cextend_workloads::DcSet;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_dc_error(c: &mut Criterion) {
    let opts = ExperimentOpts {
        scale_factor: 0.02,
        knobs: [("areas".to_owned(), 8)].into_iter().collect(),
        ..ExperimentOpts::default()
    };
    let mut group = c.benchmark_group("dc_error_scan");
    group.sample_size(10);
    for &label in &[1u32, 5] {
        let data = opts.dataset(label, None, 0);
        for (name, dcs) in [
            ("good", opts.dcs(DcSet::Good)),
            ("all", opts.dcs(DcSet::All)),
        ] {
            let id = format!("{label}x_{name}");
            let truth = data.ground_truth().clone();
            group.bench_with_input(BenchmarkId::from_parameter(id), &truth, |b, truth| {
                b.iter(|| {
                    let e = dc_error(truth, &dcs).unwrap();
                    assert_eq!(e, 0.0);
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dc_error);
criterion_main!(benches);
