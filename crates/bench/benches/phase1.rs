//! Micro-benchmarks for the Phase 1 rewrite: Algorithm 2's Hasse
//! recursion and leftover completion on census- and dcdense-shaped inputs,
//! each measured three ways — the retained scalar oracle, the
//! code-compressed path serial, and the compressed path at 4 workers. All
//! three produce bit-identical views (the equivalence tests assert it);
//! only the time differs.

use cextend_bench::ExperimentOpts;
use cextend_constraints::{HasseDiagram, RelationshipMatrix};
use cextend_core::phase1_internals::{
    complete_leftovers, complete_leftovers_scalar, run_hasse, run_hasse_scalar, P1,
};
use cextend_core::{CExtensionInstance, SolverConfig};
use cextend_workloads::{CcFamily, DcSet};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

/// A small-scale instance shaped like the named paper workload.
fn instance_for(workload: &str) -> CExtensionInstance {
    let opts = ExperimentOpts {
        workload: workload.to_owned(),
        scale_factor: 0.02,
        ..ExperimentOpts::default()
    };
    let data = opts.dataset(5, None, 0);
    let ccs = opts.ccs(CcFamily::Good, 100, &data, 0);
    data.to_instance(ccs, opts.dcs(DcSet::Good)).unwrap()
}

fn bench_hasse(c: &mut Criterion) {
    for workload in ["census", "dcdense"] {
        let instance = instance_for(workload);
        let config = SolverConfig::hybrid();
        let matrix = RelationshipMatrix::build(&instance.ccs);
        let hasse = HasseDiagram::build(&matrix);
        let comps: Vec<&[usize]> = hasse.components().iter().map(|c| c.as_slice()).collect();
        let mut group = c.benchmark_group(format!("phase1_hasse/{workload}"));
        group.sample_size(10);
        group.bench_function("scalar", |b| {
            b.iter_batched(
                || P1::build(&instance, &config).unwrap(),
                |mut p1| run_hasse_scalar(&mut p1, &instance.ccs, &hasse, &comps).unwrap(),
                BatchSize::PerIteration,
            )
        });
        group.bench_function("compressed-serial", |b| {
            b.iter_batched(
                || P1::build(&instance, &config).unwrap(),
                |mut p1| run_hasse(&mut p1, &instance.ccs, &hasse, &comps, false, None).unwrap(),
                BatchSize::PerIteration,
            )
        });
        group.bench_function("compressed-parallel4", |b| {
            b.iter_batched(
                || P1::build(&instance, &config).unwrap(),
                |mut p1| run_hasse(&mut p1, &instance.ccs, &hasse, &comps, true, Some(4)).unwrap(),
                BatchSize::PerIteration,
            )
        });
        group.finish();
    }
}

fn bench_leftovers(c: &mut Criterion) {
    for workload in ["census", "dcdense"] {
        let instance = instance_for(workload);
        let config = SolverConfig::hybrid();
        let matrix = RelationshipMatrix::build(&instance.ccs);
        let hasse = HasseDiagram::build(&matrix);
        let comps: Vec<&[usize]> = hasse.components().iter().map(|c| c.as_slice()).collect();
        // Setup replays the recursion so the routine sees the real
        // leftover population (partially assigned rows included).
        let after_hasse = || {
            let mut p1 = P1::build(&instance, &config).unwrap();
            run_hasse(&mut p1, &instance.ccs, &hasse, &comps, false, None).unwrap();
            p1
        };
        let mut group = c.benchmark_group(format!("phase1_leftovers/{workload}"));
        group.sample_size(10);
        group.bench_function("scalar", |b| {
            b.iter_batched(
                after_hasse,
                |mut p1| complete_leftovers_scalar(&mut p1, &instance.ccs).unwrap(),
                BatchSize::PerIteration,
            )
        });
        group.bench_function("compressed-serial", |b| {
            b.iter_batched(
                after_hasse,
                |mut p1| complete_leftovers(&mut p1, &instance.ccs, false, None).unwrap(),
                BatchSize::PerIteration,
            )
        });
        group.bench_function("compressed-parallel4", |b| {
            b.iter_batched(
                after_hasse,
                |mut p1| complete_leftovers(&mut p1, &instance.ccs, true, Some(4)).unwrap(),
                BatchSize::PerIteration,
            )
        });
        group.finish();
    }
}

criterion_group!(benches, bench_hasse, bench_leftovers);
criterion_main!(benches);
