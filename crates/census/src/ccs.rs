//! The cardinality-constraint families of Table 5.
//!
//! Each CC combines an `R1` predicate row (an `Age` interval, a `Rel` code
//! and optionally `Multi-ling`) with an `R2` condition (a Tenure-Area pair
//! or an Area alone), and its target is *measured on the hidden ground
//! truth* — so the CC set is simultaneously satisfiable by construction,
//! exactly as targets measured from real data would be.
//!
//! `S_good` contains no intersecting pair (Definition 4.4): its `R1` rows
//! group into containment chains, and chains of size > 1 are instantiated
//! as whole bundles sharing one `R2` condition, because a strictly nested
//! `R1` pair with diverging `R2` conditions is *intersecting* under the
//! paper's definitions (see Example 4.5). Singleton rows — pairwise
//! disjoint or identical — combine freely with every `R2` condition.
//! `S_bad` samples its (intersecting) rows freely.

use crate::generator::CensusData;
use cextend_constraints::{CardinalityConstraint, NormalizedCond};
use cextend_table::{fk_join, Atom, Predicate, Relation, ValueSet};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which Table 5 family to draw from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CcFamily {
    /// No intersecting pairs; Algorithm 2 alone can solve it exactly.
    Good,
    /// Intersecting `Age` intervals force the ILP path.
    Bad,
}

/// One `R1` predicate row of Table 5.
#[derive(Clone, Copy, Debug)]
struct PredRow {
    lo: i64,
    hi: i64,
    rel: &'static str,
    multi: Option<i64>,
}

const fn row(lo: i64, hi: i64, rel: &'static str, multi: Option<i64>) -> PredRow {
    PredRow { lo, hi, rel, multi }
}

/// Table 5, left column (`S_good`): 27 rows.
const GOOD_ROWS: [PredRow; 27] = [
    row(18, 114, "Owner", Some(0)),
    row(18, 114, "Spouse", Some(1)),
    row(0, 10, "Biological child", None),
    row(6, 10, "Biological child", None),
    row(2, 5, "Biological child", None),
    row(3, 5, "Biological child", None),
    row(3, 5, "Biological child", Some(0)),
    row(11, 18, "Biological child", None),
    row(11, 13, "Biological child", None),
    row(14, 18, "Biological child", None),
    row(19, 30, "Biological child", None),
    row(22, 30, "Biological child", None),
    row(25, 30, "Biological child", Some(1)),
    row(18, 39, "Father/Mother", None),
    row(40, 85, "Father/Mother", Some(0)),
    row(40, 85, "Father/Mother", Some(1)),
    row(15, 85, "House/Room mate", Some(0)),
    row(15, 85, "House/Room mate", Some(1)),
    row(18, 30, "Grandchild", Some(0)),
    row(18, 30, "Grandchild", Some(1)),
    row(18, 114, "Unmarried partner", Some(1)),
    row(0, 30, "Step child", None),
    row(0, 20, "Step child", None),
    row(21, 30, "Step child", Some(1)),
    row(19, 40, "Adopted child", None),
    row(25, 40, "Adopted child", Some(1)),
    row(31, 40, "Adopted child", Some(1)),
];

/// Table 5, right column (`S_bad`): 31 rows with overlapping intervals.
const BAD_ROWS: [PredRow; 31] = [
    row(18, 114, "Owner", Some(0)),
    row(18, 114, "Spouse", Some(1)),
    row(0, 10, "Biological child", None),
    row(6, 10, "Biological child", None),
    row(2, 5, "Biological child", None),
    row(3, 5, "Biological child", Some(0)),
    row(11, 18, "Biological child", None),
    row(11, 13, "Biological child", None),
    row(14, 18, "Biological child", None),
    row(19, 30, "Biological child", None),
    row(22, 30, "Biological child", None),
    row(40, 85, "Father/Mother", Some(0)),
    row(40, 85, "Father/Mother", Some(1)),
    row(15, 85, "House/Room mate", Some(0)),
    row(15, 85, "House/Room mate", Some(1)),
    row(18, 30, "Grandchild", Some(0)),
    row(18, 30, "Grandchild", Some(1)),
    row(18, 114, "Unmarried partner", Some(1)),
    row(0, 30, "Step child", None),
    row(21, 114, "Spouse", Some(1)),
    row(21, 64, "Spouse", Some(1)),
    row(18, 39, "Spouse", Some(1)),
    row(18, 85, "Spouse", Some(1)),
    row(40, 85, "Spouse", Some(1)),
    row(65, 114, "Father/Mother", Some(1)),
    row(0, 39, "Grandchild", Some(1)),
    row(22, 39, "Grandchild", Some(1)),
    row(0, 21, "Step child", None),
    row(19, 39, "Adopted child", None),
    row(25, 39, "Adopted child", Some(1)),
    row(31, 39, "Adopted child", Some(1)),
];

impl PredRow {
    fn cond(&self) -> NormalizedCond {
        let mut sets = vec![
            ("Age".to_owned(), ValueSet::range(self.lo, self.hi)),
            (
                "Rel".to_owned(),
                ValueSet::sym(cextend_table::Sym::intern(self.rel)),
            ),
        ];
        if let Some(m) = self.multi {
            sets.push(("Multi-ling".to_owned(), ValueSet::int(m)));
        }
        NormalizedCond::from_sets(sets)
    }
}

/// The `R2` condition pool: every existing Tenure-Area pair plus every Area
/// alone (the paper: 469 Tenure-Area values and 121 Area-only values).
pub fn r2_condition_pool(housing: &Relation) -> Vec<NormalizedCond> {
    let tenure = housing.schema().col_id("Tenure").expect("Housing.Tenure");
    let area = housing.schema().col_id("Area").expect("Housing.Area");
    let pairs = cextend_table::marginals::distinct_combos(housing, &[tenure, area]);
    let mut out: Vec<NormalizedCond> = pairs
        .iter()
        .map(|(combo, _)| {
            NormalizedCond::from_predicate(&Predicate::new(vec![
                Atom::eq("Tenure", combo[0]),
                Atom::eq("Area", combo[1]),
            ]))
            .expect("equality atoms normalize")
        })
        .collect();
    for v in housing.distinct_values(area) {
        out.push(
            NormalizedCond::from_predicate(&Predicate::new(vec![Atom::eq("Area", v)]))
                .expect("equality atoms normalize"),
        );
    }
    out
}

/// Union-find grouping of predicate rows into containment components.
fn containment_components(rows: &[PredRow]) -> Vec<Vec<usize>> {
    let conds: Vec<NormalizedCond> = rows.iter().map(PredRow::cond).collect();
    let n = rows.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let related = conds[i].implies(&conds[j])
                || conds[j].implies(&conds[i])
                || !(conds[i].disjoint_with(&conds[j]));
            // Overlapping-but-incomparable rows would be intersecting; the
            // good table has none by construction (asserted in tests).
            if related {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    let mut comps: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for i in 0..n {
        let root = find(&mut parent, i);
        comps.entry(root).or_default().push(i);
    }
    comps.into_values().collect()
}

fn make_cc(
    name: String,
    row: &PredRow,
    r2: &NormalizedCond,
    truth_join: &Relation,
) -> CardinalityConstraint {
    let r1 = row.cond();
    let combined = r1.intersect(r2).to_predicate();
    let target = combined
        .count(truth_join)
        .expect("ground-truth join carries all CC columns");
    CardinalityConstraint::new(name, r1, r2.clone(), target)
}

/// Generates `n` CCs of the given family over `data`, with ground-truth
/// targets. `n` is capped by the pool size (good family) or by the distinct
/// (row, condition) pairs (bad family).
pub fn generate_ccs(
    family: CcFamily,
    n: usize,
    data: &CensusData,
    seed: u64,
) -> Vec<CardinalityConstraint> {
    generate_ccs_from(family, n, &data.ground_truth, &data.housing, seed)
}

/// Like [`generate_ccs`], but borrowing the un-erased `Persons` ground
/// truth and `Housing` directly — callers holding the relations under
/// another shape (e.g. the workload layer) need not assemble a
/// [`CensusData`].
pub fn generate_ccs_from(
    family: CcFamily,
    n: usize,
    ground_truth: &Relation,
    housing: &Relation,
    seed: u64,
) -> Vec<CardinalityConstraint> {
    let mut rng = StdRng::seed_from_u64(seed);
    let truth_join = fk_join(ground_truth, housing).expect("ground truth joins cleanly");
    let conds = r2_condition_pool(housing);
    assert!(!conds.is_empty(), "Housing must be non-empty");
    let mut ccs: Vec<CardinalityConstraint> = Vec::with_capacity(n);
    match family {
        CcFamily::Good => {
            let comps = containment_components(&GOOD_ROWS);
            // Multi-row chains first, one bundle each with a random R2 cond.
            for comp in comps.iter().filter(|c| c.len() > 1) {
                let cond = conds[rng.gen_range(0..conds.len())].clone();
                for &i in comp {
                    if ccs.len() >= n {
                        break;
                    }
                    ccs.push(make_cc(
                        format!("good-{}", ccs.len()),
                        &GOOD_ROWS[i],
                        &cond,
                        &truth_join,
                    ));
                }
            }
            // Then singleton rows crossed with the full condition pool.
            let singles: Vec<usize> = comps
                .iter()
                .filter(|c| c.len() == 1)
                .map(|c| c[0])
                .collect();
            let mut pool: Vec<(usize, usize)> = singles
                .iter()
                .flat_map(|&r| (0..conds.len()).map(move |c| (r, c)))
                .collect();
            pool.shuffle(&mut rng);
            for (r, c) in pool {
                if ccs.len() >= n {
                    break;
                }
                ccs.push(make_cc(
                    format!("good-{}", ccs.len()),
                    &GOOD_ROWS[r],
                    &conds[c],
                    &truth_join,
                ));
            }
        }
        CcFamily::Bad => {
            let mut pool: Vec<(usize, usize)> = (0..BAD_ROWS.len())
                .flat_map(|r| (0..conds.len()).map(move |c| (r, c)))
                .collect();
            pool.shuffle(&mut rng);
            for (r, c) in pool {
                if ccs.len() >= n {
                    break;
                }
                ccs.push(make_cc(
                    format!("bad-{}", ccs.len()),
                    &BAD_ROWS[r],
                    &conds[c],
                    &truth_join,
                ));
            }
        }
    }
    ccs
}

use rand::Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, CensusConfig};
    use cextend_constraints::{CcRelationship, RelationshipMatrix};

    fn data() -> CensusData {
        generate(&CensusConfig {
            scale: 0.02,
            n_areas: 6,
            ..CensusConfig::default()
        })
    }

    #[test]
    fn table5_row_counts() {
        assert_eq!(GOOD_ROWS.len(), 27);
        assert_eq!(BAD_ROWS.len(), 31);
    }

    #[test]
    fn r2_pool_covers_pairs_and_areas() {
        let d = data();
        let pool = r2_condition_pool(&d.housing);
        // Up to 6 areas × 4 tenures + 6 area-only conditions.
        assert!(pool.len() > 6);
        assert!(pool.iter().any(|c| c.get("Tenure").is_some()));
        assert!(pool.iter().any(|c| c.get("Tenure").is_none()));
    }

    #[test]
    fn good_family_has_no_intersecting_pairs() {
        let d = data();
        let ccs = generate_ccs(CcFamily::Good, 80, &d, 1);
        assert_eq!(ccs.len(), 80);
        let m = RelationshipMatrix::build(&ccs);
        for i in 0..ccs.len() {
            for j in (i + 1)..ccs.len() {
                assert_ne!(
                    m.get(i, j),
                    CcRelationship::Intersecting,
                    "{} vs {}",
                    ccs[i],
                    ccs[j]
                );
            }
        }
    }

    #[test]
    fn bad_family_has_intersecting_pairs() {
        let d = data();
        let ccs = generate_ccs(CcFamily::Bad, 80, &d, 1);
        let m = RelationshipMatrix::build(&ccs);
        assert!(
            !m.intersecting_ccs().is_empty(),
            "bad family should force the ILP path"
        );
    }

    #[test]
    fn targets_are_ground_truth_counts() {
        let d = data();
        let truth_join = fk_join(&d.ground_truth, &d.housing).unwrap();
        for cc in generate_ccs(CcFamily::Good, 40, &d, 2) {
            assert_eq!(cc.count_in(&truth_join).unwrap(), cc.target, "{cc}");
        }
        for cc in generate_ccs(CcFamily::Bad, 40, &d, 2) {
            assert_eq!(cc.count_in(&truth_join).unwrap(), cc.target, "{cc}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let d = data();
        let a = generate_ccs(CcFamily::Bad, 30, &d, 9);
        let b = generate_ccs(CcFamily::Bad, 30, &d, 9);
        assert_eq!(a, b);
        let c = generate_ccs(CcFamily::Bad, 30, &d, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn good_rows_contain_the_expected_chains() {
        let comps = containment_components(&GOOD_ROWS);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = comps.iter().map(Vec::len).collect();
            s.sort_unstable();
            s
        };
        // 10 singleton rows + chains {Bio×3 of sizes 5,3,3} + Step(3) +
        // Adopted(3).
        assert_eq!(sizes, vec![1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 3, 3, 3, 3, 5]);
    }
}
