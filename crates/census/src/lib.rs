//! # cextend-census — the paper's evaluation workload, synthesized
//!
//! The paper evaluates on a dataset derived from the 2010 U.S. Decennial
//! Census \[44\], which is access-restricted. This crate is the documented
//! substitution (DESIGN.md): a seeded generator reproducing the published
//! schema — `Persons(pid, Rel, Age, Multi-ling, hid)` /
//! `Housing(hid, Tenure, Area, …)` — Table 1's scale ratios, the 12 denial
//! constraints of Table 4 and the good/bad CC families of Table 5, with CC
//! targets measured on a hidden ground-truth assignment before the FK
//! column is erased.
//!
//! ```
//! use cextend_census::{generate, generate_ccs, s_good_dc, CcFamily, CensusConfig};
//!
//! let data = generate(&CensusConfig { scale: 0.01, ..CensusConfig::default() });
//! let ccs = generate_ccs(CcFamily::Good, 25, &data, 7);
//! let dcs = s_good_dc();
//! assert_eq!(data.persons.n_rows(), data.ground_truth.n_rows());
//! assert_eq!(ccs.len(), 25);
//! assert!(!dcs.is_empty());
//! ```

#![warn(missing_docs)]

mod ccs;
mod dcs;
pub mod domains;
mod generator;
pub mod scales;

pub use ccs::{generate_ccs, generate_ccs_from, r2_condition_pool, CcFamily};
pub use dcs::{s_all_dc, s_good_dc, table4_row};
pub use generator::{generate, CensusConfig, CensusData};
