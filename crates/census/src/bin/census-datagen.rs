//! CLI: generate and export a Census-style C-Extension instance as CSV.
//!
//! ```sh
//! cargo run --release -p cextend-census --bin census-datagen -- \
//!     --scale 0.1 --areas 12 --housing-cols 4 --seed 7 --out data/
//! ```
//!
//! Writes `persons.csv` (FK column empty — the solver input),
//! `housing.csv`, and `ground_truth.csv` (the hidden assignment CC targets
//! are measured on).

use cextend_census::{generate, CensusConfig};
use cextend_table::csv::write_csv;
use std::io::BufWriter;
use std::process::ExitCode;

const USAGE: &str = "\
usage: census-datagen [--scale F] [--areas N] [--housing-cols N] [--seed S] --out DIR
  --scale F         fraction of the paper's 1x (default 0.1 = 982 households)
  --areas N         distinct Area codes (default 24)
  --housing-cols N  2|4|6|8|10 non-key Housing columns (default 2)
  --seed S          RNG seed (default 42)
  --out DIR         output directory (required)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = CensusConfig::default();
    let mut out: Option<std::path::PathBuf> = None;
    fn take(args: &[String], i: &mut usize, name: &str) -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{name} needs a value"))
    }
    let mut i = 0;
    let mut parse_all = || -> Result<(), String> {
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    config.scale = take(&args, &mut i, "--scale")?
                        .parse()
                        .map_err(|e| format!("{e}"))?
                }
                "--areas" => {
                    config.n_areas = take(&args, &mut i, "--areas")?
                        .parse()
                        .map_err(|e| format!("{e}"))?
                }
                "--housing-cols" => {
                    config.n_housing_cols = take(&args, &mut i, "--housing-cols")?
                        .parse()
                        .map_err(|e| format!("{e}"))?
                }
                "--seed" => {
                    config.seed = take(&args, &mut i, "--seed")?
                        .parse()
                        .map_err(|e| format!("{e}"))?
                }
                "--out" => out = Some(take(&args, &mut i, "--out")?.into()),
                "-h" | "--help" => return Err(USAGE.to_owned()),
                other => return Err(format!("unknown option `{other}`\n\n{USAGE}")),
            }
            i += 1;
        }
        Ok(())
    };
    if let Err(msg) = parse_all() {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }
    let Some(dir) = out else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let data = generate(&config);
    for (name, rel) in [
        ("persons.csv", &data.persons),
        ("housing.csv", &data.housing),
        ("ground_truth.csv", &data.ground_truth),
    ] {
        let path = dir.join(name);
        let file = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let mut w = BufWriter::new(file);
        if let Err(e) = write_csv(rel, &mut w) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {} ({} rows)", path.display(), rel.n_rows());
    }
    println!(
        "{} persons across {} households (persons/household {:.3})",
        data.n_persons(),
        data.n_households(),
        data.n_persons() as f64 / data.n_households() as f64
    );
    ExitCode::SUCCESS
}
