//! Seeded synthetic Census generator.
//!
//! The paper evaluates on a dataset derived from the 2010 U.S. Decennial
//! Census \[44\], which is access-restricted; this generator is the
//! substitution documented in DESIGN.md. It reproduces what the algorithms
//! actually consume: the published schema, Table 1's household/person
//! ratio (~2.556), a `Rel`/`Age` structure consistent with every DC of
//! Table 4 (so a zero-error solution exists), and a hidden ground-truth FK
//! assignment from which CC targets are measured before the FK column is
//! erased.

use crate::domains::{area_county, area_name, area_state, MAX_AGE, TENURES};
use cextend_table::{ColumnDef, Dtype, Relation, RelationBuilder, Schema, Sym};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct CensusConfig {
    /// Data scale: `1.0` matches the paper's 1× (9,820 households,
    /// ~25,099 persons). Benchmarks typically use 0.02–2.0.
    pub scale: f64,
    /// Number of distinct `Area` codes (the paper's Tenure-Area conditions
    /// cross these with the four tenure codes).
    pub n_areas: usize,
    /// Number of non-key `Housing` columns: 2, 4, 6, 8 or 10, growing as in
    /// Section 6.1: (Tenure, Area) → +(County, St) → +(Div, Reg) →
    /// +(Water, Bath) → +(Fridge, Stove).
    pub n_housing_cols: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CensusConfig {
    fn default() -> Self {
        CensusConfig {
            scale: 0.1,
            n_areas: 24,
            n_housing_cols: 2,
            seed: 42,
        }
    }
}

/// Generated data: the C-Extension input plus the hidden ground truth.
#[derive(Clone, Debug)]
pub struct CensusData {
    /// `Persons` with the `hid` column erased (the solver's `R1`).
    pub persons: Relation,
    /// `Housing` (the solver's `R2`).
    pub housing: Relation,
    /// `Persons` with the true `hid` values (used to measure CC targets and
    /// as an existence witness for a zero-error solution).
    pub ground_truth: Relation,
}

impl CensusData {
    /// Number of persons.
    pub fn n_persons(&self) -> usize {
        self.persons.n_rows()
    }

    /// Number of households.
    pub fn n_households(&self) -> usize {
        self.housing.n_rows()
    }
}

fn persons_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::key("pid", Dtype::Int),
        ColumnDef::attr("Age", Dtype::Int),
        ColumnDef::attr("Rel", Dtype::Str),
        ColumnDef::attr("Multi-ling", Dtype::Int),
        ColumnDef::foreign_key("hid", Dtype::Int),
    ])
    .expect("static schema")
}

fn housing_schema(n_cols: usize) -> Schema {
    assert!(
        matches!(n_cols, 2 | 4 | 6 | 8 | 10),
        "Housing supports 2, 4, 6, 8 or 10 non-key columns, not {n_cols}"
    );
    let mut cols = vec![
        ColumnDef::key("hid", Dtype::Int),
        ColumnDef::attr("Tenure", Dtype::Str),
        ColumnDef::attr("Area", Dtype::Str),
    ];
    let extras = [
        ("County", Dtype::Str),
        ("St", Dtype::Str),
        ("Div", Dtype::Str),
        ("Reg", Dtype::Str),
        ("Water", Dtype::Int),
        ("Bath", Dtype::Int),
        ("Fridge", Dtype::Int),
        ("Stove", Dtype::Int),
    ];
    for (name, dtype) in extras.iter().take(n_cols - 2) {
        cols.push(ColumnDef::attr(name, *dtype));
    }
    Schema::new(cols).expect("static schema")
}

/// Samples an integer uniformly from an inclusive, already-clamped range.
fn sample_range(rng: &mut StdRng, lo: i64, hi: i64) -> i64 {
    debug_assert!(lo <= hi);
    rng.gen_range(lo..=hi)
}

/// Generates a dataset.
pub fn generate(config: &CensusConfig) -> CensusData {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_households = ((9_820.0 * config.scale).round() as usize).max(1);
    let n_areas = config.n_areas.max(1);

    // Columnar accumulators, bulk-loaded through `RelationBuilder` at the
    // end — at paper scale (10⁶ persons) this avoids a million boxed-row
    // round-trips through `push_row`.
    let est_persons = (n_households as f64 * 2.6) as usize;
    let mut h_hid: Vec<i64> = Vec::with_capacity(n_households);
    let mut h_tenure: Vec<Sym> = Vec::with_capacity(n_households);
    let mut h_area: Vec<Sym> = Vec::with_capacity(n_households);
    let mut h_county: Vec<Sym> = Vec::new();
    let mut h_st: Vec<Sym> = Vec::new();
    let mut h_div: Vec<Sym> = Vec::new();
    let mut h_reg: Vec<Sym> = Vec::new();
    let mut h_water: Vec<i64> = Vec::new();
    let mut h_bath: Vec<i64> = Vec::new();
    let mut h_fridge: Vec<i64> = Vec::new();
    let mut h_stove: Vec<i64> = Vec::new();
    let mut p_pid: Vec<i64> = Vec::with_capacity(est_persons);
    let mut p_age: Vec<i64> = Vec::with_capacity(est_persons);
    let mut p_rel: Vec<Sym> = Vec::with_capacity(est_persons);
    let mut p_multi: Vec<i64> = Vec::with_capacity(est_persons);
    let mut p_hid: Vec<i64> = Vec::with_capacity(est_persons);

    let mut pid = 0i64;
    let mut push_person = |rng: &mut StdRng, age: i64, rel: &str, hid: i64| {
        pid += 1;
        let multi = i64::from(rng.gen_bool(0.25));
        p_pid.push(pid);
        p_age.push(age.clamp(0, MAX_AGE));
        p_rel.push(Sym::intern(rel));
        p_multi.push(multi);
        p_hid.push(hid);
    };

    for h in 0..n_households {
        let hid = h as i64 + 1;
        // Area: mildly skewed toward low codes, like real population counts.
        let area = loop {
            let a = rng.gen_range(0..n_areas);
            if rng.gen_bool(1.0 / (1.0 + a as f64 / 8.0)) {
                break a;
            }
        };
        let tenure = TENURES[match rng.gen_range(0..100) {
            0..=24 => 0,
            25..=59 => 1,
            60..=89 => 2,
            _ => 3,
        }];
        h_hid.push(hid);
        h_tenure.push(Sym::intern(tenure));
        h_area.push(Sym::intern(&area_name(area)));
        if config.n_housing_cols >= 4 {
            let (st, div, reg) = area_state(area);
            h_county.push(Sym::intern(&area_county(area)));
            h_st.push(Sym::intern(st));
            if config.n_housing_cols >= 6 {
                h_div.push(Sym::intern(div));
                h_reg.push(Sym::intern(reg));
            }
            if config.n_housing_cols >= 8 {
                h_water.push(i64::from(rng.gen_bool(0.97)));
                h_bath.push(i64::from(rng.gen_bool(0.95)));
            }
            if config.n_housing_cols >= 10 {
                h_fridge.push(i64::from(rng.gen_bool(0.9)));
                h_stove.push(i64::from(rng.gen_bool(0.92)));
            }
        }

        // --- Household members, honoring every Table 4 DC. ----------------
        // Owner (exactly one per household: dc9).
        let a = sample_range(&mut rng, 21, 95);
        push_person(&mut rng, a, "Owner", hid);

        // At most one spouse OR unmarried partner (dc12), age in
        // [A-50, A+50] (dc3).
        if rng.gen_bool(0.45) {
            let rel = if rng.gen_bool(0.85) {
                "Spouse"
            } else {
                "Unmarried partner"
            };
            let age = sample_range(&mut rng, (a - 50).max(16), (a + 50).min(MAX_AGE));
            push_person(&mut rng, age, rel, hid);
        }

        // Children (bio/adopted/step): ages in [A-50, A-12], the
        // intersection of dc1 and dc2 so the owner's language never matters.
        let n_children = match rng.gen_range(0..100) {
            0..=44 => 0,
            45..=69 => 1,
            70..=87 => 2,
            _ => 3,
        };
        for _ in 0..n_children {
            let rel = match rng.gen_range(0..100) {
                0..=84 => "Biological child",
                85..=92 => "Step child",
                _ => "Adopted child",
            };
            let age = sample_range(&mut rng, (a - 50).max(0), a - 12);
            push_person(&mut rng, age, rel, hid);
        }

        // Occasional other members.
        if rng.gen_bool(0.04) {
            // Sibling: [A-35, A+35] (dc4).
            let age = sample_range(&mut rng, (a - 35).max(0), (a + 35).min(MAX_AGE));
            push_person(&mut rng, age, "Sibling", hid);
        }
        if a <= 94 && rng.gen_bool(0.03) {
            // Parent / parent-in-law: [A+12, A+115], only when A ≤ 94 (dc11).
            let rel = if rng.gen_bool(0.7) {
                "Father/Mother"
            } else {
                "Parent-in-law"
            };
            let age = sample_range(&mut rng, a + 12, (a + 115).min(MAX_AGE));
            push_person(&mut rng, age, rel, hid);
        }
        if a >= 30 && rng.gen_bool(0.025) {
            // Grandchild: [A-115, A-30], owner at least 30 (dc6, dc10).
            let age = sample_range(&mut rng, (a - 115).max(0), a - 30);
            push_person(&mut rng, age, "Grandchild", hid);
        }
        if a >= 30 && rng.gen_bool(0.02) {
            // Child-in-law: [A-69, A-1] (dc7), owner at least 30 (dc10).
            let age = sample_range(&mut rng, (a - 69).max(0), a - 1);
            push_person(&mut rng, age, "Child-in-law", hid);
        }
        if rng.gen_bool(0.03) {
            // Foster child: [A-69, A-12] (dc8).
            let age = sample_range(&mut rng, (a - 69).max(0), a - 12);
            push_person(&mut rng, age, "Foster child", hid);
        }
        if rng.gen_bool(0.05) {
            // Housemates are unconstrained.
            let age = sample_range(&mut rng, 15, 85);
            push_person(&mut rng, age, "House/Room mate", hid);
        }
    }

    let housing_schema = housing_schema(config.n_housing_cols);
    let mut hb = RelationBuilder::new("Housing", housing_schema.clone(), n_households);
    let col = |name: &str| housing_schema.col_id(name).expect("static schema");
    hb.append_ints(col("hid"), &h_hid).expect("int column");
    hb.append_syms(col("Tenure"), &h_tenure)
        .expect("str column");
    hb.append_syms(col("Area"), &h_area).expect("str column");
    for (name, chunk) in [
        ("County", &h_county),
        ("St", &h_st),
        ("Div", &h_div),
        ("Reg", &h_reg),
    ] {
        if housing_schema.col_id(name).is_some() {
            hb.append_syms(col(name), chunk).expect("str column");
        }
    }
    for (name, chunk) in [
        ("Water", &h_water),
        ("Bath", &h_bath),
        ("Fridge", &h_fridge),
        ("Stove", &h_stove),
    ] {
        if housing_schema.col_id(name).is_some() {
            hb.append_ints(col(name), chunk).expect("int column");
        }
    }
    let housing = hb.freeze().expect("aligned columns");

    let truth_schema = persons_schema();
    let mut tb = RelationBuilder::new("Persons", truth_schema.clone(), p_pid.len());
    let pcol = |name: &str| truth_schema.col_id(name).expect("static schema");
    tb.append_ints(pcol("pid"), &p_pid).expect("int column");
    tb.append_ints(pcol("Age"), &p_age).expect("int column");
    tb.append_syms(pcol("Rel"), &p_rel).expect("str column");
    tb.append_ints(pcol("Multi-ling"), &p_multi)
        .expect("int column");
    tb.append_ints(pcol("hid"), &p_hid).expect("int column");
    let truth = tb.freeze().expect("aligned columns");

    let mut persons = truth.clone();
    let fk = persons.schema().fk_col().expect("static schema");
    persons.clear_column(fk);
    CensusData {
        persons,
        housing,
        ground_truth: truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcs::s_all_dc;
    use cextend_table::Value;

    fn small() -> CensusData {
        generate(&CensusConfig {
            scale: 0.05,
            ..CensusConfig::default()
        })
    }

    #[test]
    fn shapes_match_table1_ratios() {
        let data = small();
        assert_eq!(data.n_households(), 491); // 9820 × 0.05
        let ratio = data.n_persons() as f64 / data.n_households() as f64;
        assert!(
            (2.3..2.8).contains(&ratio),
            "persons per household {ratio} drifted from Table 1's ≈2.556"
        );
        assert_eq!(data.persons.n_rows(), data.ground_truth.n_rows());
    }

    #[test]
    fn input_fk_is_erased_but_truth_is_complete() {
        let data = small();
        let fk = data.persons.schema().fk_col().unwrap();
        assert!(data.persons.column_is_missing(fk));
        assert!(data.ground_truth.column_is_complete(fk));
    }

    #[test]
    fn ground_truth_satisfies_every_dc() {
        let data = small();
        let err = cextend_core::metrics::dc_error(&data.ground_truth, &s_all_dc()).unwrap();
        assert_eq!(err, 0.0, "generator produced a DC-violating household");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small();
        let b = small();
        assert!(cextend_table::relations_equal_ordered(
            &a.persons, &b.persons
        ));
        assert!(cextend_table::relations_equal_ordered(
            &a.housing, &b.housing
        ));
        let c = generate(&CensusConfig {
            scale: 0.05,
            seed: 43,
            ..CensusConfig::default()
        });
        assert!(!cextend_table::relations_equal_ordered(
            &a.ground_truth,
            &c.ground_truth
        ));
    }

    #[test]
    fn housing_column_progression() {
        for n in [2usize, 4, 6, 8, 10] {
            let data = generate(&CensusConfig {
                scale: 0.01,
                n_housing_cols: n,
                ..CensusConfig::default()
            });
            assert_eq!(data.housing.schema().len(), n + 1, "key + {n} attrs");
        }
    }

    #[test]
    #[should_panic(expected = "Housing supports")]
    fn odd_column_count_rejected() {
        generate(&CensusConfig {
            scale: 0.01,
            n_housing_cols: 3,
            ..CensusConfig::default()
        });
    }

    #[test]
    fn every_household_has_exactly_one_owner() {
        let data = small();
        let truth = &data.ground_truth;
        let fk = truth.schema().fk_col().unwrap();
        let rel = truth.schema().col_id("Rel").unwrap();
        let mut owners: std::collections::HashMap<Value, usize> = std::collections::HashMap::new();
        for r in truth.rows() {
            if truth.get(r, rel) == Some(Value::str("Owner")) {
                *owners.entry(truth.get(r, fk).unwrap()).or_insert(0) += 1;
            }
        }
        assert_eq!(owners.len(), data.n_households());
        assert!(owners.values().all(|&c| c == 1));
    }
}
