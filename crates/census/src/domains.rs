//! Value domains of the Census-derived schema.
//!
//! `Persons(pid, Rel, Age, Multi-ling, hid)` and `Housing(hid, Tenure,
//! Area, …)` follow the paper's Section 6.1. The `Rel` domain is the union
//! of the relationship codes appearing in Tables 4 and 5; `Tenure` uses the
//! four Census tenure codes; `Area` is a configurable-size code set whose
//! crossing with `Tenure` yields the paper's Tenure-Area conditions.

/// Relationship-to-householder codes (order fixed; used by generators).
pub const RELS: [&str; 13] = [
    "Owner",
    "Spouse",
    "Unmarried partner",
    "Biological child",
    "Adopted child",
    "Step child",
    "Foster child",
    "Sibling",
    "Father/Mother",
    "Parent-in-law",
    "Grandchild",
    "Child-in-law",
    "House/Room mate",
];

/// Census tenure codes.
pub const TENURES: [&str; 4] = ["Owned", "Mortgaged", "Rented", "OccupiedFree"];

/// U.S. state codes with their (Division, Region) — the paper notes that
/// `Div` and `Reg` are determined by `St`. A representative subset.
pub const STATES: [(&str, &str, &str); 12] = [
    ("IL", "EastNorthCentral", "Midwest"),
    ("IN", "EastNorthCentral", "Midwest"),
    ("NY", "MiddleAtlantic", "Northeast"),
    ("NJ", "MiddleAtlantic", "Northeast"),
    ("CA", "Pacific", "West"),
    ("WA", "Pacific", "West"),
    ("TX", "WestSouthCentral", "South"),
    ("LA", "WestSouthCentral", "South"),
    ("FL", "SouthAtlantic", "South"),
    ("GA", "SouthAtlantic", "South"),
    ("MA", "NewEngland", "Northeast"),
    ("CO", "Mountain", "West"),
];

/// Maximum age in the data (the paper's DCs use 114/115 as bounds).
pub const MAX_AGE: i64 = 114;

/// Name of area code `i`.
pub fn area_name(i: usize) -> String {
    format!("Area{i:03}")
}

/// The state (and hence division/region) an area code belongs to.
pub fn area_state(i: usize) -> (&'static str, &'static str, &'static str) {
    STATES[i % STATES.len()]
}

/// The county name of an area code (a few areas share one county).
pub fn area_county(i: usize) -> String {
    format!("County{:03}", i / 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_have_expected_sizes() {
        assert_eq!(RELS.len(), 13);
        assert_eq!(TENURES.len(), 4);
        assert_eq!(STATES.len(), 12);
    }

    #[test]
    fn div_and_reg_are_determined_by_state() {
        use std::collections::HashMap;
        let mut seen: HashMap<&str, (&str, &str)> = HashMap::new();
        for i in 0..100 {
            let (st, div, reg) = area_state(i);
            let prev = seen.insert(st, (div, reg));
            if let Some(p) = prev {
                assert_eq!(p, (div, reg), "state {st} mapped to two divisions");
            }
        }
    }

    #[test]
    fn area_names_are_distinct() {
        assert_ne!(area_name(1), area_name(2));
        assert_eq!(area_name(7), "Area007");
    }
}
