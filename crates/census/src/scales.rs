//! The paper's data scales (Table 1).

/// One row of Table 1: scale label, `Persons` rows, `Housing` rows
/// (`|V_join| = |Persons|` by construction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DataScale {
    /// The paper's scale label (1, 2, 5, 10, 40, 80, 120, 160).
    pub label: u32,
    /// Number of `Persons` tuples.
    pub persons: usize,
    /// Number of `Housing` tuples.
    pub housing: usize,
}

/// Table 1 of the paper.
pub const PAPER_SCALES: [DataScale; 8] = [
    DataScale {
        label: 1,
        persons: 25_099,
        housing: 9_820,
    },
    DataScale {
        label: 2,
        persons: 50_039,
        housing: 19_640,
    },
    DataScale {
        label: 5,
        persons: 124_746,
        housing: 49_100,
    },
    DataScale {
        label: 10,
        persons: 249_259,
        housing: 98_200,
    },
    DataScale {
        label: 40,
        persons: 1_015_686,
        housing: 392_800,
    },
    DataScale {
        label: 80,
        persons: 2_043_975,
        housing: 785_600,
    },
    DataScale {
        label: 120,
        persons: 3_064_328,
        housing: 1_178_400,
    },
    DataScale {
        label: 160,
        persons: 4_097_471,
        housing: 1_571_200,
    },
];

/// Looks up a paper scale by its label.
pub fn paper_scale(label: u32) -> Option<DataScale> {
    PAPER_SCALES.iter().copied().find(|s| s.label == label)
}

/// Average persons per household at scale 1× (≈ 2.556).
pub fn persons_per_household() -> f64 {
    PAPER_SCALES[0].persons as f64 / PAPER_SCALES[0].housing as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup() {
        assert_eq!(paper_scale(40).unwrap().persons, 1_015_686);
        assert_eq!(paper_scale(3), None);
    }

    #[test]
    fn scales_grow_roughly_linearly() {
        for s in &PAPER_SCALES {
            let expected_housing = 9_820 * s.label as usize;
            assert_eq!(s.housing, expected_housing, "scale {}", s.label);
            let ratio = s.persons as f64 / s.housing as f64;
            assert!(
                (2.5..2.62).contains(&ratio),
                "scale {} ratio {ratio}",
                s.label
            );
        }
    }
}
