//! The 12 denial constraints of Table 4.
//!
//! Each Table 4 row is a *spec* that lowers to one or more primitive
//! conjunctive FK DCs (a permitted age interval `[A+lo, A+hi]` splits into a
//! "below" and an "above" DC, exactly like `DC_{O,S,low}` / `DC_{O,S,up}` in
//! Figure 2a; a relationship set splits per member). `S_all` uses every row;
//! `S_good` uses rows 1–8, which the paper selected because they create no
//! cliques in the conflict graphs.

use cextend_constraints::{DcAtom, DenialConstraint};
use cextend_table::{CmpOp, Value};

fn unary(var: usize, column: &str, op: CmpOp, value: Value) -> DcAtom {
    DcAtom::Unary {
        var,
        column: column.to_owned(),
        op,
        value,
    }
}

/// `t2.Age ◦ t1.Age + offset`.
fn age_vs_owner(op: CmpOp, offset: i64) -> DcAtom {
    DcAtom::Binary {
        lvar: 1,
        lcol: "Age".to_owned(),
        op,
        rvar: 0,
        rcol: "Age".to_owned(),
        offset,
    }
}

/// Lowers "no `rel` may have an age outside `[A+lo, A+hi]` in a household
/// whose owner satisfies `owner_extra`" into its low/high primitive DCs.
fn age_gap(
    name: &str,
    owner_extra: &[DcAtom],
    rel: &str,
    lo: Option<i64>,
    hi: Option<i64>,
) -> Vec<DenialConstraint> {
    let base = |suffix: &str, bound: DcAtom| {
        let mut atoms = vec![unary(0, "Rel", CmpOp::Eq, Value::str("Owner"))];
        atoms.extend_from_slice(owner_extra);
        atoms.push(unary(1, "Rel", CmpOp::Eq, Value::str(rel)));
        atoms.push(bound);
        DenialConstraint::new(format!("{name}-{rel}-{suffix}"), 2, atoms)
            .expect("static DC construction")
    };
    let mut out = Vec::new();
    if let Some(lo) = lo {
        out.push(base("low", age_vs_owner(CmpOp::Lt, lo)));
    }
    if let Some(hi) = hi {
        out.push(base("up", age_vs_owner(CmpOp::Gt, hi)));
    }
    out
}

/// "No two `rel_a`/`rel_b` tuples may share a household."
fn exclusive_pair(name: &str, rel_a: &str, rel_b: &str) -> DenialConstraint {
    DenialConstraint::new(
        name,
        2,
        vec![
            unary(0, "Rel", CmpOp::Eq, Value::str(rel_a)),
            unary(1, "Rel", CmpOp::Eq, Value::str(rel_b)),
        ],
    )
    .expect("static DC construction")
}

/// "An owner with `owner_atoms` may not live with any `rel`."
fn forbidden_member(name: &str, owner_atoms: &[DcAtom], rel: &str) -> DenialConstraint {
    let mut atoms = vec![unary(0, "Rel", CmpOp::Eq, Value::str("Owner"))];
    atoms.extend_from_slice(owner_atoms);
    atoms.push(unary(1, "Rel", CmpOp::Eq, Value::str(rel)));
    DenialConstraint::new(name, 2, atoms).expect("static DC construction")
}

/// Primitive DCs of one Table 4 row (1-based row numbers).
pub fn table4_row(row: usize) -> Vec<DenialConstraint> {
    let mono = [unary(0, "Multi-ling", CmpOp::Eq, Value::Int(0))];
    let multi = [unary(0, "Multi-ling", CmpOp::Eq, Value::Int(1))];
    match row {
        // 1. Bio/adoptive/step child outside [A-69, A-12], monolingual owner.
        1 => ["Biological child", "Adopted child", "Step child"]
            .iter()
            .flat_map(|rel| age_gap("dc1", &mono, rel, Some(-69), Some(-12)))
            .collect(),
        // 2. Same children, multilingual owner, range [A-50, A-12].
        2 => ["Biological child", "Adopted child", "Step child"]
            .iter()
            .flat_map(|rel| age_gap("dc2", &multi, rel, Some(-50), Some(-12)))
            .collect(),
        // 3. Spouse or unmarried partner outside [A-50, A+50].
        3 => ["Spouse", "Unmarried partner"]
            .iter()
            .flat_map(|rel| age_gap("dc3", &[], rel, Some(-50), Some(50)))
            .collect(),
        // 4. Sibling outside [A-35, A+35].
        4 => age_gap("dc4", &[], "Sibling", Some(-35), Some(35)),
        // 5. Parent or parent-in-law outside [A+12, A+115].
        5 => ["Father/Mother", "Parent-in-law"]
            .iter()
            .flat_map(|rel| age_gap("dc5", &[], rel, Some(12), Some(115)))
            .collect(),
        // 6. Grandchild outside [A-115, A-30].
        6 => age_gap("dc6", &[], "Grandchild", Some(-115), Some(-30)),
        // 7. Son/daughter-in-law outside [A-69, A-1].
        7 => age_gap("dc7", &[], "Child-in-law", Some(-69), Some(-1)),
        // 8. Foster child outside [A-69, A-12].
        8 => age_gap("dc8", &[], "Foster child", Some(-69), Some(-12)),
        // 9. No two householders share a house.
        9 => vec![exclusive_pair("dc9", "Owner", "Owner")],
        // 10. Owner younger than 30: no grandchildren or children-in-law.
        10 => {
            let young = [unary(0, "Age", CmpOp::Lt, Value::Int(30))];
            vec![
                forbidden_member("dc10-grandchild", &young, "Grandchild"),
                forbidden_member("dc10-child-in-law", &young, "Child-in-law"),
            ]
        }
        // 11. Owner older than 94: no parents or parents-in-law.
        11 => {
            let old = [unary(0, "Age", CmpOp::Gt, Value::Int(94))];
            vec![
                forbidden_member("dc11-parent", &old, "Father/Mother"),
                forbidden_member("dc11-parent-in-law", &old, "Parent-in-law"),
            ]
        }
        // 12. No two spouses or unmarried partners share a house.
        12 => vec![
            exclusive_pair("dc12-ss", "Spouse", "Spouse"),
            exclusive_pair("dc12-su", "Spouse", "Unmarried partner"),
            exclusive_pair("dc12-uu", "Unmarried partner", "Unmarried partner"),
        ],
        _ => panic!("Table 4 has rows 1..=12, not {row}"),
    }
}

/// `S_all_DC`: all 12 Table 4 rows, lowered.
pub fn s_all_dc() -> Vec<DenialConstraint> {
    (1..=12).flat_map(table4_row).collect()
}

/// `S_good_DC`: the first 8 rows — no cliques in conflict graphs.
pub fn s_good_dc() -> Vec<DenialConstraint> {
    (1..=8).flat_map(table4_row).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cextend_table::{ColumnDef, Dtype, Relation, Schema};

    fn persons_with(rows: &[(i64, &str, i64)]) -> Relation {
        let schema = Schema::new(vec![
            ColumnDef::key("pid", Dtype::Int),
            ColumnDef::attr("Age", Dtype::Int),
            ColumnDef::attr("Rel", Dtype::Str),
            ColumnDef::attr("Multi-ling", Dtype::Int),
            ColumnDef::foreign_key("hid", Dtype::Int),
        ])
        .unwrap();
        let mut r = Relation::new("Persons", schema);
        for (i, (age, rel, m)) in rows.iter().enumerate() {
            r.push_row(&[
                Some(Value::Int(i as i64 + 1)),
                Some(Value::Int(*age)),
                Some(Value::str(rel)),
                Some(Value::Int(*m)),
                None,
            ])
            .unwrap();
        }
        r
    }

    #[test]
    fn counts_per_row() {
        assert_eq!(table4_row(1).len(), 6);
        assert_eq!(table4_row(2).len(), 6);
        assert_eq!(table4_row(3).len(), 4);
        assert_eq!(table4_row(4).len(), 2);
        assert_eq!(table4_row(5).len(), 4);
        assert_eq!(table4_row(9).len(), 1);
        assert_eq!(table4_row(12).len(), 3);
        assert_eq!(
            s_all_dc().len(),
            6 + 6 + 4 + 2 + 4 + 2 + 2 + 2 + 1 + 2 + 2 + 3
        );
        assert_eq!(s_good_dc().len(), 6 + 6 + 4 + 2 + 4 + 2 + 2 + 2);
    }

    #[test]
    fn dc1_child_age_window() {
        // Monolingual owner aged 60: children must be within [60-69, 60-12]
        // = [0, 48] (clamped below by data).
        let r = persons_with(&[
            (60, "Owner", 0),
            (45, "Biological child", 0),
            (55, "Biological child", 0), // 55 > 48: too old
        ]);
        let dcs = table4_row(1);
        let low = &dcs[0]; // dc1-Biological child-low
        let up = &dcs[1];
        assert!(!low.holds(&r, &[0, 1]).unwrap());
        assert!(!up.holds(&r, &[0, 1]).unwrap());
        assert!(up.holds(&r, &[0, 2]).unwrap());
        // A multilingual owner is not constrained by dc1.
        let r2 = persons_with(&[(60, "Owner", 1), (55, "Biological child", 0)]);
        assert!(!up.holds(&r2, &[0, 1]).unwrap());
    }

    #[test]
    fn dc9_and_dc12_cliques() {
        let r = persons_with(&[
            (40, "Owner", 0),
            (42, "Owner", 0),
            (39, "Spouse", 0),
            (41, "Unmarried partner", 0),
        ]);
        let dc9 = &table4_row(9)[0];
        assert!(dc9.holds(&r, &[0, 1]).unwrap());
        assert!(!dc9.holds(&r, &[0, 2]).unwrap());
        let dc12 = table4_row(12);
        assert!(dc12[1].holds(&r, &[2, 3]).unwrap()); // spouse + partner
    }

    #[test]
    fn dc10_dc11_age_gates() {
        let r = persons_with(&[
            (25, "Owner", 0),
            (1, "Grandchild", 0),
            (96, "Owner", 0),
            (114, "Father/Mother", 0),
        ]);
        let dc10 = table4_row(10);
        assert!(dc10[0].holds(&r, &[0, 1]).unwrap()); // owner 25 + grandchild
        assert!(!dc10[0].holds(&r, &[2, 1]).unwrap()); // owner 96 is fine
        let dc11 = table4_row(11);
        assert!(dc11[0].holds(&r, &[2, 3]).unwrap()); // owner 96 + parent
        assert!(!dc11[0].holds(&r, &[0, 3]).unwrap());
    }

    #[test]
    fn dc3_symmetric_window() {
        let r = persons_with(&[
            (70, "Owner", 0),
            (19, "Spouse", 0), // 19 < 70-50 = 20: conflict
            (20, "Spouse", 0), // exactly at the boundary: allowed
        ]);
        let dc3 = table4_row(3);
        assert!(dc3[0].holds(&r, &[0, 1]).unwrap());
        assert!(!dc3[0].holds(&r, &[0, 2]).unwrap());
    }
}
