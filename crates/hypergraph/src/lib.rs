//! # cextend-hypergraph — conflict hypergraphs and list coloring
//!
//! Phase II of the paper (Section 5) models foreign-key assignment as *list
//! coloring* of a *conflict hypergraph*: vertices are `R1` tuples, a
//! hyperedge joins every tuple set that would violate a denial constraint if
//! it shared an FK value, colors are candidate FK values, and a proper
//! coloring (≥ 2 colors inside every edge) is exactly a DC-satisfying
//! assignment (Proposition 5.2).
//!
//! - [`Hypergraph`], [`Coloring`] — the graph model with dedup and degrees.
//! - [`coloring_lf`] — greedy largest-first list coloring (Algorithm 3).
//! - [`color_skipped_with_fresh`] — minting the fewest fresh colors for
//!   skipped vertices (lines 11–14 of Algorithm 4).
//! - [`exact_list_coloring`] — backtracking exact solver for validation,
//!   ablations and the NAE-3SAT completeness tests.
//! - [`connected_components`], [`graph_stats`] — partitioning (§5.2, §A.3)
//!   and "good vs bad DC" diagnostics.
//!
//! ```
//! use cextend_hypergraph::{coloring_lf, CandidateLists, Coloring, Hypergraph};
//!
//! // Two homeowners may not share a household.
//! let mut g = Hypergraph::new(2);
//! g.add_edge(&[0, 1]);
//! let mut coloring = Coloring::new(2);
//! let households = [10, 11];
//! let skipped = coloring_lf(&g, &mut coloring, &CandidateLists::Shared(&households));
//! assert!(skipped.is_empty());
//! assert_ne!(coloring.get(0), coloring.get(1));
//! ```

#![warn(missing_docs)]

mod coloring;
mod components;
mod exact;
mod graph;
mod stats;

pub use coloring::{color_skipped_with_fresh, coloring_lf, CandidateLists};
pub use components::connected_components;
pub use exact::{exact_list_coloring, ExactResult};
pub use graph::{
    edge_is_monochromatic, is_proper_complete, Color, Coloring, EdgeId, Hypergraph, VertexId,
};
pub use stats::{graph_stats, is_clique, GraphStats};
