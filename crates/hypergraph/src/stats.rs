//! Structural statistics of conflict graphs.
//!
//! The paper distinguishes "good" DC sets (no cliques in the conflict
//! graphs) from "bad" ones (Section 6.1); these statistics quantify that
//! distinction in experiment output.

use crate::graph::Hypergraph;

/// Summary statistics of a hypergraph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub n_vertices: usize,
    /// Number of distinct edges.
    pub n_edges: usize,
    /// Maximum vertex degree.
    pub max_degree: usize,
    /// Mean vertex degree.
    pub mean_degree: f64,
    /// Size of the largest edge.
    pub max_edge_size: usize,
    /// Edge density for 2-uniform graphs: `m / C(n, 2)` (0 when `n < 2`).
    pub density: f64,
}

/// Computes [`GraphStats`] for `g`.
pub fn graph_stats(g: &Hypergraph) -> GraphStats {
    let n = g.n_vertices();
    let m = g.n_edges();
    let max_degree = (0..n as u32).map(|v| g.degree(v)).max().unwrap_or(0);
    let total_degree: usize = (0..n as u32).map(|v| g.degree(v)).sum();
    let mean_degree = if n == 0 {
        0.0
    } else {
        total_degree as f64 / n as f64
    };
    let max_edge_size = g.edges().map(|e| e.len()).max().unwrap_or(0);
    let pairs = n.saturating_sub(1) * n / 2;
    let density = if pairs == 0 {
        0.0
    } else {
        m as f64 / pairs as f64
    };
    GraphStats {
        n_vertices: n,
        n_edges: m,
        max_degree,
        mean_degree,
        max_edge_size,
        density,
    }
}

/// `true` if the 2-uniform edges of `g` contain a clique over `verts`
/// (every pair connected). Used to verify the "good DCs create no cliques"
/// claim on sampled vertex sets.
pub fn is_clique(g: &Hypergraph, verts: &[u32]) -> bool {
    use std::collections::HashSet;
    let mut pairs: HashSet<(u32, u32)> = HashSet::new();
    for e in g.edges() {
        if e.len() == 2 {
            pairs.insert((e[0], e[1]));
        }
    }
    for (i, &a) in verts.iter().enumerate() {
        for &b in &verts[i + 1..] {
            let key = if a < b { (a, b) } else { (b, a) };
            if !pairs.contains(&key) {
                return false;
            }
        }
    }
    verts.len() >= 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_small_graph() {
        let mut g = Hypergraph::new(4);
        g.add_edge(&[0, 1]);
        g.add_edge(&[0, 2]);
        g.add_edge(&[0, 1, 3]);
        let s = graph_stats(&g);
        assert_eq!(s.n_vertices, 4);
        assert_eq!(s.n_edges, 3);
        assert_eq!(s.max_degree, 3);
        assert_eq!(s.max_edge_size, 3);
        assert!((s.mean_degree - 7.0 / 4.0).abs() < 1e-12);
        assert!((s.density - 3.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_stats() {
        let s = graph_stats(&Hypergraph::new(0));
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.mean_degree, 0.0);
        assert_eq!(s.density, 0.0);
    }

    #[test]
    fn clique_detection() {
        let mut g = Hypergraph::new(4);
        g.add_edge(&[0, 1]);
        g.add_edge(&[1, 2]);
        g.add_edge(&[0, 2]);
        assert!(is_clique(&g, &[0, 1, 2]));
        assert!(!is_clique(&g, &[0, 1, 3]));
        assert!(!is_clique(&g, &[0])); // below clique size
    }
}
