//! Connected components of a hypergraph.
//!
//! Section 5.2 of the paper partitions `V_join` by `B` values so that each
//! partition's conflict graph can be colored independently; Section A.3
//! further parallelizes coloring across components. Components are computed
//! with a union-find over edge memberships.

use crate::graph::{Hypergraph, VertexId};

struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
    }
}

/// Returns the connected components as sorted vertex lists, largest first
/// (ties broken by smallest vertex id). Isolated vertices form singleton
/// components.
pub fn connected_components(g: &Hypergraph) -> Vec<Vec<VertexId>> {
    let mut uf = UnionFind::new(g.n_vertices());
    for e in g.edges() {
        for w in e.windows(2) {
            uf.union(w[0], w[1]);
        }
    }
    let mut by_root: std::collections::HashMap<u32, Vec<VertexId>> =
        std::collections::HashMap::new();
    for v in 0..g.n_vertices() as u32 {
        by_root.entry(uf.find(v)).or_default().push(v);
    }
    let mut comps: Vec<Vec<VertexId>> = by_root.into_values().collect();
    for c in &mut comps {
        c.sort_unstable();
    }
    comps.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
    comps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_of_disjoint_pieces() {
        let mut g = Hypergraph::new(6);
        g.add_edge(&[0, 1]);
        g.add_edge(&[1, 2]);
        g.add_edge(&[3, 4]);
        // Vertex 5 isolated.
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4]);
        assert_eq!(comps[2], vec![5]);
    }

    #[test]
    fn hyperedge_connects_all_members() {
        let mut g = Hypergraph::new(4);
        g.add_edge(&[0, 2, 3]);
        let comps = connected_components(&g);
        assert_eq!(comps[0], vec![0, 2, 3]);
        assert_eq!(comps[1], vec![1]);
    }

    #[test]
    fn empty_graph_is_all_singletons() {
        let g = Hypergraph::new(3);
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert!(comps.iter().all(|c| c.len() == 1));
    }
}
