//! Exact list coloring by backtracking search.
//!
//! List coloring is NP-hard (the paper cites [2, 25]); this exact solver is
//! exponential in the worst case and exists for three purposes: validating
//! the greedy heuristic on small partitions, powering the NAE-3SAT
//! completeness tests of Proposition 2.8, and serving as an ablation
//! baseline. A step budget bounds runtime; exceeding it returns
//! `ExactResult::Unknown` rather than an answer.

use crate::coloring::CandidateLists;
use crate::graph::{Color, Coloring, Hypergraph, VertexId};

/// Outcome of the exact search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExactResult {
    /// A proper list coloring exists; here is one.
    Colorable(Coloring),
    /// No proper list coloring exists.
    Uncolorable,
    /// The step budget ran out before the search completed.
    Unknown,
}

/// Exhaustively searches for a proper list coloring extending `partial`.
///
/// Vertices are assigned in non-increasing degree order (most constrained
/// first). A branch is pruned as soon as an edge becomes monochromatic.
pub fn exact_list_coloring(
    g: &Hypergraph,
    partial: &Coloring,
    candidates: &CandidateLists<'_>,
    max_steps: usize,
) -> ExactResult {
    assert_eq!(partial.len(), g.n_vertices());
    let order: Vec<VertexId> = g
        .vertices_by_degree_desc()
        .into_iter()
        .filter(|&v| !partial.is_colored(v))
        .collect();
    let mut coloring = partial.clone();
    let mut steps = 0usize;
    match dfs(
        g,
        &mut coloring,
        candidates,
        &order,
        0,
        &mut steps,
        max_steps,
    ) {
        Dfs::Found => ExactResult::Colorable(coloring),
        Dfs::Exhausted => ExactResult::Uncolorable,
        Dfs::Budget => ExactResult::Unknown,
    }
}

enum Dfs {
    Found,
    Exhausted,
    Budget,
}

fn dfs(
    g: &Hypergraph,
    coloring: &mut Coloring,
    candidates: &CandidateLists<'_>,
    order: &[VertexId],
    idx: usize,
    steps: &mut usize,
    max_steps: usize,
) -> Dfs {
    if idx == order.len() {
        return Dfs::Found;
    }
    let v = order[idx];
    for &c in candidates.get(v) {
        *steps += 1;
        if *steps > max_steps {
            return Dfs::Budget;
        }
        if creates_monochromatic(g, coloring, v, c) {
            continue;
        }
        coloring.set(v, c);
        match dfs(g, coloring, candidates, order, idx + 1, steps, max_steps) {
            Dfs::Found => return Dfs::Found,
            Dfs::Budget => return Dfs::Budget,
            Dfs::Exhausted => {}
        }
        // Un-assign on backtrack.
        uncolor(coloring, v);
    }
    Dfs::Exhausted
}

fn uncolor(coloring: &mut Coloring, v: VertexId) {
    // Coloring has no public unset; rebuild via set-to-None semantics.
    // We keep this private helper here rather than widening the public API.
    coloring.unset(v);
}

fn creates_monochromatic(g: &Hypergraph, coloring: &Coloring, v: VertexId, c: Color) -> bool {
    'edges: for &e in g.incident_edges(v) {
        for &u in g.edge(e) {
            if u == v {
                continue;
            }
            if coloring.get(u) != Some(c) {
                continue 'edges;
            }
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::is_proper_complete;

    fn triangle() -> Hypergraph {
        let mut g = Hypergraph::new(3);
        g.add_edge(&[0, 1]);
        g.add_edge(&[1, 2]);
        g.add_edge(&[0, 2]);
        g
    }

    #[test]
    fn triangle_needs_three_colors_of_shared_list() {
        let g = triangle();
        let two: Vec<Color> = vec![0, 1];
        let r = exact_list_coloring(&g, &Coloring::new(3), &CandidateLists::Shared(&two), 10_000);
        assert_eq!(r, ExactResult::Uncolorable);

        let three: Vec<Color> = vec![0, 1, 2];
        match exact_list_coloring(
            &g,
            &Coloring::new(3),
            &CandidateLists::Shared(&three),
            10_000,
        ) {
            ExactResult::Colorable(c) => assert!(is_proper_complete(&g, &c)),
            other => panic!("expected colorable, got {other:?}"),
        }
    }

    #[test]
    fn respects_per_vertex_lists() {
        // Path 0-1 with L(0)={1}, L(1)={1}: impossible.
        let mut g = Hypergraph::new(2);
        g.add_edge(&[0, 1]);
        let lists = vec![vec![1], vec![1]];
        let r = exact_list_coloring(
            &g,
            &Coloring::new(2),
            &CandidateLists::PerVertex(&lists),
            1000,
        );
        assert_eq!(r, ExactResult::Uncolorable);

        let lists = vec![vec![1], vec![1, 2]];
        let r = exact_list_coloring(
            &g,
            &Coloring::new(2),
            &CandidateLists::PerVertex(&lists),
            1000,
        );
        assert!(matches!(r, ExactResult::Colorable(_)));
    }

    #[test]
    fn respects_partial_assignment() {
        let mut g = Hypergraph::new(2);
        g.add_edge(&[0, 1]);
        let mut partial = Coloring::new(2);
        partial.set(0, 1);
        let lists = vec![vec![2], vec![1]]; // vertex 1 can only take 1 → clash
        let r = exact_list_coloring(&g, &partial, &CandidateLists::PerVertex(&lists), 1000);
        assert_eq!(r, ExactResult::Uncolorable);
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        // A graph large enough that 1 step cannot decide it.
        let mut g = Hypergraph::new(6);
        for i in 0..5u32 {
            g.add_edge(&[i, i + 1]);
        }
        let colors: Vec<Color> = vec![0, 1];
        let r = exact_list_coloring(&g, &Coloring::new(6), &CandidateLists::Shared(&colors), 1);
        assert_eq!(r, ExactResult::Unknown);
    }

    #[test]
    fn hyperedges_allow_two_same_one_different() {
        // One 3-edge, two colors: (0,0,1) is proper, so colorable.
        let mut g = Hypergraph::new(3);
        g.add_edge(&[0, 1, 2]);
        let colors: Vec<Color> = vec![0, 1];
        match exact_list_coloring(
            &g,
            &Coloring::new(3),
            &CandidateLists::Shared(&colors),
            1000,
        ) {
            ExactResult::Colorable(c) => assert!(is_proper_complete(&g, &c)),
            other => panic!("expected colorable, got {other:?}"),
        }
        // With one color it is not.
        let one: Vec<Color> = vec![0];
        let r = exact_list_coloring(&g, &Coloring::new(3), &CandidateLists::Shared(&one), 1000);
        assert_eq!(r, ExactResult::Uncolorable);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::coloring::coloring_lf;
    use proptest::prelude::*;

    fn arb_graph() -> impl Strategy<Value = Hypergraph> {
        (
            2usize..8,
            proptest::collection::vec((0u32..8, 0u32..8), 0..14),
        )
            .prop_map(|(n, pairs)| {
                let mut g = Hypergraph::new(n);
                for (a, b) in pairs {
                    g.add_edge(&[a % n as u32, b % n as u32]);
                }
                g
            })
    }

    proptest! {
        /// Soundness of the greedy against the exact solver: if the greedy
        /// colors everything, the instance is colorable — and whenever the
        /// exact solver says "uncolorable", the greedy must have skipped.
        #[test]
        fn greedy_success_implies_exact_colorable(g in arb_graph(), k in 1u32..4) {
            let colors: Vec<Color> = (0..k).collect();
            let mut c = Coloring::new(g.n_vertices());
            let skipped = coloring_lf(&g, &mut c, &CandidateLists::Shared(&colors));
            let exact = exact_list_coloring(
                &g, &Coloring::new(g.n_vertices()), &CandidateLists::Shared(&colors), 200_000);
            if skipped.is_empty() {
                prop_assert!(matches!(exact, ExactResult::Colorable(_)));
            }
            if exact == ExactResult::Uncolorable {
                prop_assert!(!skipped.is_empty());
            }
        }
    }
}
