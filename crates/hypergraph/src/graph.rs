//! Conflict hypergraphs (Definition 5.1 of the paper).
//!
//! Vertices are the tuples of `R1`; a hyperedge `{t1..tk}` records that a
//! foreign-key denial constraint forbids those tuples from all receiving the
//! same FK value. A *proper* coloring — at least two distinct colors inside
//! every edge — therefore corresponds exactly to a DC-satisfying FK
//! assignment (Proposition 5.2).

use std::collections::HashMap;
use std::sync::OnceLock;

/// Vertex index.
pub type VertexId = u32;
/// Edge index.
pub type EdgeId = u32;
/// A color (stands for one candidate FK value).
pub type Color = u32;

/// Identity hasher for the dedup map: edge fingerprints are already
/// splitmix64-finalized, so feeding them through SipHash again only burns
/// cycles — tens of millions of times on DC-dense conflict graphs.
#[derive(Clone, Copy, Debug, Default)]
struct FingerprintHasher(u64);

impl std::hash::Hasher for FingerprintHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("fingerprint keys hash via write_u64");
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type FingerprintState = std::hash::BuildHasherDefault<FingerprintHasher>;

/// Incidence in CSR form: vertex `v`'s incident edges live at
/// `edges[offsets[v] .. offsets[v + 1]]`, ascending.
#[derive(Clone, Debug)]
struct IncidenceCsr {
    offsets: Vec<u32>,
    edges: Vec<EdgeId>,
}

/// A hypergraph with incidence lists and edge deduplication.
///
/// Edges live in one flat CSR-style buffer (`edge_offsets` delimits edge
/// `e`'s vertices inside `edge_vertices`) instead of one `Box<[VertexId]>`
/// per edge, so DC-dense conflict graphs cost two amortized `Vec` pushes
/// per edge rather than two heap allocations (the key + the stored edge).
/// Duplicate detection hashes the sorted vertex list to a 64-bit
/// fingerprint; fingerprint collisions between *distinct* edges are
/// resolved exactly by comparing the stored vertex slices, so dedup
/// semantics are identical to the old exact-key set.
///
/// Incidence lists are **deferred**: nothing is spent per edge at insertion
/// time; the first degree/incidence query materializes the whole CSR in two
/// linear passes with one exact-size allocation (the conflict pipeline adds
/// every edge before the coloring pass reads any incidence, so per-edge
/// incidence pushes — two amortized, reallocating `Vec` appends per edge —
/// were pure overhead). Adding an edge afterwards just drops the cache; the
/// next query rebuilds it.
#[derive(Clone, Debug)]
pub struct Hypergraph {
    n: usize,
    /// Edge `e` spans `edge_vertices[edge_offsets[e] .. edge_offsets[e+1]]`.
    edge_offsets: Vec<u32>,
    edge_vertices: Vec<VertexId>,
    incidence: OnceLock<IncidenceCsr>,
    /// Fingerprint → first edge with that fingerprint. Collisions between
    /// distinct edges overflow into `seen_overflow` (checked linearly —
    /// effectively never populated).
    seen: HashMap<u64, EdgeId, FingerprintState>,
    seen_overflow: Vec<(u64, EdgeId)>,
    /// Scratch buffer for sorting incoming edges without allocating.
    scratch: Vec<VertexId>,
}

/// 64-bit fingerprint of a sorted vertex list (FNV-1a over the ids plus a
/// final splitmix64 finalizer for avalanche).
fn fingerprint(vs: &[VertexId]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in vs {
        h ^= u64::from(v);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^= vs.len() as u64;
    // splitmix64 finalizer.
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

impl Default for Hypergraph {
    /// The empty hypergraph. A derived `Default` would leave
    /// `edge_offsets` without its leading `0` sentinel and break
    /// `n_edges()`; go through [`Hypergraph::new`] instead.
    fn default() -> Hypergraph {
        Hypergraph::new(0)
    }
}

impl Hypergraph {
    /// A hypergraph on `n` isolated vertices.
    pub fn new(n: usize) -> Hypergraph {
        Hypergraph {
            n,
            edge_offsets: vec![0],
            edge_vertices: Vec::new(),
            incidence: OnceLock::new(),
            seen: HashMap::default(),
            seen_overflow: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.n
    }

    /// Number of (distinct) edges.
    pub fn n_edges(&self) -> usize {
        self.edge_offsets.len() - 1
    }

    #[inline]
    fn edge_slice(&self, e: EdgeId) -> &[VertexId] {
        let lo = self.edge_offsets[e as usize] as usize;
        let hi = self.edge_offsets[e as usize + 1] as usize;
        &self.edge_vertices[lo..hi]
    }

    /// Adds an edge over `vertices`. Vertices are sorted and deduplicated;
    /// degenerate edges (fewer than 2 distinct vertices) and duplicates of
    /// existing edges are ignored and return `None`.
    ///
    /// # Panics
    /// Panics if a vertex id is out of range.
    pub fn add_edge(&mut self, vertices: &[VertexId]) -> Option<EdgeId> {
        let mut vs = std::mem::take(&mut self.scratch);
        vs.clear();
        vs.extend_from_slice(vertices);
        vs.sort_unstable();
        vs.dedup();
        let id = self.add_sorted_edge_inner(&vs);
        self.scratch = vs;
        id
    }

    /// [`Hypergraph::add_edge`] for vertices already sorted ascending with
    /// no duplicates (the conflict builder emits edges in canonical order).
    ///
    /// # Panics
    /// Panics in debug builds if `vertices` is not strictly ascending, and
    /// in all builds if a vertex id is out of range.
    pub fn add_sorted_edge(&mut self, vertices: &[VertexId]) -> Option<EdgeId> {
        debug_assert!(
            vertices.windows(2).all(|w| w[0] < w[1]),
            "add_sorted_edge requires strictly ascending vertices"
        );
        self.add_sorted_edge_inner(vertices)
    }

    fn add_sorted_edge_inner(&mut self, vs: &[VertexId]) -> Option<EdgeId> {
        if vs.len() < 2 {
            return None;
        }
        for &v in vs {
            assert!(
                (v as usize) < self.n,
                "vertex {v} out of range (n = {})",
                self.n
            );
        }
        let fp = fingerprint(vs);
        if let Some(&first) = self.seen.get(&fp) {
            if self.edge_slice(first) == vs {
                return None;
            }
            // Genuine 64-bit collision between distinct edges: check (and
            // store into) the exact overflow list.
            if self
                .seen_overflow
                .iter()
                .any(|&(f, e)| f == fp && self.edge_slice(e) == vs)
            {
                return None;
            }
        }
        let id = self.n_edges() as EdgeId;
        match self.seen.entry(fp) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(id);
            }
            std::collections::hash_map::Entry::Occupied(_) => self.seen_overflow.push((fp, id)),
        }
        self.edge_vertices.extend_from_slice(vs);
        self.edge_offsets.push(self.edge_vertices.len() as u32);
        self.incidence.take();
        Some(id)
    }

    /// Adds an edge the **caller guarantees** is sorted ascending, has at
    /// least two distinct vertices, and duplicates no edge in the graph —
    /// skipping the fingerprint/dedup bookkeeping entirely. This is the
    /// bulk-emission path for clique-shaped DCs, whose pair enumeration is
    /// duplicate-free by construction: the cost per edge drops to the two
    /// CSR pushes.
    ///
    /// Because the edge is *not* entered into the dedup table, a later
    /// [`add_edge`](Hypergraph::add_edge)/[`add_sorted_edge`](Hypergraph::add_sorted_edge)
    /// of the same vertex set would store a duplicate — callers mixing
    /// checked and unchecked insertion must dedup against their unchecked
    /// edges themselves (the conflict builder keeps per-vertex clique
    /// registries for exactly this).
    ///
    /// # Panics
    /// Panics in debug builds if `vertices` is not strictly ascending or
    /// has fewer than two vertices, and in all builds if a vertex id is
    /// out of range.
    #[inline]
    pub fn add_sorted_edge_unchecked(&mut self, vertices: &[VertexId]) -> EdgeId {
        debug_assert!(
            vertices.len() >= 2 && vertices.windows(2).all(|w| w[0] < w[1]),
            "add_sorted_edge_unchecked requires ≥2 strictly ascending vertices"
        );
        for &v in vertices {
            assert!(
                (v as usize) < self.n,
                "vertex {v} out of range (n = {})",
                self.n
            );
        }
        let id = self.n_edges() as EdgeId;
        self.edge_vertices.extend_from_slice(vertices);
        self.edge_offsets.push(self.edge_vertices.len() as u32);
        self.incidence.take();
        id
    }

    /// Pre-reserves storage for `edges` additional edges of `arity`
    /// vertices each (bulk clique emission sizes its output exactly).
    pub fn reserve_edges(&mut self, edges: usize, arity: usize) {
        self.edge_offsets.reserve(edges);
        self.edge_vertices.reserve(edges * arity);
    }

    /// The vertices of edge `e`, sorted ascending.
    pub fn edge(&self, e: EdgeId) -> &[VertexId] {
        self.edge_slice(e)
    }

    /// All edges.
    pub fn edges(&self) -> impl Iterator<Item = &[VertexId]> {
        (0..self.n_edges() as EdgeId).map(|e| self.edge_slice(e))
    }

    /// The incidence CSR, built on first use: a counting pass over
    /// `edge_vertices`, a prefix sum, and a fill pass that walks edges in
    /// ascending id — so each vertex's list comes out in the same ascending
    /// edge order the old per-edge pushes produced.
    fn incidence(&self) -> &IncidenceCsr {
        self.incidence.get_or_init(|| {
            let mut offsets = vec![0u32; self.n + 1];
            for &v in &self.edge_vertices {
                offsets[v as usize + 1] += 1;
            }
            for i in 0..self.n {
                offsets[i + 1] += offsets[i];
            }
            let mut next = offsets.clone();
            let mut edges = vec![0 as EdgeId; self.edge_vertices.len()];
            for e in 0..self.n_edges() {
                let lo = self.edge_offsets[e] as usize;
                let hi = self.edge_offsets[e + 1] as usize;
                for &v in &self.edge_vertices[lo..hi] {
                    edges[next[v as usize] as usize] = e as EdgeId;
                    next[v as usize] += 1;
                }
            }
            IncidenceCsr { offsets, edges }
        })
    }

    /// Ids of edges incident to `v`, ascending.
    pub fn incident_edges(&self, v: VertexId) -> &[EdgeId] {
        let inc = self.incidence();
        let lo = inc.offsets[v as usize] as usize;
        let hi = inc.offsets[v as usize + 1] as usize;
        &inc.edges[lo..hi]
    }

    /// Degree of `v` = number of incident edges.
    pub fn degree(&self, v: VertexId) -> usize {
        let inc = self.incidence();
        (inc.offsets[v as usize + 1] - inc.offsets[v as usize]) as usize
    }

    /// Vertices sorted by non-increasing degree (ties by vertex id, for
    /// determinism) — the processing order of Algorithm 3. Degrees are read
    /// once into a flat key vector before the sort, so the comparator does
    /// not chase the incidence lists `O(n log n)` times.
    pub fn vertices_by_degree_desc(&self) -> Vec<VertexId> {
        let inc = self.incidence();
        let degrees: Vec<u32> = inc.offsets.windows(2).map(|w| w[1] - w[0]).collect();
        let mut vs: Vec<VertexId> = (0..self.n as VertexId).collect();
        vs.sort_by(|&a, &b| {
            degrees[b as usize]
                .cmp(&degrees[a as usize])
                .then(a.cmp(&b))
        });
        vs
    }
}

/// A (partial) assignment of colors to vertices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coloring {
    colors: Vec<Option<Color>>,
}

impl Coloring {
    /// An empty coloring on `n` vertices.
    pub fn new(n: usize) -> Coloring {
        Coloring {
            colors: vec![None; n],
        }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// `true` if there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// Color of `v`, if assigned.
    #[inline]
    pub fn get(&self, v: VertexId) -> Option<Color> {
        self.colors[v as usize]
    }

    /// Assigns a color.
    pub fn set(&mut self, v: VertexId, c: Color) {
        self.colors[v as usize] = Some(c);
    }

    /// Removes the color of `v` (used by the exact solver on backtrack).
    pub fn unset(&mut self, v: VertexId) {
        self.colors[v as usize] = None;
    }

    /// `true` if `v` has a color.
    pub fn is_colored(&self, v: VertexId) -> bool {
        self.colors[v as usize].is_some()
    }

    /// Number of colored vertices.
    pub fn n_colored(&self) -> usize {
        self.colors.iter().filter(|c| c.is_some()).count()
    }

    /// `true` if every vertex has a color.
    pub fn is_complete(&self) -> bool {
        self.colors.iter().all(Option::is_some)
    }

    /// Iterates over `(vertex, color)` pairs for colored vertices.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, Color)> + '_ {
        self.colors
            .iter()
            .enumerate()
            .filter_map(|(v, c)| c.map(|c| (v as VertexId, c)))
    }
}

/// `true` if edge `e` is *monochromatic under the partial coloring*: every
/// vertex is colored and they all share one color. Such an edge is a DC
/// violation.
pub fn edge_is_monochromatic(g: &Hypergraph, coloring: &Coloring, e: EdgeId) -> bool {
    let vs = g.edge(e);
    let Some(first) = coloring.get(vs[0]) else {
        return false;
    };
    vs[1..].iter().all(|&v| coloring.get(v) == Some(first))
}

/// `true` if the coloring is complete and no edge is monochromatic — i.e. a
/// proper coloring in the sense of Proposition 5.2.
pub fn is_proper_complete(g: &Hypergraph, coloring: &Coloring) -> bool {
    coloring.is_complete()
        && (0..g.n_edges() as EdgeId).all(|e| !edge_is_monochromatic(g, coloring, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_dedups_and_sorts() {
        let mut g = Hypergraph::new(4);
        assert_eq!(g.add_edge(&[2, 0]), Some(0));
        assert_eq!(g.edge(0), &[0, 2]);
        // Same edge in different order: duplicate.
        assert_eq!(g.add_edge(&[0, 2]), None);
        // Degenerate edges rejected.
        assert_eq!(g.add_edge(&[1]), None);
        assert_eq!(g.add_edge(&[1, 1]), None);
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_vertex_panics() {
        let mut g = Hypergraph::new(2);
        g.add_edge(&[0, 5]);
    }

    #[test]
    fn degrees_and_order() {
        let mut g = Hypergraph::new(4);
        g.add_edge(&[0, 1]);
        g.add_edge(&[0, 2]);
        g.add_edge(&[0, 3]);
        g.add_edge(&[1, 2]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.vertices_by_degree_desc(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn monochromatic_detection() {
        let mut g = Hypergraph::new(3);
        g.add_edge(&[0, 1, 2]);
        let mut c = Coloring::new(3);
        c.set(0, 5);
        c.set(1, 5);
        // Not monochromatic while a vertex is uncolored.
        assert!(!edge_is_monochromatic(&g, &c, 0));
        c.set(2, 5);
        assert!(edge_is_monochromatic(&g, &c, 0));
        assert!(!is_proper_complete(&g, &c));
        c.set(2, 6);
        assert!(is_proper_complete(&g, &c));
    }

    #[test]
    fn hyperedge_needs_only_two_distinct_colors() {
        // A 3-edge with colors (1, 1, 2) is proper: the DC quantifies over
        // *all* k tuples sharing the FK, so two owners + one with a
        // different household do not violate it.
        let mut g = Hypergraph::new(3);
        g.add_edge(&[0, 1, 2]);
        let mut c = Coloring::new(3);
        c.set(0, 1);
        c.set(1, 1);
        c.set(2, 2);
        assert!(is_proper_complete(&g, &c));
    }

    #[test]
    fn default_is_the_empty_hypergraph() {
        let g = Hypergraph::default();
        assert_eq!(g.n_vertices(), 0);
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn sorted_edge_fast_path_matches_add_edge() {
        let mut g = Hypergraph::new(5);
        assert_eq!(g.add_sorted_edge(&[0, 2, 4]), Some(0));
        assert_eq!(g.add_edge(&[4, 0, 2]), None); // same set, any order
        assert_eq!(g.add_sorted_edge(&[0, 2, 4]), None);
        assert_eq!(g.add_sorted_edge(&[2]), None);
        assert_eq!(g.edge(0), &[0, 2, 4]);
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn unchecked_edges_interleave_with_checked() {
        let mut g = Hypergraph::new(6);
        g.reserve_edges(3, 2);
        assert_eq!(g.add_sorted_edge_unchecked(&[0, 1]), 0);
        assert_eq!(g.add_sorted_edge(&[1, 2]), Some(1));
        assert_eq!(g.add_sorted_edge_unchecked(&[3, 5]), 2);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.edge(0), &[0, 1]);
        assert_eq!(g.edge(2), &[3, 5]);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.incident_edges(5), &[2]);
        // Checked insertion still dedups against *checked* edges…
        assert_eq!(g.add_sorted_edge(&[1, 2]), None);
        // …but by contract does not see unchecked ones (the caller dedups).
        assert_eq!(g.add_sorted_edge(&[0, 1]), Some(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unchecked_edge_still_bounds_checks() {
        let mut g = Hypergraph::new(2);
        g.add_sorted_edge_unchecked(&[0, 7]);
    }

    #[test]
    fn csr_storage_keeps_edges_addressable() {
        let mut g = Hypergraph::new(6);
        let edges: [&[VertexId]; 3] = [&[0, 1], &[1, 2, 3], &[4, 5]];
        for e in edges {
            g.add_edge(e);
        }
        assert_eq!(g.n_edges(), 3);
        for (i, e) in g.edges().enumerate() {
            assert_eq!(e, edges[i]);
            assert_eq!(g.edge(i as EdgeId), edges[i]);
        }
    }

    #[test]
    fn coloring_bookkeeping() {
        let mut c = Coloring::new(3);
        assert!(!c.is_complete());
        assert_eq!(c.n_colored(), 0);
        c.set(1, 9);
        assert!(c.is_colored(1));
        assert_eq!(c.get(1), Some(9));
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![(1, 9)]);
    }
}
