//! Conflict hypergraphs (Definition 5.1 of the paper).
//!
//! Vertices are the tuples of `R1`; a hyperedge `{t1..tk}` records that a
//! foreign-key denial constraint forbids those tuples from all receiving the
//! same FK value. A *proper* coloring — at least two distinct colors inside
//! every edge — therefore corresponds exactly to a DC-satisfying FK
//! assignment (Proposition 5.2).

use std::collections::HashSet;

/// Vertex index.
pub type VertexId = u32;
/// Edge index.
pub type EdgeId = u32;
/// A color (stands for one candidate FK value).
pub type Color = u32;

/// A hypergraph with incidence lists and edge deduplication.
#[derive(Clone, Debug, Default)]
pub struct Hypergraph {
    n: usize,
    edges: Vec<Box<[VertexId]>>,
    incidence: Vec<Vec<EdgeId>>,
    seen: HashSet<Box<[VertexId]>>,
}

impl Hypergraph {
    /// A hypergraph on `n` isolated vertices.
    pub fn new(n: usize) -> Hypergraph {
        Hypergraph {
            n,
            edges: Vec::new(),
            incidence: vec![Vec::new(); n],
            seen: HashSet::new(),
        }
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.n
    }

    /// Number of (distinct) edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds an edge over `vertices`. Vertices are sorted and deduplicated;
    /// degenerate edges (fewer than 2 distinct vertices) and duplicates of
    /// existing edges are ignored and return `None`.
    ///
    /// # Panics
    /// Panics if a vertex id is out of range.
    pub fn add_edge(&mut self, vertices: &[VertexId]) -> Option<EdgeId> {
        let mut vs: Vec<VertexId> = vertices.to_vec();
        vs.sort_unstable();
        vs.dedup();
        if vs.len() < 2 {
            return None;
        }
        for &v in &vs {
            assert!(
                (v as usize) < self.n,
                "vertex {v} out of range (n = {})",
                self.n
            );
        }
        let key: Box<[VertexId]> = vs.into_boxed_slice();
        if !self.seen.insert(key.clone()) {
            return None;
        }
        let id = self.edges.len() as EdgeId;
        for &v in key.iter() {
            self.incidence[v as usize].push(id);
        }
        self.edges.push(key);
        Some(id)
    }

    /// The vertices of edge `e`, sorted ascending.
    pub fn edge(&self, e: EdgeId) -> &[VertexId] {
        &self.edges[e as usize]
    }

    /// All edges.
    pub fn edges(&self) -> impl Iterator<Item = &[VertexId]> {
        self.edges.iter().map(|e| e.as_ref())
    }

    /// Ids of edges incident to `v`.
    pub fn incident_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.incidence[v as usize]
    }

    /// Degree of `v` = number of incident edges.
    pub fn degree(&self, v: VertexId) -> usize {
        self.incidence[v as usize].len()
    }

    /// Vertices sorted by non-increasing degree (ties by vertex id, for
    /// determinism) — the processing order of Algorithm 3.
    pub fn vertices_by_degree_desc(&self) -> Vec<VertexId> {
        let mut vs: Vec<VertexId> = (0..self.n as VertexId).collect();
        vs.sort_by(|&a, &b| self.degree(b).cmp(&self.degree(a)).then(a.cmp(&b)));
        vs
    }
}

/// A (partial) assignment of colors to vertices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coloring {
    colors: Vec<Option<Color>>,
}

impl Coloring {
    /// An empty coloring on `n` vertices.
    pub fn new(n: usize) -> Coloring {
        Coloring {
            colors: vec![None; n],
        }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// `true` if there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// Color of `v`, if assigned.
    #[inline]
    pub fn get(&self, v: VertexId) -> Option<Color> {
        self.colors[v as usize]
    }

    /// Assigns a color.
    pub fn set(&mut self, v: VertexId, c: Color) {
        self.colors[v as usize] = Some(c);
    }

    /// Removes the color of `v` (used by the exact solver on backtrack).
    pub fn unset(&mut self, v: VertexId) {
        self.colors[v as usize] = None;
    }

    /// `true` if `v` has a color.
    pub fn is_colored(&self, v: VertexId) -> bool {
        self.colors[v as usize].is_some()
    }

    /// Number of colored vertices.
    pub fn n_colored(&self) -> usize {
        self.colors.iter().filter(|c| c.is_some()).count()
    }

    /// `true` if every vertex has a color.
    pub fn is_complete(&self) -> bool {
        self.colors.iter().all(Option::is_some)
    }

    /// Iterates over `(vertex, color)` pairs for colored vertices.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, Color)> + '_ {
        self.colors
            .iter()
            .enumerate()
            .filter_map(|(v, c)| c.map(|c| (v as VertexId, c)))
    }
}

/// `true` if edge `e` is *monochromatic under the partial coloring*: every
/// vertex is colored and they all share one color. Such an edge is a DC
/// violation.
pub fn edge_is_monochromatic(g: &Hypergraph, coloring: &Coloring, e: EdgeId) -> bool {
    let vs = g.edge(e);
    let Some(first) = coloring.get(vs[0]) else {
        return false;
    };
    vs[1..].iter().all(|&v| coloring.get(v) == Some(first))
}

/// `true` if the coloring is complete and no edge is monochromatic — i.e. a
/// proper coloring in the sense of Proposition 5.2.
pub fn is_proper_complete(g: &Hypergraph, coloring: &Coloring) -> bool {
    coloring.is_complete()
        && (0..g.n_edges() as EdgeId).all(|e| !edge_is_monochromatic(g, coloring, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_dedups_and_sorts() {
        let mut g = Hypergraph::new(4);
        assert_eq!(g.add_edge(&[2, 0]), Some(0));
        assert_eq!(g.edge(0), &[0, 2]);
        // Same edge in different order: duplicate.
        assert_eq!(g.add_edge(&[0, 2]), None);
        // Degenerate edges rejected.
        assert_eq!(g.add_edge(&[1]), None);
        assert_eq!(g.add_edge(&[1, 1]), None);
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_vertex_panics() {
        let mut g = Hypergraph::new(2);
        g.add_edge(&[0, 5]);
    }

    #[test]
    fn degrees_and_order() {
        let mut g = Hypergraph::new(4);
        g.add_edge(&[0, 1]);
        g.add_edge(&[0, 2]);
        g.add_edge(&[0, 3]);
        g.add_edge(&[1, 2]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.vertices_by_degree_desc(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn monochromatic_detection() {
        let mut g = Hypergraph::new(3);
        g.add_edge(&[0, 1, 2]);
        let mut c = Coloring::new(3);
        c.set(0, 5);
        c.set(1, 5);
        // Not monochromatic while a vertex is uncolored.
        assert!(!edge_is_monochromatic(&g, &c, 0));
        c.set(2, 5);
        assert!(edge_is_monochromatic(&g, &c, 0));
        assert!(!is_proper_complete(&g, &c));
        c.set(2, 6);
        assert!(is_proper_complete(&g, &c));
    }

    #[test]
    fn hyperedge_needs_only_two_distinct_colors() {
        // A 3-edge with colors (1, 1, 2) is proper: the DC quantifies over
        // *all* k tuples sharing the FK, so two owners + one with a
        // different household do not violate it.
        let mut g = Hypergraph::new(3);
        g.add_edge(&[0, 1, 2]);
        let mut c = Coloring::new(3);
        c.set(0, 1);
        c.set(1, 1);
        c.set(2, 2);
        assert!(is_proper_complete(&g, &c));
    }

    #[test]
    fn coloring_bookkeeping() {
        let mut c = Coloring::new(3);
        assert!(!c.is_complete());
        assert_eq!(c.n_colored(), 0);
        c.set(1, 9);
        assert!(c.is_colored(1));
        assert_eq!(c.get(1), Some(9));
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![(1, 9)]);
    }
}
