//! Greedy largest-first list coloring — Algorithm 3 of the paper.
//!
//! Uncolored vertices are processed in non-increasing degree order. For each
//! vertex `v`, a color `c` is *forbidden* if some edge containing `v` has all
//! its other vertices already colored `c` (coloring `v` with `c` would make
//! the edge monochromatic). The vertex takes the smallest permitted candidate
//! color; if none remains it is *skipped* and returned to the caller, which
//! resolves skips by minting fresh colors (= fresh `R2` tuples, lines 11–14
//! of Algorithm 4).

use crate::graph::{Color, Coloring, Hypergraph, VertexId};

/// A generation-stamped forbidden-color set: `mark`/`is_marked` are O(1)
/// array reads and "clearing" between vertices is a stamp increment — no
/// per-vertex hashing or `HashSet` churn on the coloring hot path. Colors
/// index candidate FK values, so they are dense small integers; the array
/// grows to the largest color actually forbidden.
struct ForbiddenSet {
    stamp_of: Vec<u32>,
    stamp: u32,
}

impl ForbiddenSet {
    fn new() -> ForbiddenSet {
        ForbiddenSet {
            stamp_of: Vec::new(),
            stamp: 0,
        }
    }

    /// Starts a fresh (empty) forbidden set for the next vertex.
    fn next_vertex(&mut self) {
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // One wrap per 2^32 vertices: reset the stamps instead of
            // letting stale marks alias the new generation.
            self.stamp_of.iter_mut().for_each(|s| *s = 0);
            self.stamp = 1;
        }
    }

    fn mark(&mut self, c: Color) {
        let i = c as usize;
        if i >= self.stamp_of.len() {
            self.stamp_of.resize(i + 1, 0);
        }
        self.stamp_of[i] = self.stamp;
    }

    fn is_marked(&self, c: Color) -> bool {
        self.stamp_of.get(c as usize) == Some(&self.stamp)
    }
}

/// Candidate color lists: either one shared list for every vertex (the
/// common case inside a `V_join` partition, where candidates are the keys of
/// `R2` matching the partition's `B` values) or a list per vertex (used for
/// invalid tuples, which may take any key).
#[derive(Clone, Debug)]
pub enum CandidateLists<'a> {
    /// Every vertex draws from the same list.
    Shared(&'a [Color]),
    /// Vertex `v` draws from `lists[v]`.
    PerVertex(&'a [Vec<Color>]),
}

impl CandidateLists<'_> {
    /// The candidate list for `v`.
    pub fn get(&self, v: VertexId) -> &[Color] {
        match self {
            CandidateLists::Shared(l) => l,
            CandidateLists::PerVertex(ls) => &ls[v as usize],
        }
    }
}

/// Runs largest-first list coloring, extending the partial `coloring`
/// in place. Returns the vertices that could not be colored (skipped),
/// in processing order.
///
/// Matches Algorithm 3: already-colored vertices are left untouched; each
/// uncolored vertex gets `min(L(v) \ forbidden)` or is skipped.
pub fn coloring_lf(
    g: &Hypergraph,
    coloring: &mut Coloring,
    candidates: &CandidateLists<'_>,
) -> Vec<VertexId> {
    assert_eq!(
        coloring.len(),
        g.n_vertices(),
        "coloring must cover exactly the graph's vertices"
    );
    let mut skipped = Vec::new();
    let order: Vec<VertexId> = g
        .vertices_by_degree_desc()
        .into_iter()
        .filter(|&v| !coloring.is_colored(v))
        .collect();
    let mut forbidden = ForbiddenSet::new();
    for v in order {
        forbidden.next_vertex();
        for &e in g.incident_edges(v) {
            if let Some(c) = lone_uncolored_color(g, coloring, e, v) {
                forbidden.mark(c);
            }
        }
        let choice = candidates
            .get(v)
            .iter()
            .copied()
            .filter(|&c| !forbidden.is_marked(c))
            .min();
        match choice {
            Some(c) => coloring.set(v, c),
            None => skipped.push(v),
        }
    }
    skipped
}

/// If every vertex of `e` other than `v` is colored and they all share one
/// color, returns that color (it is forbidden for `v`).
fn lone_uncolored_color(
    g: &Hypergraph,
    coloring: &Coloring,
    e: crate::graph::EdgeId,
    v: VertexId,
) -> Option<Color> {
    let mut color: Option<Color> = None;
    for &u in g.edge(e) {
        if u == v {
            continue;
        }
        match coloring.get(u) {
            None => return None,
            Some(c) => match color {
                None => color = Some(c),
                Some(prev) if prev != c => return None,
                Some(_) => {}
            },
        }
    }
    color
}

/// Colors the `skipped` vertices with fresh colors starting at `next_color`,
/// reusing a fresh color across skips when doing so keeps all edges
/// non-monochromatic (the paper adds "the least number of new colors").
/// Returns the fresh colors actually used, in allocation order.
///
/// Per vertex this is `O(degree + |fresh|)`: the forbidden colors are
/// collected in one pass over the incident edges, then the first
/// non-forbidden fresh color is taken (cliques of skipped vertices would
/// otherwise cost `O(|skipped|² · degree)`).
pub fn color_skipped_with_fresh(
    g: &Hypergraph,
    coloring: &mut Coloring,
    skipped: &[VertexId],
    next_color: Color,
) -> Vec<Color> {
    let mut fresh: Vec<Color> = Vec::new();
    let mut forbidden = ForbiddenSet::new();
    for &v in skipped {
        forbidden.next_vertex();
        for &e in g.incident_edges(v) {
            if let Some(c) = lone_uncolored_color(g, coloring, e, v) {
                forbidden.mark(c);
            }
        }
        let reuse = fresh.iter().copied().find(|&c| !forbidden.is_marked(c));
        let c = reuse.unwrap_or_else(|| {
            let c = next_color + fresh.len() as Color;
            fresh.push(c);
            c
        });
        coloring.set(v, c);
    }
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::is_proper_complete;

    /// The running example's Chicago partition (Figure 7, solid edges among
    /// tuples 1..7): owners {1,2,3,4} pairwise conflicting, plus
    /// age-constrained spouse/child edges.
    fn chicago_graph() -> Hypergraph {
        let mut g = Hypergraph::new(7);
        // Vertices 0..3 are owners (pids 1..4): pairwise edges.
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                g.add_edge(&[i, j]);
            }
        }
        // Spouse (pid 5 = vertex 4) conflicts with old owners (75 vs 24).
        g.add_edge(&[0, 4]);
        g.add_edge(&[1, 4]);
        // Children (pids 6,7 = vertices 5,6) conflict with multi-lingual
        // owner age 25 (pid 4 = vertex 3): 10 < 25 − 12 is false, so only
        // with owner 75 multi-lingual (pid 2 = vertex 1): 10 < 75 − 50.
        g.add_edge(&[1, 5]);
        g.add_edge(&[1, 6]);
        g
    }

    #[test]
    fn greedy_colors_running_example_partition() {
        let g = chicago_graph();
        let mut c = Coloring::new(7);
        let colors: Vec<Color> = vec![0, 1, 2, 3]; // four Chicago households
        let skipped = coloring_lf(&g, &mut c, &CandidateLists::Shared(&colors));
        assert!(skipped.is_empty());
        assert!(is_proper_complete(&g, &c));
    }

    #[test]
    fn insufficient_colors_cause_skips_then_fresh_colors_fix_them() {
        // Triangle with a single candidate color: two vertices get skipped.
        let mut g = Hypergraph::new(3);
        g.add_edge(&[0, 1]);
        g.add_edge(&[1, 2]);
        g.add_edge(&[0, 2]);
        let mut c = Coloring::new(3);
        let skipped = coloring_lf(&g, &mut c, &CandidateLists::Shared(&[7]));
        assert_eq!(skipped.len(), 2);
        let fresh = color_skipped_with_fresh(&g, &mut c, &skipped, 100);
        assert!(is_proper_complete(&g, &c));
        // A triangle needs two fresh colors beyond the single shared one?
        // No: colors {7, 100, 100} would be improper only on the edge
        // between the two fresh vertices — so a second fresh color is
        // needed exactly when the skipped vertices are adjacent.
        assert_eq!(fresh.len(), 2);
    }

    #[test]
    fn fresh_colors_are_reused_when_skipped_vertices_are_independent() {
        // Path 0-1-2 with no candidate colors at all: all three skipped;
        // vertices 0 and 2 are not adjacent, so they can share one fresh
        // color.
        let mut g = Hypergraph::new(3);
        g.add_edge(&[0, 1]);
        g.add_edge(&[1, 2]);
        let mut c = Coloring::new(3);
        let empty: Vec<Color> = vec![];
        let skipped = coloring_lf(&g, &mut c, &CandidateLists::Shared(&empty));
        assert_eq!(skipped.len(), 3);
        let fresh = color_skipped_with_fresh(&g, &mut c, &skipped, 50);
        assert!(is_proper_complete(&g, &c));
        assert_eq!(fresh.len(), 2);
    }

    #[test]
    fn respects_preexisting_partial_coloring() {
        let mut g = Hypergraph::new(2);
        g.add_edge(&[0, 1]);
        let mut c = Coloring::new(2);
        c.set(0, 3);
        let skipped = coloring_lf(&g, &mut c, &CandidateLists::Shared(&[3, 4]));
        assert!(skipped.is_empty());
        assert_eq!(c.get(0), Some(3)); // untouched
        assert_eq!(c.get(1), Some(4)); // 3 forbidden by the edge
    }

    #[test]
    fn takes_smallest_permitted_color() {
        let g = Hypergraph::new(1);
        let mut c = Coloring::new(1);
        coloring_lf(&g, &mut c, &CandidateLists::Shared(&[9, 2, 5]));
        assert_eq!(c.get(0), Some(2));
    }

    #[test]
    fn per_vertex_lists() {
        let mut g = Hypergraph::new(2);
        g.add_edge(&[0, 1]);
        let lists = vec![vec![1], vec![1, 2]];
        let mut c = Coloring::new(2);
        let skipped = coloring_lf(&g, &mut c, &CandidateLists::PerVertex(&lists));
        assert!(skipped.is_empty());
        // Vertex 0 has degree == vertex 1; order ties broken by id, so 0
        // takes color 1 and 1 must take 2.
        assert_eq!(c.get(0), Some(1));
        assert_eq!(c.get(1), Some(2));
    }

    #[test]
    fn hyperedge_forbids_only_when_all_others_share_color() {
        let mut g = Hypergraph::new(3);
        g.add_edge(&[0, 1, 2]);
        let mut c = Coloring::new(3);
        c.set(0, 1);
        c.set(1, 2);
        // Vertex 2 may take 1 or 2: the 3-edge already has two colors.
        let skipped = coloring_lf(&g, &mut c, &CandidateLists::Shared(&[1]));
        assert!(skipped.is_empty());
        assert!(is_proper_complete(&g, &c));
    }

    #[test]
    fn paper_example_5_3_coloring() {
        // Example 5.3: the full conflict graph over all 9 tuples (dashed
        // edges included) with candidate colors 1..6. The paper reports the
        // assignment c = [2,1,3,4,3,2,2,5,6] under its ordering; we verify
        // that our deterministic order produces *a* proper coloring using
        // only the six candidates.
        let mut g = Hypergraph::new(9);
        // Owners: pids 1,2,3,4,8,9 → vertices 0,1,2,3,7,8 pairwise.
        let owners = [0u32, 1, 2, 3, 7, 8];
        for (i, &a) in owners.iter().enumerate() {
            for &b in &owners[i + 1..] {
                g.add_edge(&[a, b]);
            }
        }
        // Spouse pid5 (v4) with owners aged 75 (v0, v1).
        g.add_edge(&[0, 4]);
        g.add_edge(&[1, 4]);
        // Children pid6,7 (v5, v6) with multi-lingual owner 75 (v1).
        g.add_edge(&[1, 5]);
        g.add_edge(&[1, 6]);
        let mut c = Coloring::new(9);
        let colors: Vec<Color> = (1..=6).collect();
        let skipped = coloring_lf(&g, &mut c, &CandidateLists::Shared(&colors));
        assert!(skipped.is_empty());
        assert!(is_proper_complete(&g, &c));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::graph::{edge_is_monochromatic, Hypergraph};
    use proptest::prelude::*;

    fn arb_graph() -> impl Strategy<Value = Hypergraph> {
        (
            2usize..12,
            proptest::collection::vec((0u32..12, 0u32..12), 0..30),
        )
            .prop_map(|(n, pairs)| {
                let mut g = Hypergraph::new(n);
                for (a, b) in pairs {
                    let (a, b) = (a % n as u32, b % n as u32);
                    g.add_edge(&[a, b]);
                }
                g
            })
    }

    proptest! {
        /// Whatever the greedy does, it never *creates* a monochromatic
        /// edge: every fully-colored edge in the output is non-mono, and
        /// after fresh-color completion the coloring is proper.
        #[test]
        fn greedy_plus_fresh_is_always_proper(g in arb_graph(), n_colors in 0u32..4) {
            let colors: Vec<Color> = (0..n_colors).collect();
            let mut c = Coloring::new(g.n_vertices());
            let skipped = coloring_lf(&g, &mut c, &CandidateLists::Shared(&colors));
            for e in 0..g.n_edges() as u32 {
                prop_assert!(!edge_is_monochromatic(&g, &c, e));
            }
            color_skipped_with_fresh(&g, &mut c, &skipped, 1000);
            prop_assert!(crate::graph::is_proper_complete(&g, &c));
        }

        /// Greedy never skips when the shared candidate list is larger than
        /// the maximum degree (classic greedy-coloring guarantee; edges here
        /// are size-2).
        #[test]
        fn no_skips_with_enough_colors(g in arb_graph()) {
            let max_deg = (0..g.n_vertices() as u32).map(|v| g.degree(v)).max().unwrap_or(0);
            let colors: Vec<Color> = (0..=max_deg as u32).collect();
            let mut c = Coloring::new(g.n_vertices());
            let skipped = coloring_lf(&g, &mut c, &CandidateLists::Shared(&colors));
            prop_assert!(skipped.is_empty());
        }
    }
}
