//! Foreign-key denial constraints (Definition 2.2 of the paper).
//!
//! A Foreign Key DC is `∀t1..tk ¬(p1 ∧ … ∧ p_{n−1} ∧ t1.FK = … = tk.FK)`:
//! a conjunction φ of comparisons over the tuples' non-FK attributes, plus
//! the implicit FK-equality chain. We store φ explicitly (unary atoms
//! `t_i.A ◦ c` and binary atoms `t_i.A ◦ t_j.B + offset`, which cover the
//! paper's age-gap constraints such as `t2.Age < t1.Age − 50`) and leave the
//! FK chain implicit: a set of distinct tuples where φ holds is exactly a
//! conflict-hypergraph edge.

use crate::error::{ConstraintError, Result};
use cextend_table::{CmpOp, ColId, Relation, RowId, Schema, Value};
use std::fmt;

/// One conjunct of a DC's condition φ.
#[derive(Clone, PartialEq, Debug)]
pub enum DcAtom {
    /// `t_var.column ◦ value`.
    Unary {
        /// Tuple-variable index (0-based).
        var: usize,
        /// Column name.
        column: String,
        /// Operator.
        op: CmpOp,
        /// Constant.
        value: Value,
    },
    /// `t_lvar.lcol ◦ t_rvar.rcol + offset` (integer columns).
    Binary {
        /// Left tuple-variable index.
        lvar: usize,
        /// Left column name.
        lcol: String,
        /// Operator.
        op: CmpOp,
        /// Right tuple-variable index.
        rvar: usize,
        /// Right column name.
        rcol: String,
        /// Constant offset added to the right side.
        offset: i64,
    },
}

impl fmt::Display for DcAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcAtom::Unary {
                var,
                column,
                op,
                value,
            } => match value {
                Value::Str(s) => write!(f, "t{}.{column} {op} \"{s}\"", var + 1),
                Value::Int(v) => write!(f, "t{}.{column} {op} {v}", var + 1),
            },
            DcAtom::Binary {
                lvar,
                lcol,
                op,
                rvar,
                rcol,
                offset,
            } => {
                write!(f, "t{}.{lcol} {op} t{}.{rcol}", lvar + 1, rvar + 1)?;
                match offset.cmp(&0) {
                    std::cmp::Ordering::Greater => write!(f, " + {offset}"),
                    std::cmp::Ordering::Less => write!(f, " - {}", -offset),
                    std::cmp::Ordering::Equal => Ok(()),
                }
            }
        }
    }
}

/// A Foreign Key denial constraint: `¬(φ ∧ t1.FK = … = tk.FK)`.
#[derive(Clone, PartialEq, Debug)]
pub struct DenialConstraint {
    /// Identifier used in reports.
    pub name: String,
    /// Number of tuple variables `k` (≥ 2); quantification ranges over
    /// *distinct* tuples.
    pub arity: usize,
    /// The conjunction φ over non-FK attributes.
    pub atoms: Vec<DcAtom>,
}

impl DenialConstraint {
    /// Builds a DC, validating variable indices.
    pub fn new(
        name: impl Into<String>,
        arity: usize,
        atoms: Vec<DcAtom>,
    ) -> Result<DenialConstraint> {
        if arity < 2 {
            return Err(ConstraintError::BadDenialConstraint(format!(
                "arity must be at least 2, got {arity}"
            )));
        }
        for a in &atoms {
            let max_var = match a {
                DcAtom::Unary { var, .. } => *var,
                DcAtom::Binary { lvar, rvar, .. } => (*lvar).max(*rvar),
            };
            if max_var >= arity {
                return Err(ConstraintError::BadDenialConstraint(format!(
                    "atom `{a}` references tuple variable t{} but arity is {arity}",
                    max_var + 1
                )));
            }
        }
        Ok(DenialConstraint {
            name: name.into(),
            arity,
            atoms,
        })
    }

    /// Binds column names against `schema` for fast evaluation.
    pub fn bind(&self, schema: &Schema, relation: &str) -> Result<BoundDc> {
        let atoms = self
            .atoms
            .iter()
            .map(|a| {
                Ok(match a {
                    DcAtom::Unary {
                        var,
                        column,
                        op,
                        value,
                    } => BoundDcAtom::Unary {
                        var: *var,
                        col: schema.require(column, relation)?,
                        op: *op,
                        value: *value,
                    },
                    DcAtom::Binary {
                        lvar,
                        lcol,
                        op,
                        rvar,
                        rcol,
                        offset,
                    } => BoundDcAtom::Binary {
                        lvar: *lvar,
                        lcol: schema.require(lcol, relation)?,
                        op: *op,
                        rvar: *rvar,
                        rcol: schema.require(rcol, relation)?,
                        offset: *offset,
                    },
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(BoundDc {
            arity: self.arity,
            atoms,
        })
    }

    /// Evaluates φ on concrete rows (`rows.len()` must equal the arity).
    /// `true` means the rows *conflict*: giving them one FK value would
    /// violate this DC. Convenience wrapper around [`DenialConstraint::bind`].
    pub fn holds(&self, rel: &Relation, rows: &[RowId]) -> Result<bool> {
        Ok(self.bind(rel.schema(), rel.name())?.holds(rel, rows))
    }
}

impl fmt::Display for DenialConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ¬(", self.name)?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                f.write_str(" & ")?;
            }
            write!(f, "{a}")?;
        }
        if !self.atoms.is_empty() {
            f.write_str(" & ")?;
        }
        for v in 0..self.arity {
            if v > 0 {
                f.write_str(" = ")?;
            }
            write!(f, "t{}.FK", v + 1)?;
        }
        f.write_str(")")
    }
}

/// A DC bound to a schema.
#[derive(Clone, Debug)]
pub struct BoundDc {
    /// Number of tuple variables.
    pub arity: usize,
    atoms: Vec<BoundDcAtom>,
}

#[derive(Clone, Copy, Debug)]
enum BoundDcAtom {
    Unary {
        var: usize,
        col: ColId,
        op: CmpOp,
        value: Value,
    },
    Binary {
        lvar: usize,
        lcol: ColId,
        op: CmpOp,
        rvar: usize,
        rcol: ColId,
        offset: i64,
    },
}

impl BoundDc {
    /// Evaluates φ on `rows` (one per tuple variable). Missing cells make
    /// the containing atom false (φ cannot be established on absent data).
    #[inline]
    pub fn holds(&self, rel: &Relation, rows: &[RowId]) -> bool {
        debug_assert_eq!(rows.len(), self.arity);
        self.atoms.iter().all(|a| match *a {
            BoundDcAtom::Unary {
                var,
                col,
                op,
                value,
            } => match rel.get(rows[var], col) {
                Some(v) => op.eval(v, value),
                None => false,
            },
            BoundDcAtom::Binary {
                lvar,
                lcol,
                op,
                rvar,
                rcol,
                offset,
            } => match (rel.get_int(rows[lvar], lcol), rel.get_int(rows[rvar], rcol)) {
                (Some(l), Some(r)) => op.eval(Value::Int(l), Value::Int(r + offset)),
                _ => false,
            },
        })
    }

    /// `true` if row `r` can satisfy every unary atom of tuple variable
    /// `var` — a cheap pre-filter before enumerating tuple combinations.
    #[inline]
    pub fn var_candidate(&self, rel: &Relation, var: usize, r: RowId) -> bool {
        self.atoms.iter().all(|a| match *a {
            BoundDcAtom::Unary {
                var: v,
                col,
                op,
                value,
            } if v == var => match rel.get(r, col) {
                Some(x) => op.eval(x, value),
                None => false,
            },
            _ => true,
        })
    }

    /// Compiles this DC into a [`DcPlan`] for indexed enumeration.
    pub fn plan(&self) -> DcPlan {
        DcPlan::compile(self)
    }
}

/// One unary conjunct of φ, split out per tuple variable by [`DcPlan`].
#[derive(Clone, Copy, Debug)]
pub struct UnaryFilter {
    /// Column the atom reads.
    pub col: ColId,
    /// Operator.
    pub op: CmpOp,
    /// Constant compared against.
    pub value: Value,
}

impl UnaryFilter {
    /// Evaluates the atom on one row; a missing cell is `false`.
    #[inline]
    pub fn eval(&self, rel: &Relation, row: RowId) -> bool {
        match rel.get(row, self.col) {
            Some(x) => self.op.eval(x, self.value),
            None => false,
        }
    }
}

/// One binary conjunct `t_lvar.lcol ◦ t_rvar.rcol + offset` (integer
/// columns) as scheduled by a [`DcPlan`].
#[derive(Clone, Copy, Debug)]
pub struct BinaryAtomPlan {
    /// Left tuple-variable index.
    pub lvar: usize,
    /// Left column id.
    pub lcol: ColId,
    /// Operator.
    pub op: CmpOp,
    /// Right tuple-variable index.
    pub rvar: usize,
    /// Right column id.
    pub rcol: ColId,
    /// Constant offset added to the right side.
    pub offset: i64,
}

impl BinaryAtomPlan {
    /// `true` for `=` atoms — probeable through a hash bucket index (the
    /// most selective driver; see `cextend_core::conflict`).
    pub fn is_equality(&self) -> bool {
        self.op == CmpOp::Eq
    }

    /// `true` for ordering atoms — probeable through a sorted run.
    pub fn is_range(&self) -> bool {
        matches!(self.op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge)
    }

    /// `true` if the atom reads tuple variable `var`.
    pub fn involves(&self, var: usize) -> bool {
        self.lvar == var || self.rvar == var
    }

    /// The atom's other tuple variable (callers guarantee `involves(var)`;
    /// for a same-variable atom this returns `var` itself).
    pub fn other_var(&self, var: usize) -> usize {
        if self.lvar == var {
            self.rvar
        } else {
            self.lvar
        }
    }

    /// Evaluates the atom on raw integer cells (`l` from `lvar.lcol`, `r`
    /// from `rvar.rcol`); a missing cell is `false`. Identical semantics to
    /// [`BoundDc::holds`]'s binary branch, minus the `Value` boxing.
    #[inline]
    pub fn eval_cells(&self, l: Option<i64>, r: Option<i64>) -> bool {
        match (l, r) {
            (Some(l), Some(r)) => self.op.test(l.cmp(&(r + self.offset))),
            _ => false,
        }
    }
}

/// Canonical form of a binary atom used for the symmetry check only:
/// `l ◦ r + off` and its flip `r ◦' l − off` denote the same constraint, so
/// both orientations map to one key (smaller variable on the left).
fn canonical_binary_key(a: &BinaryAtomPlan) -> (usize, ColId, u8, usize, ColId, i64) {
    let rank = canonical_binary_key_rank;
    let flip = |op: CmpOp| -> CmpOp {
        match op {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq | CmpOp::Ne => op,
        }
    };
    let keep = (a.lvar, a.lcol) <= (a.rvar, a.rcol) || a.offset.checked_neg().is_none();
    if keep {
        (a.lvar, a.lcol, rank(a.op), a.rvar, a.rcol, a.offset)
    } else {
        (a.rvar, a.rcol, rank(flip(a.op)), a.lvar, a.lcol, -a.offset)
    }
}

/// A compiled evaluation plan for one [`BoundDc`].
///
/// The plan splits φ into per-variable unary filters (candidate
/// pre-filtering) and binary atoms carrying selectivity hints (equality
/// atoms probe hash buckets, ordering atoms probe sorted runs), and
/// detects **interchangeable tuple variables**: variables whose swap is an
/// automorphism of φ, so enumeration can restrict their assignments to
/// ascending vertex ids and emit each undirected conflict edge exactly once
/// instead of once per symmetric variable order.
#[derive(Clone, Debug)]
pub struct DcPlan {
    arity: usize,
    unary: Vec<Vec<UnaryFilter>>,
    binary: Vec<BinaryAtomPlan>,
    sym_class: Vec<usize>,
    never_holds: bool,
}

impl DcPlan {
    /// Compiles a bound DC.
    pub fn compile(dc: &BoundDc) -> DcPlan {
        let mut unary: Vec<Vec<UnaryFilter>> = vec![Vec::new(); dc.arity];
        let mut binary: Vec<BinaryAtomPlan> = Vec::new();
        for a in &dc.atoms {
            match *a {
                BoundDcAtom::Unary {
                    var,
                    col,
                    op,
                    value,
                } => unary[var].push(UnaryFilter { col, op, value }),
                BoundDcAtom::Binary {
                    lvar,
                    lcol,
                    op,
                    rvar,
                    rcol,
                    offset,
                } => binary.push(BinaryAtomPlan {
                    lvar,
                    lcol,
                    op,
                    rvar,
                    rcol,
                    offset,
                }),
            }
        }
        let sym_class = symmetry_classes(dc.arity, &unary, &binary);
        DcPlan {
            arity: dc.arity,
            unary,
            binary,
            sym_class,
            never_holds: false,
        }
    }

    /// Adds every equality atom implied by transitivity — `tᵢ.A = tⱼ.B + o₁`
    /// and `tⱼ.B = tₖ.C + o₂` imply `tᵢ.A = tₖ.C + (o₁ + o₂)` — and
    /// recomputes the interchangeability classes over the saturated atom
    /// multiset. The implied atoms are consequences of φ, so the saturated
    /// plan has **exactly the same satisfying assignments** (a complete
    /// assignment either satisfies all original equalities — then every
    /// implied one holds by transitivity — or fails an original atom and is
    /// rejected either way); what changes is that the enumeration can prune
    /// earlier and the symmetry detector can see through equality chains
    /// (`t1 = t2 ∧ t2 = t3` makes all three variables interchangeable, which
    /// the unsaturated multiset hides). When the closure derives two
    /// different offsets between the same column pair, φ is unsatisfiable
    /// and the plan is marked [`never_holds`](DcPlan::never_holds).
    ///
    /// The cost planner calls this at compile time; the static planner
    /// (`--dcplan static`) keeps the unsaturated plan as the oracle.
    pub fn saturate_equalities(&self) -> DcPlan {
        // Union-find with potentials over (var, col) nodes: pot(x) is
        // val(x) − val(root) in i128 so composed offsets cannot overflow.
        let mut nodes: Vec<(usize, ColId)> = Vec::new();
        let node_of = |nodes: &mut Vec<(usize, ColId)>, key: (usize, ColId)| -> usize {
            match nodes.iter().position(|&k| k == key) {
                Some(i) => i,
                None => {
                    nodes.push(key);
                    nodes.len() - 1
                }
            }
        };
        let eqs: Vec<&BinaryAtomPlan> = self.binary.iter().filter(|a| a.is_equality()).collect();
        if eqs.len() < 2 {
            return self.clone(); // nothing to chain
        }
        let mut parent: Vec<usize> = Vec::new();
        let mut pot: Vec<i128> = Vec::new();
        // find with full-path compression, returning (root, val(x) − val(root)).
        fn find(parent: &mut [usize], pot: &mut [i128], x: usize) -> (usize, i128) {
            if parent[x] == x {
                return (x, 0);
            }
            let (root, p) = find(parent, pot, parent[x]);
            parent[x] = root;
            pot[x] += p;
            (root, pot[x])
        }
        let mut contradiction = false;
        for a in &eqs {
            let l = node_of(&mut nodes, (a.lvar, a.lcol));
            let r = node_of(&mut nodes, (a.rvar, a.rcol));
            while parent.len() < nodes.len() {
                parent.push(parent.len());
                pot.push(0);
            }
            // val(l) = val(r) + offset.
            let (lr, lp) = find(&mut parent, &mut pot, l);
            let (rr, rp) = find(&mut parent, &mut pot, r);
            if lr == rr {
                if lp != rp + i128::from(a.offset) {
                    contradiction = true;
                    break;
                }
            } else {
                // Attach lr under rr: val(lr) − val(rr) = rp + offset − lp.
                parent[lr] = rr;
                pot[lr] = rp + i128::from(a.offset) - lp;
            }
        }
        if contradiction {
            let mut plan = self.clone();
            plan.never_holds = true;
            return plan;
        }
        // Emit every implied cross-variable equality not already present.
        let mut known: Vec<(usize, ColId, u8, usize, ColId, i64)> =
            self.binary.iter().map(canonical_binary_key).collect();
        known.sort_unstable();
        let mut binary = self.binary.clone();
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                let (vi, ci) = nodes[i];
                let (vj, cj) = nodes[j];
                if vi == vj {
                    continue;
                }
                let (ri, pi) = find(&mut parent, &mut pot, i);
                let (rj, pj) = find(&mut parent, &mut pot, j);
                if ri != rj {
                    continue;
                }
                // val(i) = val(j) + (pot(i) − pot(j)).
                let Ok(offset) = i64::try_from(pi - pj) else {
                    continue; // unrepresentable; skip the (pure-bonus) atom
                };
                let atom = BinaryAtomPlan {
                    lvar: vi,
                    lcol: ci,
                    op: CmpOp::Eq,
                    rvar: vj,
                    rcol: cj,
                    offset,
                };
                if known.binary_search(&canonical_binary_key(&atom)).is_err() {
                    binary.push(atom);
                }
            }
        }
        let sym_class = symmetry_classes(self.arity, &self.unary, &binary);
        DcPlan {
            arity: self.arity,
            unary: self.unary.clone(),
            binary,
            sym_class,
            never_holds: false,
        }
    }

    /// `true` when compilation proved φ unsatisfiable (contradictory
    /// equality chain) — the DC contributes no conflict edge on any input.
    pub fn never_holds(&self) -> bool {
        self.never_holds
    }

    /// `true` for an arity-2 DC whose φ is purely unary: every pair of one
    /// candidate from each variable is a conflict edge, so the edge set is
    /// a (bi-)clique over the candidate lists and can be emitted in bulk.
    pub fn is_pure_unary_pair(&self) -> bool {
        self.arity == 2 && self.binary.is_empty()
    }

    /// `true` for an arity-2 DC bulk-emittable without enumeration: φ has
    /// at most one binary atom, and that atom links the two variables. With
    /// no atom the edge set is a (bi-)clique over the candidate lists; with
    /// one atom it is a union of sorted-run windows — one probe per
    /// candidate of the first variable, every match an edge.
    pub fn is_bulk_pair(&self) -> bool {
        self.arity == 2
            && match self.binary.as_slice() {
                [] => true,
                [a] => a.lvar != a.rvar,
                _ => false,
            }
    }

    /// Number of tuple variables.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The unary atoms of tuple variable `var`.
    pub fn unary_filters(&self, var: usize) -> &[UnaryFilter] {
        &self.unary[var]
    }

    /// All binary atoms of φ.
    pub fn binary_atoms(&self) -> &[BinaryAtomPlan] {
        &self.binary
    }

    /// The symmetry class of `var`: the smallest variable index it is
    /// interchangeable with. Variables sharing a class may be constrained
    /// to ascending vertex ids without losing any conflict edge.
    pub fn sym_class(&self, var: usize) -> usize {
        self.sym_class[var]
    }

    /// `true` if row `r` passes every unary atom of `var` (identical to
    /// [`BoundDc::var_candidate`]).
    #[inline]
    pub fn row_passes_unary(&self, rel: &Relation, var: usize, r: RowId) -> bool {
        self.unary[var].iter().all(|f| f.eval(rel, r))
    }
}

/// Groups tuple variables into interchangeability classes: `var` joins the
/// class of the smallest `prev` such that swapping `var` with *every*
/// member of `prev`'s class is an automorphism of φ (unary multisets equal,
/// binary multiset mapped onto itself). Requiring the check against every
/// member keeps the class sound even when pairwise interchangeability is
/// not transitive.
fn symmetry_classes(
    arity: usize,
    unary: &[Vec<UnaryFilter>],
    binary: &[BinaryAtomPlan],
) -> Vec<usize> {
    let unary_key = |var: usize| -> Vec<(ColId, u8, Value)> {
        let mut k: Vec<(ColId, u8, Value)> = unary[var]
            .iter()
            .map(|f| (f.col, canonical_binary_key_rank(f.op), f.value))
            .collect();
        k.sort();
        k
    };
    let canon_multiset = |atoms: &[BinaryAtomPlan]| -> Vec<(usize, ColId, u8, usize, ColId, i64)> {
        let mut k: Vec<_> = atoms.iter().map(canonical_binary_key).collect();
        k.sort_unstable();
        k
    };
    let base = canon_multiset(binary);
    let interchangeable = |a: usize, b: usize| -> bool {
        if unary_key(a) != unary_key(b) {
            return false;
        }
        let swapped: Vec<BinaryAtomPlan> = binary
            .iter()
            .map(|atom| {
                let tau = |v: usize| {
                    if v == a {
                        b
                    } else if v == b {
                        a
                    } else {
                        v
                    }
                };
                BinaryAtomPlan {
                    lvar: tau(atom.lvar),
                    rvar: tau(atom.rvar),
                    ..*atom
                }
            })
            .collect();
        canon_multiset(&swapped) == base
    };
    let mut class: Vec<usize> = (0..arity).collect();
    for var in 1..arity {
        for rep in 0..var {
            if class[rep] != rep {
                continue; // only class representatives
            }
            let members: Vec<usize> = (0..var).filter(|&m| class[m] == rep).collect();
            if members.iter().all(|&m| interchangeable(m, var)) {
                class[var] = rep;
                break;
            }
        }
    }
    class
}

/// Operator rank shared by the unary and binary canonical keys.
fn canonical_binary_key_rank(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cextend_table::{ColumnDef, Dtype, Schema};

    fn persons() -> Relation {
        let schema = Schema::new(vec![
            ColumnDef::key("pid", Dtype::Int),
            ColumnDef::attr("Age", Dtype::Int),
            ColumnDef::attr("Rel", Dtype::Str),
            ColumnDef::attr("Multi-ling", Dtype::Int),
            ColumnDef::foreign_key("hid", Dtype::Int),
        ])
        .unwrap();
        let mut r = Relation::new("Persons", schema);
        for (pid, age, rl, m) in [
            (1, 75, "Owner", 0),
            (2, 75, "Owner", 1),
            (5, 24, "Spouse", 0),
            (6, 10, "Child", 1),
        ] {
            r.push_row(&[
                Some(Value::Int(pid)),
                Some(Value::Int(age)),
                Some(Value::str(rl)),
                Some(Value::Int(m)),
                None,
            ])
            .unwrap();
        }
        r
    }

    /// `DC_{O,O}`: no two homeowners share a home.
    fn dc_oo() -> DenialConstraint {
        DenialConstraint::new(
            "DC_OO",
            2,
            vec![
                DcAtom::Unary {
                    var: 0,
                    column: "Rel".into(),
                    op: CmpOp::Eq,
                    value: Value::str("Owner"),
                },
                DcAtom::Unary {
                    var: 1,
                    column: "Rel".into(),
                    op: CmpOp::Eq,
                    value: Value::str("Owner"),
                },
            ],
        )
        .unwrap()
    }

    /// `DC_{O,S,low}`: spouse at most 50 years younger than the owner:
    /// ¬(t1.Rel=Owner ∧ t2.Rel=Spouse ∧ t2.Age < t1.Age − 50 ∧ same hid).
    fn dc_os_low() -> DenialConstraint {
        DenialConstraint::new(
            "DC_OS_low",
            2,
            vec![
                DcAtom::Unary {
                    var: 0,
                    column: "Rel".into(),
                    op: CmpOp::Eq,
                    value: Value::str("Owner"),
                },
                DcAtom::Unary {
                    var: 1,
                    column: "Rel".into(),
                    op: CmpOp::Eq,
                    value: Value::str("Spouse"),
                },
                DcAtom::Binary {
                    lvar: 1,
                    lcol: "Age".into(),
                    op: CmpOp::Lt,
                    rvar: 0,
                    rcol: "Age".into(),
                    offset: -50,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn owner_owner_conflicts() {
        let r = persons();
        let dc = dc_oo();
        assert!(dc.holds(&r, &[0, 1]).unwrap()); // two owners
        assert!(!dc.holds(&r, &[0, 2]).unwrap()); // owner + spouse
    }

    #[test]
    fn age_gap_with_offset() {
        let r = persons();
        let dc = dc_os_low();
        // Spouse aged 24, owner aged 75: 24 < 75 − 50 = 25 → conflict.
        assert!(dc.holds(&r, &[0, 2]).unwrap());
        // Reversed variable order does not match the Rel atoms.
        assert!(!dc.holds(&r, &[2, 0]).unwrap());
    }

    #[test]
    fn var_candidate_prefilters() {
        let r = persons();
        let bound = dc_os_low().bind(r.schema(), "Persons").unwrap();
        assert!(bound.var_candidate(&r, 0, 0)); // owner fits t1
        assert!(!bound.var_candidate(&r, 0, 2)); // spouse does not fit t1
        assert!(bound.var_candidate(&r, 1, 2)); // spouse fits t2
        assert!(!bound.var_candidate(&r, 1, 3)); // child does not fit t2
    }

    #[test]
    fn missing_cells_never_conflict() {
        let schema = Schema::new(vec![
            ColumnDef::attr("Age", Dtype::Int),
            ColumnDef::foreign_key("fk", Dtype::Int),
        ])
        .unwrap();
        let mut r = Relation::new("t", schema);
        r.push_row(&[None, None]).unwrap();
        r.push_row(&[Some(Value::Int(5)), None]).unwrap();
        let dc = DenialConstraint::new(
            "d",
            2,
            vec![DcAtom::Binary {
                lvar: 0,
                lcol: "Age".into(),
                op: CmpOp::Le,
                rvar: 1,
                rcol: "Age".into(),
                offset: 0,
            }],
        )
        .unwrap();
        assert!(!dc.holds(&r, &[0, 1]).unwrap());
    }

    #[test]
    fn validation_rejects_bad_arity_and_vars() {
        assert!(DenialConstraint::new("d", 1, vec![]).is_err());
        let bad = DenialConstraint::new(
            "d",
            2,
            vec![DcAtom::Unary {
                var: 5,
                column: "Age".into(),
                op: CmpOp::Eq,
                value: Value::Int(1),
            }],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn unknown_column_fails_at_bind() {
        let r = persons();
        let dc = DenialConstraint::new(
            "d",
            2,
            vec![DcAtom::Unary {
                var: 0,
                column: "nope".into(),
                op: CmpOp::Eq,
                value: Value::Int(1),
            }],
        )
        .unwrap();
        assert!(dc.holds(&r, &[0, 1]).is_err());
    }

    #[test]
    fn plan_detects_symmetric_variables() {
        let r = persons();
        // DC_OO: both variables carry the identical Owner atom → one class.
        let plan = dc_oo().bind(r.schema(), "Persons").unwrap().plan();
        assert_eq!(plan.arity(), 2);
        assert_eq!(plan.sym_class(0), 0);
        assert_eq!(plan.sym_class(1), 0);
        // DC_OS_low: Owner vs Spouse atoms differ → separate classes.
        let plan = dc_os_low().bind(r.schema(), "Persons").unwrap().plan();
        assert_eq!(plan.sym_class(0), 0);
        assert_eq!(plan.sym_class(1), 1);
        assert_eq!(plan.unary_filters(0).len(), 1);
        assert_eq!(plan.binary_atoms().len(), 1);
        assert!(plan.binary_atoms()[0].is_range());
        assert!(!plan.binary_atoms()[0].is_equality());
    }

    #[test]
    fn plan_symmetry_on_equality_chain() {
        // NAE-style: ¬(t1.Age = t2.Age ∧ t2.Age = t3.Age). Swapping t1,t3
        // maps the chain onto itself; t2 is pinned by both atoms.
        let chain = |l: usize, r_: usize| DcAtom::Binary {
            lvar: l,
            lcol: "Age".into(),
            op: CmpOp::Eq,
            rvar: r_,
            rcol: "Age".into(),
            offset: 0,
        };
        let dc = DenialConstraint::new("nae", 3, vec![chain(0, 1), chain(1, 2)]).unwrap();
        let r = persons();
        let plan = dc.bind(r.schema(), "Persons").unwrap().plan();
        assert_eq!(plan.sym_class(0), 0);
        assert_eq!(plan.sym_class(1), 1);
        assert_eq!(plan.sym_class(2), 0);
        assert!(plan.binary_atoms().iter().all(BinaryAtomPlan::is_equality));
    }

    #[test]
    fn saturation_merges_equality_chain_classes() {
        // The chain of the previous test: saturation adds the implied
        // t1.Age = t3.Age atom, after which all three variables are
        // interchangeable — each unordered triple enumerates exactly once.
        let chain = |l: usize, r_: usize| DcAtom::Binary {
            lvar: l,
            lcol: "Age".into(),
            op: CmpOp::Eq,
            rvar: r_,
            rcol: "Age".into(),
            offset: 0,
        };
        let dc = DenialConstraint::new("nae", 3, vec![chain(0, 1), chain(1, 2)]).unwrap();
        let r = persons();
        let plan = dc.bind(r.schema(), "Persons").unwrap().plan();
        let sat = plan.saturate_equalities();
        assert!(!sat.never_holds());
        assert_eq!(sat.binary_atoms().len(), 3);
        assert_eq!(sat.sym_class(0), 0);
        assert_eq!(sat.sym_class(1), 0);
        assert_eq!(sat.sym_class(2), 0);
        // Idempotent: re-saturating adds nothing.
        assert_eq!(
            sat.saturate_equalities().binary_atoms().len(),
            sat.binary_atoms().len()
        );
    }

    #[test]
    fn saturation_composes_offsets_and_keeps_asymmetry() {
        // t1.Age = t2.Age + 5 ∧ t2.Age = t3.Age + 5 ⟹ t1.Age = t3.Age + 10.
        let chain = |l: usize, r_: usize, off: i64| DcAtom::Binary {
            lvar: l,
            lcol: "Age".into(),
            op: CmpOp::Eq,
            rvar: r_,
            rcol: "Age".into(),
            offset: off,
        };
        let dc = DenialConstraint::new("steps", 3, vec![chain(0, 1, 5), chain(1, 2, 5)]).unwrap();
        let r = persons();
        let sat = dc
            .bind(r.schema(), "Persons")
            .unwrap()
            .plan()
            .saturate_equalities();
        let implied = sat
            .binary_atoms()
            .iter()
            .find(|a| a.lvar == 0 && a.rvar == 2)
            .expect("implied atom");
        assert_eq!(implied.offset, 10);
        // Nonzero offsets break interchangeability: classes stay distinct.
        assert_eq!(sat.sym_class(2), 2);
    }

    #[test]
    fn saturation_detects_contradictions() {
        // t1.Age = t2.Age + 1 ∧ t2.Age = t1.Age + 1 sums to 0 = 2: φ can
        // never hold.
        let a = DcAtom::Binary {
            lvar: 0,
            lcol: "Age".into(),
            op: CmpOp::Eq,
            rvar: 1,
            rcol: "Age".into(),
            offset: 1,
        };
        let b = DcAtom::Binary {
            lvar: 1,
            lcol: "Age".into(),
            op: CmpOp::Eq,
            rvar: 0,
            rcol: "Age".into(),
            offset: 1,
        };
        let dc = DenialConstraint::new("contra", 2, vec![a, b]).unwrap();
        let r = persons();
        let plan = dc.bind(r.schema(), "Persons").unwrap().plan();
        assert!(!plan.never_holds());
        assert!(plan.saturate_equalities().never_holds());
    }

    #[test]
    fn pure_unary_pair_classification() {
        let r = persons();
        assert!(dc_oo()
            .bind(r.schema(), "Persons")
            .unwrap()
            .plan()
            .is_pure_unary_pair());
        assert!(!dc_os_low()
            .bind(r.schema(), "Persons")
            .unwrap()
            .plan()
            .is_pure_unary_pair());
    }

    #[test]
    fn plan_unary_filter_matches_var_candidate() {
        let r = persons();
        let bound = dc_os_low().bind(r.schema(), "Persons").unwrap();
        let plan = bound.plan();
        for var in 0..2 {
            for row in 0..r.n_rows() {
                assert_eq!(
                    plan.row_passes_unary(&r, var, row),
                    bound.var_candidate(&r, var, row),
                    "var {var} row {row}"
                );
            }
        }
    }

    #[test]
    fn binary_atom_eval_cells_matches_holds_semantics() {
        let atom = BinaryAtomPlan {
            lvar: 1,
            lcol: 0,
            op: CmpOp::Lt,
            rvar: 0,
            rcol: 0,
            offset: -50,
        };
        assert!(atom.eval_cells(Some(24), Some(75))); // 24 < 75 − 50
        assert!(!atom.eval_cells(Some(25), Some(75)));
        assert!(!atom.eval_cells(None, Some(75))); // missing cells never conflict
        assert!(!atom.eval_cells(Some(24), None));
        assert_eq!(atom.other_var(1), 0);
        assert!(atom.involves(0) && atom.involves(1) && !atom.involves(2));
    }

    #[test]
    fn display_shows_fk_chain() {
        let s = dc_oo().to_string();
        assert!(s.contains("t1.Rel = \"Owner\""));
        assert!(s.contains("t1.FK = t2.FK"));
        let s = dc_os_low().to_string();
        assert!(s.contains("t2.Age < t1.Age - 50"));
    }
}
