//! Foreign-key denial constraints (Definition 2.2 of the paper).
//!
//! A Foreign Key DC is `∀t1..tk ¬(p1 ∧ … ∧ p_{n−1} ∧ t1.FK = … = tk.FK)`:
//! a conjunction φ of comparisons over the tuples' non-FK attributes, plus
//! the implicit FK-equality chain. We store φ explicitly (unary atoms
//! `t_i.A ◦ c` and binary atoms `t_i.A ◦ t_j.B + offset`, which cover the
//! paper's age-gap constraints such as `t2.Age < t1.Age − 50`) and leave the
//! FK chain implicit: a set of distinct tuples where φ holds is exactly a
//! conflict-hypergraph edge.

use crate::error::{ConstraintError, Result};
use cextend_table::{CmpOp, ColId, Relation, RowId, Schema, Value};
use std::fmt;

/// One conjunct of a DC's condition φ.
#[derive(Clone, PartialEq, Debug)]
pub enum DcAtom {
    /// `t_var.column ◦ value`.
    Unary {
        /// Tuple-variable index (0-based).
        var: usize,
        /// Column name.
        column: String,
        /// Operator.
        op: CmpOp,
        /// Constant.
        value: Value,
    },
    /// `t_lvar.lcol ◦ t_rvar.rcol + offset` (integer columns).
    Binary {
        /// Left tuple-variable index.
        lvar: usize,
        /// Left column name.
        lcol: String,
        /// Operator.
        op: CmpOp,
        /// Right tuple-variable index.
        rvar: usize,
        /// Right column name.
        rcol: String,
        /// Constant offset added to the right side.
        offset: i64,
    },
}

impl fmt::Display for DcAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcAtom::Unary {
                var,
                column,
                op,
                value,
            } => match value {
                Value::Str(s) => write!(f, "t{}.{column} {op} \"{s}\"", var + 1),
                Value::Int(v) => write!(f, "t{}.{column} {op} {v}", var + 1),
            },
            DcAtom::Binary {
                lvar,
                lcol,
                op,
                rvar,
                rcol,
                offset,
            } => {
                write!(f, "t{}.{lcol} {op} t{}.{rcol}", lvar + 1, rvar + 1)?;
                match offset.cmp(&0) {
                    std::cmp::Ordering::Greater => write!(f, " + {offset}"),
                    std::cmp::Ordering::Less => write!(f, " - {}", -offset),
                    std::cmp::Ordering::Equal => Ok(()),
                }
            }
        }
    }
}

/// A Foreign Key denial constraint: `¬(φ ∧ t1.FK = … = tk.FK)`.
#[derive(Clone, PartialEq, Debug)]
pub struct DenialConstraint {
    /// Identifier used in reports.
    pub name: String,
    /// Number of tuple variables `k` (≥ 2); quantification ranges over
    /// *distinct* tuples.
    pub arity: usize,
    /// The conjunction φ over non-FK attributes.
    pub atoms: Vec<DcAtom>,
}

impl DenialConstraint {
    /// Builds a DC, validating variable indices.
    pub fn new(
        name: impl Into<String>,
        arity: usize,
        atoms: Vec<DcAtom>,
    ) -> Result<DenialConstraint> {
        if arity < 2 {
            return Err(ConstraintError::BadDenialConstraint(format!(
                "arity must be at least 2, got {arity}"
            )));
        }
        for a in &atoms {
            let max_var = match a {
                DcAtom::Unary { var, .. } => *var,
                DcAtom::Binary { lvar, rvar, .. } => (*lvar).max(*rvar),
            };
            if max_var >= arity {
                return Err(ConstraintError::BadDenialConstraint(format!(
                    "atom `{a}` references tuple variable t{} but arity is {arity}",
                    max_var + 1
                )));
            }
        }
        Ok(DenialConstraint {
            name: name.into(),
            arity,
            atoms,
        })
    }

    /// Binds column names against `schema` for fast evaluation.
    pub fn bind(&self, schema: &Schema, relation: &str) -> Result<BoundDc> {
        let atoms = self
            .atoms
            .iter()
            .map(|a| {
                Ok(match a {
                    DcAtom::Unary {
                        var,
                        column,
                        op,
                        value,
                    } => BoundDcAtom::Unary {
                        var: *var,
                        col: schema.require(column, relation)?,
                        op: *op,
                        value: *value,
                    },
                    DcAtom::Binary {
                        lvar,
                        lcol,
                        op,
                        rvar,
                        rcol,
                        offset,
                    } => BoundDcAtom::Binary {
                        lvar: *lvar,
                        lcol: schema.require(lcol, relation)?,
                        op: *op,
                        rvar: *rvar,
                        rcol: schema.require(rcol, relation)?,
                        offset: *offset,
                    },
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(BoundDc {
            arity: self.arity,
            atoms,
        })
    }

    /// Evaluates φ on concrete rows (`rows.len()` must equal the arity).
    /// `true` means the rows *conflict*: giving them one FK value would
    /// violate this DC. Convenience wrapper around [`DenialConstraint::bind`].
    pub fn holds(&self, rel: &Relation, rows: &[RowId]) -> Result<bool> {
        Ok(self.bind(rel.schema(), rel.name())?.holds(rel, rows))
    }
}

impl fmt::Display for DenialConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ¬(", self.name)?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                f.write_str(" & ")?;
            }
            write!(f, "{a}")?;
        }
        if !self.atoms.is_empty() {
            f.write_str(" & ")?;
        }
        for v in 0..self.arity {
            if v > 0 {
                f.write_str(" = ")?;
            }
            write!(f, "t{}.FK", v + 1)?;
        }
        f.write_str(")")
    }
}

/// A DC bound to a schema.
#[derive(Clone, Debug)]
pub struct BoundDc {
    /// Number of tuple variables.
    pub arity: usize,
    atoms: Vec<BoundDcAtom>,
}

#[derive(Clone, Copy, Debug)]
enum BoundDcAtom {
    Unary {
        var: usize,
        col: ColId,
        op: CmpOp,
        value: Value,
    },
    Binary {
        lvar: usize,
        lcol: ColId,
        op: CmpOp,
        rvar: usize,
        rcol: ColId,
        offset: i64,
    },
}

impl BoundDc {
    /// Evaluates φ on `rows` (one per tuple variable). Missing cells make
    /// the containing atom false (φ cannot be established on absent data).
    #[inline]
    pub fn holds(&self, rel: &Relation, rows: &[RowId]) -> bool {
        debug_assert_eq!(rows.len(), self.arity);
        self.atoms.iter().all(|a| match *a {
            BoundDcAtom::Unary {
                var,
                col,
                op,
                value,
            } => match rel.get(rows[var], col) {
                Some(v) => op.eval(v, value),
                None => false,
            },
            BoundDcAtom::Binary {
                lvar,
                lcol,
                op,
                rvar,
                rcol,
                offset,
            } => match (rel.get_int(rows[lvar], lcol), rel.get_int(rows[rvar], rcol)) {
                (Some(l), Some(r)) => op.eval(Value::Int(l), Value::Int(r + offset)),
                _ => false,
            },
        })
    }

    /// `true` if row `r` can satisfy every unary atom of tuple variable
    /// `var` — a cheap pre-filter before enumerating tuple combinations.
    #[inline]
    pub fn var_candidate(&self, rel: &Relation, var: usize, r: RowId) -> bool {
        self.atoms.iter().all(|a| match *a {
            BoundDcAtom::Unary {
                var: v,
                col,
                op,
                value,
            } if v == var => match rel.get(r, col) {
                Some(x) => op.eval(x, value),
                None => false,
            },
            _ => true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cextend_table::{ColumnDef, Dtype, Schema};

    fn persons() -> Relation {
        let schema = Schema::new(vec![
            ColumnDef::key("pid", Dtype::Int),
            ColumnDef::attr("Age", Dtype::Int),
            ColumnDef::attr("Rel", Dtype::Str),
            ColumnDef::attr("Multi-ling", Dtype::Int),
            ColumnDef::foreign_key("hid", Dtype::Int),
        ])
        .unwrap();
        let mut r = Relation::new("Persons", schema);
        for (pid, age, rl, m) in [
            (1, 75, "Owner", 0),
            (2, 75, "Owner", 1),
            (5, 24, "Spouse", 0),
            (6, 10, "Child", 1),
        ] {
            r.push_row(&[
                Some(Value::Int(pid)),
                Some(Value::Int(age)),
                Some(Value::str(rl)),
                Some(Value::Int(m)),
                None,
            ])
            .unwrap();
        }
        r
    }

    /// `DC_{O,O}`: no two homeowners share a home.
    fn dc_oo() -> DenialConstraint {
        DenialConstraint::new(
            "DC_OO",
            2,
            vec![
                DcAtom::Unary {
                    var: 0,
                    column: "Rel".into(),
                    op: CmpOp::Eq,
                    value: Value::str("Owner"),
                },
                DcAtom::Unary {
                    var: 1,
                    column: "Rel".into(),
                    op: CmpOp::Eq,
                    value: Value::str("Owner"),
                },
            ],
        )
        .unwrap()
    }

    /// `DC_{O,S,low}`: spouse at most 50 years younger than the owner:
    /// ¬(t1.Rel=Owner ∧ t2.Rel=Spouse ∧ t2.Age < t1.Age − 50 ∧ same hid).
    fn dc_os_low() -> DenialConstraint {
        DenialConstraint::new(
            "DC_OS_low",
            2,
            vec![
                DcAtom::Unary {
                    var: 0,
                    column: "Rel".into(),
                    op: CmpOp::Eq,
                    value: Value::str("Owner"),
                },
                DcAtom::Unary {
                    var: 1,
                    column: "Rel".into(),
                    op: CmpOp::Eq,
                    value: Value::str("Spouse"),
                },
                DcAtom::Binary {
                    lvar: 1,
                    lcol: "Age".into(),
                    op: CmpOp::Lt,
                    rvar: 0,
                    rcol: "Age".into(),
                    offset: -50,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn owner_owner_conflicts() {
        let r = persons();
        let dc = dc_oo();
        assert!(dc.holds(&r, &[0, 1]).unwrap()); // two owners
        assert!(!dc.holds(&r, &[0, 2]).unwrap()); // owner + spouse
    }

    #[test]
    fn age_gap_with_offset() {
        let r = persons();
        let dc = dc_os_low();
        // Spouse aged 24, owner aged 75: 24 < 75 − 50 = 25 → conflict.
        assert!(dc.holds(&r, &[0, 2]).unwrap());
        // Reversed variable order does not match the Rel atoms.
        assert!(!dc.holds(&r, &[2, 0]).unwrap());
    }

    #[test]
    fn var_candidate_prefilters() {
        let r = persons();
        let bound = dc_os_low().bind(r.schema(), "Persons").unwrap();
        assert!(bound.var_candidate(&r, 0, 0)); // owner fits t1
        assert!(!bound.var_candidate(&r, 0, 2)); // spouse does not fit t1
        assert!(bound.var_candidate(&r, 1, 2)); // spouse fits t2
        assert!(!bound.var_candidate(&r, 1, 3)); // child does not fit t2
    }

    #[test]
    fn missing_cells_never_conflict() {
        let schema = Schema::new(vec![
            ColumnDef::attr("Age", Dtype::Int),
            ColumnDef::foreign_key("fk", Dtype::Int),
        ])
        .unwrap();
        let mut r = Relation::new("t", schema);
        r.push_row(&[None, None]).unwrap();
        r.push_row(&[Some(Value::Int(5)), None]).unwrap();
        let dc = DenialConstraint::new(
            "d",
            2,
            vec![DcAtom::Binary {
                lvar: 0,
                lcol: "Age".into(),
                op: CmpOp::Le,
                rvar: 1,
                rcol: "Age".into(),
                offset: 0,
            }],
        )
        .unwrap();
        assert!(!dc.holds(&r, &[0, 1]).unwrap());
    }

    #[test]
    fn validation_rejects_bad_arity_and_vars() {
        assert!(DenialConstraint::new("d", 1, vec![]).is_err());
        let bad = DenialConstraint::new(
            "d",
            2,
            vec![DcAtom::Unary {
                var: 5,
                column: "Age".into(),
                op: CmpOp::Eq,
                value: Value::Int(1),
            }],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn unknown_column_fails_at_bind() {
        let r = persons();
        let dc = DenialConstraint::new(
            "d",
            2,
            vec![DcAtom::Unary {
                var: 0,
                column: "nope".into(),
                op: CmpOp::Eq,
                value: Value::Int(1),
            }],
        )
        .unwrap();
        assert!(dc.holds(&r, &[0, 1]).is_err());
    }

    #[test]
    fn display_shows_fk_chain() {
        let s = dc_oo().to_string();
        assert!(s.contains("t1.Rel = \"Owner\""));
        assert!(s.contains("t1.FK = t2.FK"));
        let s = dc_os_low().to_string();
        assert!(s.contains("t2.Age < t1.Age - 50"));
    }
}
