//! Marginal augmentation (Sections 4.1 and 4.3 of the paper).
//!
//! The all-way marginals of `R1` — counts per combination of its non-key
//! attribute values, after binning — hold in `V_join` by construction
//! (`|V_join| = |R1|`, row for row). Adding them to the ILP pins every
//! variable group to its true total, which both improves CC accuracy and
//! makes the system's hard part always feasible. The *modified* variant
//! restricts the marginals to the tuples relevant to the intersecting CC
//! subset, as the hybrid approach requires.

use crate::cc::{CardinalityConstraint, NormalizedCond};
use crate::error::Result;
use crate::intervalize::{BinKey, Binning};
use cextend_table::{Relation, RowId};
use std::collections::BTreeMap;

/// Counts rows per bin. `rows` restricts the count to a subset (the hybrid
/// counts only rows still unassigned after Algorithm 2); `None` counts all.
/// Rows with missing binned cells are skipped. Results are sorted by bin.
pub fn marginal_counts(
    rel: &Relation,
    binning: &Binning,
    rows: Option<&[RowId]>,
) -> Result<Vec<(BinKey, u64)>> {
    let bound = binning.bind(rel.schema(), rel.name())?;
    let mut map: BTreeMap<BinKey, u64> = BTreeMap::new();
    let mut count_row = |r: RowId| {
        if let Some(bin) = bound.bin_of_row(rel, r) {
            *map.entry(bin).or_insert(0) += 1;
        }
    };
    match rows {
        Some(rows) => rows.iter().copied().for_each(&mut count_row),
        None => rel.rows().for_each(&mut count_row),
    }
    Ok(map.into_iter().collect())
}

/// Emits one marginal CC per bin: condition = the bin's `R1` condition,
/// `R2` side unconstrained, target = the bin count (Section 4.1,
/// "augmenting with all-way marginals").
pub fn marginal_ccs(
    rel: &Relation,
    binning: &Binning,
    rows: Option<&[RowId]>,
) -> Result<Vec<CardinalityConstraint>> {
    Ok(marginal_counts(rel, binning, rows)?
        .into_iter()
        .enumerate()
        .map(|(i, (bin, count))| {
            CardinalityConstraint::new(
                format!("marginal{i}"),
                binning.bin_to_cond(&bin),
                NormalizedCond::always(),
                count,
            )
        })
        .collect())
}

/// Filters marginals to those whose bin overlaps at least one of `conds` —
/// the "modified marginals" of Section 4.3, scoped to the CCs handed to the
/// ILP. A bin overlaps a condition when it satisfies it on every column the
/// condition constrains *within the binning*.
pub fn restrict_marginals(
    binning: &Binning,
    marginals: Vec<(BinKey, u64)>,
    conds: &[NormalizedCond],
) -> Result<Vec<(BinKey, u64)>> {
    let mut out = Vec::new();
    for (bin, count) in marginals {
        let mut keep = false;
        for cond in conds {
            // Only test the columns this binning knows about; R2-side parts
            // of a CC are not part of an R1 binning.
            let projected = NormalizedCond::from_sets(
                cond.iter()
                    .filter(|(col, _)| binning.columns().iter().any(|c| c == col))
                    .map(|(col, set)| (col.to_owned(), set.clone())),
            );
            if binning.bin_satisfies(&bin, &projected)? {
                keep = true;
                break;
            }
        }
        if keep {
            out.push((bin, count));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervalize::{BinDim, ColumnIntervals};
    use cextend_table::{Atom, ColumnDef, Dtype, Predicate, Schema, Value};

    fn persons() -> Relation {
        let schema = Schema::new(vec![
            ColumnDef::key("pid", Dtype::Int),
            ColumnDef::attr("Age", Dtype::Int),
            ColumnDef::attr("Rel", Dtype::Str),
            ColumnDef::attr("Multi-ling", Dtype::Int),
        ])
        .unwrap();
        let mut r = Relation::new("Persons", schema);
        // The paper's Figure 1 R1.
        for (pid, age, rl, m) in [
            (1, 75, "Owner", 0),
            (2, 75, "Owner", 1),
            (3, 25, "Owner", 0),
            (4, 25, "Owner", 1),
            (5, 24, "Spouse", 0),
            (6, 10, "Child", 1),
            (7, 10, "Child", 1),
            (8, 30, "Owner", 0),
            (9, 30, "Owner", 1),
        ] {
            r.push_full_row(&[
                Value::Int(pid),
                Value::Int(age),
                Value::str(rl),
                Value::Int(m),
            ])
            .unwrap();
        }
        r
    }

    fn age_le_24_cc() -> CardinalityConstraint {
        CardinalityConstraint::new(
            "CC3",
            NormalizedCond::from_predicate(&Predicate::new(vec![Atom::cmp(
                "Age",
                cextend_table::CmpOp::Le,
                24,
            )]))
            .unwrap(),
            NormalizedCond::always(),
            3,
        )
    }

    fn binning() -> Binning {
        let mut domains = BTreeMap::new();
        domains.insert("Age".to_owned(), (10, 75));
        let ivs = ColumnIntervals::build(&[age_le_24_cc()], &domains);
        Binning::new(vec!["Age".into(), "Rel".into(), "Multi-ling".into()], ivs)
    }

    #[test]
    fn example_4_1_bins() {
        // The paper notes exactly 4 tuple types under intervalization:
        // ([25,114], Owner, 0), ([0,24], Spouse, 0), ([0,24], Child, 1),
        // ([25,114], Owner, 1).
        let r = persons();
        let m = marginal_counts(&r, &binning(), None).unwrap();
        assert_eq!(m.len(), 4);
        let total: u64 = m.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 9);
        // Owners older than 24, monolingual: pids 1, 3, 8.
        let owners0 = m
            .iter()
            .find(|(bin, _)| {
                bin == &vec![
                    BinDim::Interval(1),
                    BinDim::Val(Value::str("Owner")),
                    BinDim::Val(Value::Int(0)),
                ]
            })
            .unwrap();
        assert_eq!(owners0.1, 3);
    }

    #[test]
    fn example_3_1_augmented_marginal() {
        // "|σ Age≤24, Rel=Spouse, Multi-ling=0| = 1 gets added to S_CC".
        let r = persons();
        let ccs = marginal_ccs(&r, &binning(), None).unwrap();
        let spouse = ccs
            .iter()
            .find(|cc| {
                cc.r1
                    .get("Rel")
                    .is_some_and(|s| s.contains(Value::str("Spouse")))
            })
            .unwrap();
        assert_eq!(spouse.target, 1);
        assert!(spouse.r1.get("Age").unwrap().contains(Value::Int(24)));
        assert!(!spouse.r1.get("Age").unwrap().contains(Value::Int(25)));
        assert!(spouse.r2.is_empty());
    }

    #[test]
    fn row_subset_restricts_counts() {
        let r = persons();
        let m = marginal_counts(&r, &binning(), Some(&[0, 1])).unwrap();
        let total: u64 = m.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn restrict_marginals_keeps_only_overlapping_bins() {
        // Section 4.3's example: restrict to CC1-relevant tuples
        // (Rel = Owner): only owner bins survive.
        let r = persons();
        let b = binning();
        let all = marginal_counts(&r, &b, None).unwrap();
        let owner_cond =
            NormalizedCond::from_predicate(&Predicate::new(vec![Atom::eq("Rel", "Owner")]))
                .unwrap();
        let restricted = restrict_marginals(&b, all.clone(), &[owner_cond]).unwrap();
        assert_eq!(restricted.len(), 2); // owner bins: ([25,..], Owner, 0|1)
        let total: u64 = restricted.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 6);
        // Conditions mentioning R2-only columns are ignored for overlap.
        let r2_cond = NormalizedCond::from_predicate(&Predicate::new(vec![Atom::eq(
            "Area",
            Value::str("Chicago"),
        )]))
        .unwrap();
        let all_kept = restrict_marginals(&b, all, &[r2_cond]).unwrap();
        assert_eq!(all_kept.len(), 4);
    }

    #[test]
    fn marginal_ccs_hold_in_a_copy_view() {
        // Marginal CCs must count correctly on R1 itself (and hence on any
        // row-aligned V_join).
        let r = persons();
        for cc in marginal_ccs(&r, &binning(), None).unwrap() {
            assert_eq!(cc.count_in(&r).unwrap(), cc.target, "{cc}");
        }
    }
}
