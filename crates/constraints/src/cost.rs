//! `PlanCost` — sampled-statistics selectivity estimates for DC plans.
//!
//! PR 5's planner ordered enumeration variables and picked index kinds from
//! *static* hints (equality beats range, smaller candidate list first).
//! This module replaces the hints with estimates derived from
//! [`cextend_table::ColumnStats`] — the query-optimizer move: per-atom
//! selectivities under the usual independence/uniformity assumptions,
//! composed into per-variable candidate fractions and an expected edge
//! count. The conflict builder combines these *global* estimates with the
//! exact per-partition candidate counts it already computes to choose, per
//! partition, whether an enumeration depth is worth a hash-bucket index, a
//! sorted run, or a plain scan.
//!
//! Estimates are heuristics and only steer *performance* decisions — edge
//! sets are produced by exhaustive verified enumeration either way, so a
//! bad estimate can cost time, never correctness (property-tested:
//! cost-planned ≡ static-planned edge sets on every workload).

use crate::dc::{BinaryAtomPlan, DcPlan, UnaryFilter};
use cextend_table::{CmpOp, ColumnStats, Relation, Value};

/// Fallback selectivities when no statistics are available for a column
/// (mirrors the spirit of the PR 5 static hints).
const FALLBACK_EQ: f64 = 0.1;
const FALLBACK_RANGE: f64 = 0.5;

/// Sampled-statistics cost estimate for one [`DcPlan`] against one
/// relation (see the module docs).
#[derive(Clone, Debug)]
pub struct PlanCost {
    /// Estimated fraction of rows passing each variable's unary filters
    /// (missing cells fail filters, so the null fraction is folded in).
    pub var_selectivity: Vec<f64>,
    /// Estimated selectivity of each binary atom, aligned with
    /// [`DcPlan::binary_atoms`].
    pub atom_selectivity: Vec<f64>,
    /// Expected conflict edges in a partition of `rows_hint` rows under
    /// independence: `Π (rows·var_sel) · Π atom_sel`.
    pub est_edges: f64,
    /// `false` when any estimate fell back to the static defaults because
    /// a column had no usable statistics — the builder counts these as
    /// `plans_static_fallback`.
    pub from_stats: bool,
}

impl PlanCost {
    /// Estimates the plan's selectivities against `rel` (the view the
    /// partitions are drawn from), for a nominal partition of `rows_hint`
    /// rows. Statistics are read through `rel`'s lazy sampled cache.
    pub fn estimate(plan: &DcPlan, rel: &Relation, rows_hint: usize) -> PlanCost {
        let mut from_stats = true;
        let var_selectivity: Vec<f64> = (0..plan.arity())
            .map(|var| {
                plan.unary_filters(var)
                    .iter()
                    .map(|f| unary_selectivity(f, rel, &mut from_stats))
                    .product()
            })
            .collect();
        let atom_selectivity: Vec<f64> = plan
            .binary_atoms()
            .iter()
            .map(|a| binary_selectivity(a, rel, &mut from_stats))
            .collect();
        let mut est_edges: f64 = var_selectivity
            .iter()
            .map(|s| (rows_hint as f64 * s).max(0.0))
            .product();
        est_edges *= atom_selectivity.iter().product::<f64>();
        PlanCost {
            var_selectivity,
            atom_selectivity,
            est_edges,
            from_stats,
        }
    }
}

/// Estimated fraction of rows satisfying one unary atom.
fn unary_selectivity(f: &UnaryFilter, rel: &Relation, from_stats: &mut bool) -> f64 {
    let Some(stats) = rel.column_stats(f.col) else {
        *from_stats = false;
        return fallback(f.op);
    };
    let present = 1.0 - stats.null_fraction();
    let value_sel = match (f.value, f.op) {
        (Value::Str(s), CmpOp::Eq | CmpOp::Ne) => {
            // Dictionary probe: a symbol the column never saw matches no
            // row; a top-k code uses its sampled frequency; the rest share
            // the residual mass uniformly.
            let eq = match rel.sym_view(f.col).and_then(|v| v.code_of(s)) {
                None => 0.0,
                Some(code) => stats.top_code_frequency(code).unwrap_or_else(|| {
                    let top_mass: f64 = stats
                        .top_codes
                        .iter()
                        .map(|&(_, n)| n as f64 / stats.sampled.max(1) as f64)
                        .sum();
                    let rest = stats.n_distinct.saturating_sub(stats.top_codes.len());
                    ((1.0 - top_mass) / rest.max(1) as f64).clamp(0.0, 1.0)
                }),
            };
            if f.op == CmpOp::Eq {
                eq
            } else {
                1.0 - eq
            }
        }
        (Value::Int(_), CmpOp::Eq) => stats.eq_selectivity(),
        (Value::Int(_), CmpOp::Ne) => 1.0 - stats.eq_selectivity(),
        (Value::Int(v), CmpOp::Lt) => stats.lt_fraction(v),
        (Value::Int(v), CmpOp::Le) => stats.lt_fraction(v.saturating_add(1)),
        (Value::Int(v), CmpOp::Gt) => 1.0 - stats.lt_fraction(v.saturating_add(1)),
        (Value::Int(v), CmpOp::Ge) => 1.0 - stats.lt_fraction(v),
        // Type-mismatched atoms (string constant on an ordering op, int on
        // a sym column handled above) never hold.
        (Value::Str(_), _) => 0.0,
    };
    (present * value_sel).clamp(0.0, 1.0)
}

/// Estimated selectivity of one binary atom: equality joins hit
/// `1/max(d_l, d_r)` of pairs under uniformity; orderings split pairs in
/// half; `≠` is the equality complement.
fn binary_selectivity(a: &BinaryAtomPlan, rel: &Relation, from_stats: &mut bool) -> f64 {
    let stats_of = |col| rel.column_stats(col);
    let (Some(l), Some(r)) = (stats_of(a.lcol), stats_of(a.rcol)) else {
        *from_stats = false;
        return fallback(a.op);
    };
    let eq = eq_join_selectivity(&l, &r);
    match a.op {
        CmpOp::Eq => eq,
        CmpOp::Ne => 1.0 - eq,
        _ => FALLBACK_RANGE,
    }
}

fn eq_join_selectivity(l: &ColumnStats, r: &ColumnStats) -> f64 {
    let d = l.n_distinct.max(r.n_distinct).max(1);
    (1.0 / d as f64).min(1.0)
}

fn fallback(op: CmpOp) -> f64 {
    match op {
        CmpOp::Eq => FALLBACK_EQ,
        CmpOp::Ne => 1.0 - FALLBACK_EQ,
        _ => FALLBACK_RANGE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_dc;
    use cextend_table::{ColumnDef, Dtype, Relation, Schema};

    fn persons() -> Relation {
        let schema = Schema::new(vec![
            ColumnDef::key("pid", Dtype::Int),
            ColumnDef::attr("Age", Dtype::Int),
            ColumnDef::attr("Rel", Dtype::Str),
            ColumnDef::foreign_key("hid", Dtype::Int),
        ])
        .unwrap();
        let mut r = Relation::new("Persons", schema);
        let rels = ["Owner", "Owner", "Owner", "Spouse", "Child", "Child"];
        for (i, rel) in rels.iter().enumerate() {
            r.push_row(&[
                Some(Value::Int(i as i64 + 1)),
                Some(Value::Int(10 + 10 * i as i64)),
                Some(Value::str(rel)),
                None,
            ])
            .unwrap();
        }
        r
    }

    #[test]
    fn pure_unary_pair_uses_dictionary_frequencies() {
        let r = persons();
        let dc = parse_dc(
            "oo",
            r#"!(t1.Rel = "Owner" & t2.Rel = "Owner" & t1.hid = t2.hid)"#,
            "hid",
        )
        .unwrap();
        let plan = dc.bind(r.schema(), "Persons").unwrap().plan();
        let cost = PlanCost::estimate(&plan, &r, r.n_rows());
        assert!(cost.from_stats);
        // Owners are 3 of 6 rows → each variable keeps half the partition.
        assert!((cost.var_selectivity[0] - 0.5).abs() < 1e-9);
        assert!((cost.var_selectivity[1] - 0.5).abs() < 1e-9);
        // 6 rows → 3 candidates per side → 9 ordered pairs expected.
        assert!((cost.est_edges - 9.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_symbol_has_zero_selectivity() {
        let r = persons();
        let dc = parse_dc(
            "ghost",
            r#"!(t1.Rel = "Ghost" & t2.Rel = "Ghost" & t1.hid = t2.hid)"#,
            "hid",
        )
        .unwrap();
        let plan = dc.bind(r.schema(), "Persons").unwrap().plan();
        let cost = PlanCost::estimate(&plan, &r, r.n_rows());
        assert_eq!(cost.est_edges, 0.0);
    }

    #[test]
    fn equality_atoms_scale_with_distinct_counts() {
        let r = persons();
        let dc = parse_dc("gap", "!(t1.Age = t2.Age & t1.hid = t2.hid)", "hid").unwrap();
        let plan = dc.bind(r.schema(), "Persons").unwrap().plan();
        let cost = PlanCost::estimate(&plan, &r, r.n_rows());
        assert!(cost.from_stats);
        // Six distinct ages → 1/6 of pairs match the equality.
        assert!((cost.atom_selectivity[0] - 1.0 / 6.0).abs() < 1e-9);
    }
}
