//! Text DSL for constraints, mirroring the paper's notation.
//!
//! ```text
//! CC:  | Rel = "Owner" & Area = "Chicago" | = 4
//! CC:  | Age in [10, 14] & Area = "Chicago" | = 20
//! DC:  !(t1.Rel = "Owner" & t2.Rel = "Owner" & t1.hid = t2.hid)
//! DC:  !(t1.Rel = "Owner" & t2.Rel = "Spouse" & t2.Age < t1.Age - 50
//!        & t1.hid = t2.hid)
//! ```
//!
//! Identifiers may contain `-` when followed by a letter (so `Multi-ling`
//! lexes as one name while `t1.Age - 50` stays an arithmetic offset).

use crate::cc::CardinalityConstraint;
use crate::dc::{DcAtom, DenialConstraint};
use crate::error::{ConstraintError, Result};
use cextend_table::{Atom, CmpOp, Predicate, Value};
use std::collections::HashSet;

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Pipe,
    Bang,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Amp,
    Dot,
    Plus,
    Minus,
    Op(CmpOp),
    Int(i64),
    Str(String),
    Ident(String),
    In,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> ConstraintError {
        ConstraintError::Parse {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn tokens(mut self) -> Result<Vec<(usize, Tok)>> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let start = self.pos;
            let c = self.src[self.pos];
            match c {
                b' ' | b'\t' | b'\n' | b'\r' => {
                    self.pos += 1;
                    continue;
                }
                b'|' => {
                    self.pos += 1;
                    out.push((start, Tok::Pipe));
                }
                b'(' => {
                    self.pos += 1;
                    out.push((start, Tok::LParen));
                }
                b')' => {
                    self.pos += 1;
                    out.push((start, Tok::RParen));
                }
                b'[' => {
                    self.pos += 1;
                    out.push((start, Tok::LBracket));
                }
                b']' => {
                    self.pos += 1;
                    out.push((start, Tok::RBracket));
                }
                b',' => {
                    self.pos += 1;
                    out.push((start, Tok::Comma));
                }
                b'&' => {
                    self.pos += 1;
                    out.push((start, Tok::Amp));
                }
                b'.' => {
                    self.pos += 1;
                    out.push((start, Tok::Dot));
                }
                b'+' => {
                    self.pos += 1;
                    out.push((start, Tok::Plus));
                }
                b'-' => {
                    self.pos += 1;
                    out.push((start, Tok::Minus));
                }
                b'=' => {
                    self.pos += 1;
                    out.push((start, Tok::Op(CmpOp::Eq)));
                }
                b'!' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        out.push((start, Tok::Op(CmpOp::Ne)));
                    } else {
                        out.push((start, Tok::Bang));
                    }
                }
                b'<' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        out.push((start, Tok::Op(CmpOp::Le)));
                    } else {
                        out.push((start, Tok::Op(CmpOp::Lt)));
                    }
                }
                b'>' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        out.push((start, Tok::Op(CmpOp::Ge)));
                    } else {
                        out.push((start, Tok::Op(CmpOp::Gt)));
                    }
                }
                b'"' => {
                    self.pos += 1;
                    let s = self.string_literal()?;
                    out.push((start, Tok::Str(s)));
                }
                b'0'..=b'9' => {
                    let v = self.integer()?;
                    out.push((start, Tok::Int(v)));
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let id = self.identifier();
                    if id == "in" {
                        out.push((start, Tok::In));
                    } else {
                        out.push((start, Tok::Ident(id)));
                    }
                }
                other => {
                    return Err(self.error(format!("unexpected character `{}`", other as char)))
                }
            }
        }
        Ok(out)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn string_literal(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'"' {
                let s = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string literal"))?
                    .to_owned();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(self.error("unterminated string literal"))
    }

    fn integer(&mut self) -> Result<i64> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .expect("digits are ASCII")
            .parse::<i64>()
            .map_err(|e| self.error(format!("invalid integer: {e}")))
    }

    fn identifier(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else if c == b'-'
                && self
                    .src
                    .get(self.pos + 1)
                    .is_some_and(|n| n.is_ascii_alphabetic())
            {
                // `Multi-ling` is one identifier; `Age - 50` is not.
                self.pos += 2;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .expect("identifier bytes are ASCII")
            .to_owned()
    }
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    idx: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Parser> {
        Ok(Parser {
            toks: Lexer::new(input).tokens()?,
            idx: 0,
        })
    }

    fn pos(&self) -> usize {
        self.toks
            .get(self.idx)
            .map(|(p, _)| *p)
            .unwrap_or(usize::MAX)
    }

    fn error(&self, message: impl Into<String>) -> ConstraintError {
        ConstraintError::Parse {
            pos: self.pos(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.idx).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.idx).map(|(_, t)| t.clone());
        self.idx += 1;
        t
    }

    fn expect(&mut self, tok: &Tok) -> Result<()> {
        match self.next() {
            Some(t) if &t == tok => Ok(()),
            other => Err(self.error(format!("expected {tok:?}, found {other:?}"))),
        }
    }

    fn at_end(&self) -> bool {
        self.idx >= self.toks.len()
    }

    fn literal(&mut self) -> Result<Value> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(Value::Int(v)),
            Some(Tok::Minus) => match self.next() {
                Some(Tok::Int(v)) => Ok(Value::Int(-v)),
                other => Err(self.error(format!("expected integer after `-`, found {other:?}"))),
            },
            Some(Tok::Str(s)) => Ok(Value::str(&s)),
            other => Err(self.error(format!("expected literal, found {other:?}"))),
        }
    }

    fn signed_int(&mut self) -> Result<i64> {
        match self.literal()? {
            Value::Int(v) => Ok(v),
            Value::Str(_) => Err(self.error("expected integer")),
        }
    }

    /// `IDENT op literal | IDENT in [lo, hi]`
    fn cc_atom(&mut self) -> Result<Atom> {
        let col = match self.next() {
            Some(Tok::Ident(c)) => c,
            other => return Err(self.error(format!("expected column name, found {other:?}"))),
        };
        match self.next() {
            Some(Tok::Op(op)) => Ok(Atom::cmp(&col, op, self.literal()?)),
            Some(Tok::In) => {
                self.expect(&Tok::LBracket)?;
                let lo = self.signed_int()?;
                self.expect(&Tok::Comma)?;
                let hi = self.signed_int()?;
                self.expect(&Tok::RBracket)?;
                Ok(Atom::in_range(&col, lo, hi))
            }
            other => Err(self.error(format!("expected comparison or `in`, found {other:?}"))),
        }
    }

    fn predicate(&mut self) -> Result<Predicate> {
        let mut atoms = vec![self.cc_atom()?];
        while self.peek() == Some(&Tok::Amp) {
            self.next();
            atoms.push(self.cc_atom()?);
        }
        Ok(Predicate::new(atoms))
    }

    /// `t<k>.column`
    fn tuple_ref(&mut self) -> Result<(usize, String)> {
        let var = match self.next() {
            Some(Tok::Ident(id)) if id.starts_with('t') => id[1..]
                .parse::<usize>()
                .ok()
                .filter(|&v| v >= 1)
                .ok_or_else(|| self.error(format!("bad tuple variable `{id}`")))?,
            other => return Err(self.error(format!("expected tuple variable, found {other:?}"))),
        };
        self.expect(&Tok::Dot)?;
        let col = match self.next() {
            Some(Tok::Ident(c)) => c,
            other => return Err(self.error(format!("expected column name, found {other:?}"))),
        };
        Ok((var - 1, col))
    }

    /// One DC conjunct. Returns `None` for FK-equality atoms (consumed into
    /// the implicit chain), `Some` for φ atoms.
    fn dc_atom(&mut self, fk_col: &str, fk_vars: &mut Vec<usize>) -> Result<Option<DcAtom>> {
        let (lvar, lcol) = self.tuple_ref()?;
        let op = match self.next() {
            Some(Tok::Op(op)) => op,
            other => return Err(self.error(format!("expected comparison, found {other:?}"))),
        };
        // Right side: tuple ref (+offset) or literal.
        if matches!(self.peek(), Some(Tok::Ident(id)) if id.starts_with('t'))
            && matches!(self.toks.get(self.idx + 1), Some((_, Tok::Dot)))
        {
            let (rvar, rcol) = self.tuple_ref()?;
            let mut offset = 0i64;
            match self.peek() {
                Some(Tok::Plus) => {
                    self.next();
                    offset = self.signed_int()?;
                }
                Some(Tok::Minus) => {
                    self.next();
                    offset = -self.signed_int()?;
                }
                _ => {}
            }
            if lcol == fk_col && rcol == fk_col {
                if op != CmpOp::Eq || offset != 0 {
                    return Err(self.error("FK atoms must be plain equalities"));
                }
                fk_vars.push(lvar);
                fk_vars.push(rvar);
                return Ok(None);
            }
            if lcol == fk_col || rcol == fk_col {
                return Err(self.error("FK column may only be compared with itself"));
            }
            Ok(Some(DcAtom::Binary {
                lvar,
                lcol,
                op,
                rvar,
                rcol,
                offset,
            }))
        } else {
            if lcol == fk_col {
                return Err(self.error("FK column may not be compared with a constant"));
            }
            Ok(Some(DcAtom::Unary {
                var: lvar,
                column: lcol,
                op,
                value: self.literal()?,
            }))
        }
    }
}

/// Parses a conjunctive predicate, e.g. `Age in [10, 14] & Rel = "Owner"`.
pub fn parse_predicate(input: &str) -> Result<Predicate> {
    let mut p = Parser::new(input)?;
    let pred = p.predicate()?;
    if !p.at_end() {
        return Err(p.error("trailing input after predicate"));
    }
    Ok(pred)
}

/// Parses a cardinality constraint, e.g.
/// `| Rel = "Owner" & Area = "Chicago" | = 4`. Columns named in
/// `r2_columns` form the `R2` side of the condition.
pub fn parse_cc(
    name: &str,
    input: &str,
    r2_columns: &HashSet<String>,
) -> Result<CardinalityConstraint> {
    let mut p = Parser::new(input)?;
    p.expect(&Tok::Pipe)?;
    let pred = p.predicate()?;
    p.expect(&Tok::Pipe)?;
    p.expect(&Tok::Op(CmpOp::Eq))?;
    let target = match p.next() {
        Some(Tok::Int(v)) if v >= 0 => v as u64,
        other => return Err(p.error(format!("expected non-negative target, found {other:?}"))),
    };
    if !p.at_end() {
        return Err(p.error("trailing input after cardinality constraint"));
    }
    CardinalityConstraint::from_predicate(name, &pred, r2_columns, target)
}

/// Parses a foreign-key denial constraint, e.g.
/// `!(t1.Rel = "Owner" & t2.Rel = "Owner" & t1.hid = t2.hid)`.
///
/// `fk_col` names the FK column; its equality atoms form the implicit FK
/// chain, which must connect every tuple variable.
pub fn parse_dc(name: &str, input: &str, fk_col: &str) -> Result<DenialConstraint> {
    let mut p = Parser::new(input)?;
    p.expect(&Tok::Bang)?;
    p.expect(&Tok::LParen)?;
    let mut atoms = Vec::new();
    let mut fk_vars: Vec<usize> = Vec::new();
    let mut max_var = 0usize;
    loop {
        let before = p.idx;
        if let Some(atom) = p.dc_atom(fk_col, &mut fk_vars)? {
            atoms.push(atom);
        }
        // Track the highest tuple variable seen in this conjunct.
        for (_, t) in &p.toks[before..p.idx] {
            if let Tok::Ident(id) = t {
                if let Some(v) = id.strip_prefix('t').and_then(|s| s.parse::<usize>().ok()) {
                    max_var = max_var.max(v);
                }
            }
        }
        match p.next() {
            Some(Tok::Amp) => continue,
            Some(Tok::RParen) => break,
            other => return Err(p.error(format!("expected `&` or `)`, found {other:?}"))),
        }
    }
    if !p.at_end() {
        return Err(p.error("trailing input after denial constraint"));
    }
    if max_var < 2 {
        return Err(ConstraintError::BadDenialConstraint(
            "a denial constraint needs at least two tuple variables".into(),
        ));
    }
    // The FK chain must connect all variables.
    let connected: HashSet<usize> = fk_vars.iter().copied().collect();
    if connected.len() != max_var || (0..max_var).any(|v| !connected.contains(&v)) {
        return Err(ConstraintError::BadDenialConstraint(format!(
            "FK equality chain must connect all {max_var} tuple variables"
        )));
    }
    DenialConstraint::new(name, max_var, atoms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cextend_table::CmpOp;

    fn r2cols() -> HashSet<String> {
        let mut s = HashSet::new();
        s.insert("Area".to_owned());
        s.insert("Tenure".to_owned());
        s
    }

    #[test]
    fn parse_cc_figure_2b() {
        let cc = parse_cc(
            "CC1",
            "| Rel = \"Owner\" & Area = \"Chicago\" | = 4",
            &r2cols(),
        )
        .unwrap();
        assert_eq!(cc.target, 4);
        assert!(cc.r1.get("Rel").is_some());
        assert!(cc.r2.get("Area").is_some());
    }

    #[test]
    fn parse_cc_with_range_and_le() {
        let cc = parse_cc("CC3", "| Age <= 24 & Area = \"Chicago\" | = 3", &r2cols()).unwrap();
        assert!(cc
            .r1
            .get("Age")
            .unwrap()
            .contains(cextend_table::Value::Int(24)));
        let cc = parse_cc("CC", "| Age in [10, 14] | = 20", &r2cols()).unwrap();
        assert!(cc
            .r1
            .get("Age")
            .unwrap()
            .contains(cextend_table::Value::Int(12)));
        assert!(!cc
            .r1
            .get("Age")
            .unwrap()
            .contains(cextend_table::Value::Int(15)));
    }

    #[test]
    fn parse_cc_multi_ling_identifier() {
        let cc = parse_cc(
            "CC4",
            "| Multi-ling = 1 & Area = \"Chicago\" | = 4",
            &r2cols(),
        )
        .unwrap();
        assert!(cc.r1.get("Multi-ling").is_some());
    }

    #[test]
    fn parse_dc_owner_owner() {
        let dc = parse_dc(
            "DC_OO",
            "!(t1.Rel = \"Owner\" & t2.Rel = \"Owner\" & t1.hid = t2.hid)",
            "hid",
        )
        .unwrap();
        assert_eq!(dc.arity, 2);
        assert_eq!(dc.atoms.len(), 2);
    }

    #[test]
    fn parse_dc_with_offset() {
        let dc = parse_dc(
            "DC_OS_low",
            "!(t1.Rel = \"Owner\" & t2.Rel = \"Spouse\" & t2.Age < t1.Age - 50 & t1.hid = t2.hid)",
            "hid",
        )
        .unwrap();
        assert_eq!(dc.arity, 2);
        match &dc.atoms[2] {
            DcAtom::Binary {
                lvar,
                op,
                rvar,
                offset,
                ..
            } => {
                assert_eq!((*lvar, *rvar, *offset), (1, 0, -50));
                assert_eq!(*op, CmpOp::Lt);
            }
            other => panic!("expected binary atom, got {other:?}"),
        }
    }

    #[test]
    fn parse_dc_three_variables() {
        let dc = parse_dc(
            "DC3",
            "!(t1.Cls = t2.Cls & t2.Cls = t3.Cls & t1.Chosen = t2.Chosen & t2.Chosen = t3.Chosen)",
            "Chosen",
        )
        .unwrap();
        assert_eq!(dc.arity, 3);
        assert_eq!(dc.atoms.len(), 2);
    }

    #[test]
    fn dc_requires_full_fk_chain() {
        // t3 never appears in an FK equality.
        let err = parse_dc(
            "bad",
            "!(t1.Cls = t3.Cls & t1.Chosen = t2.Chosen)",
            "Chosen",
        );
        assert!(matches!(err, Err(ConstraintError::BadDenialConstraint(_))));
    }

    #[test]
    fn dc_rejects_fk_comparisons_with_constants() {
        let err = parse_dc("bad", "!(t1.hid = 3 & t1.hid = t2.hid)", "hid");
        assert!(matches!(err, Err(ConstraintError::Parse { .. })));
        let err = parse_dc("bad", "!(t1.hid < t2.hid & t1.hid = t2.hid)", "hid");
        assert!(matches!(err, Err(ConstraintError::Parse { .. })));
    }

    #[test]
    fn parse_errors_carry_position() {
        match parse_cc("x", "| Age ?? 3 | = 1", &r2cols()) {
            Err(ConstraintError::Parse { pos, .. }) => assert!(pos > 0),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse_cc("x", "| Age = 3 | = 1 extra", &r2cols()).is_err());
        assert!(parse_cc("x", "| Age = 3 |", &r2cols()).is_err());
        assert!(parse_predicate("Age in [5,]").is_err());
        assert!(parse_predicate("Age = \"unterminated").is_err());
    }

    #[test]
    fn negative_literals() {
        let p = parse_predicate("Delta in [-5, 5] & Temp = -40").unwrap();
        assert_eq!(p.atoms.len(), 2);
        assert_eq!(p.atoms[0], Atom::in_range("Delta", -5, 5));
        assert_eq!(p.atoms[1], Atom::eq("Temp", -40i64));
    }

    #[test]
    fn predicate_display_reparses() {
        let p = parse_predicate("Age in [10, 14] & Rel = \"Owner\"").unwrap();
        let reparsed = parse_predicate(&p.to_string()).unwrap();
        assert_eq!(p, reparsed);
    }
}
