//! Error type for the constraints crate.

use std::fmt;

/// Errors raised while building, normalizing or parsing constraints.
#[derive(Debug)]
pub enum ConstraintError {
    /// A predicate cannot be normalized to per-column value sets (e.g. uses
    /// `≠` or an ordering comparison on a categorical column) and therefore
    /// cannot participate in CC relationship classification.
    CannotNormalize(String),
    /// Text DSL parse error.
    Parse {
        /// Byte offset in the input.
        pos: usize,
        /// What went wrong.
        message: String,
    },
    /// A referenced column does not exist where expected.
    UnknownColumn(String),
    /// A denial constraint was malformed (e.g. no FK-equality chain).
    BadDenialConstraint(String),
    /// Propagated relational error.
    Table(cextend_table::TableError),
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintError::CannotNormalize(msg) => {
                write!(f, "predicate cannot be normalized: {msg}")
            }
            ConstraintError::Parse { pos, message } => {
                write!(f, "parse error at byte {pos}: {message}")
            }
            ConstraintError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            ConstraintError::BadDenialConstraint(msg) => {
                write!(f, "malformed denial constraint: {msg}")
            }
            ConstraintError::Table(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ConstraintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConstraintError::Table(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cextend_table::TableError> for ConstraintError {
    fn from(e: cextend_table::TableError) -> Self {
        ConstraintError::Table(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ConstraintError>;
