//! CC relationship classification (Definitions 4.2–4.4 of the paper).
//!
//! Two CCs are **disjoint** if their `R1` conditions cannot both hold, or if
//! their `R1` conditions are identical and their `R2` conditions cannot both
//! hold. One **contains** the other if its combined condition implies the
//! other's (superset of columns, subset of values per shared column). CCs
//! that are neither disjoint nor comparable are **intersecting** — the case
//! that forces the ILP path in the hybrid solver.

use crate::cc::CardinalityConstraint;
use std::fmt;

/// Relationship between an ordered pair of CCs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CcRelationship {
    /// No tuple can count toward both (Definition 4.2).
    Disjoint,
    /// The conditions are identical (both contain each other). Targets may
    /// still differ; callers decide whether that is a duplicate or a
    /// contradiction.
    Equal,
    /// The first CC's condition is strictly contained in the second's
    /// (Definition 4.3): every tuple counting toward the first also counts
    /// toward the second.
    ContainedIn,
    /// The first CC's condition strictly contains the second's.
    Contains,
    /// Overlapping but incomparable conditions (Definition 4.4).
    Intersecting,
}

impl CcRelationship {
    /// The relationship seen from the other side of the pair.
    pub fn flipped(self) -> CcRelationship {
        match self {
            CcRelationship::ContainedIn => CcRelationship::Contains,
            CcRelationship::Contains => CcRelationship::ContainedIn,
            other => other,
        }
    }
}

impl fmt::Display for CcRelationship {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CcRelationship::Disjoint => "disjoint",
            CcRelationship::Equal => "equal",
            CcRelationship::ContainedIn => "contained-in",
            CcRelationship::Contains => "contains",
            CcRelationship::Intersecting => "intersecting",
        })
    }
}

/// Classifies the ordered pair `(a, b)`.
pub fn classify(a: &CardinalityConstraint, b: &CardinalityConstraint) -> CcRelationship {
    // Definition 4.2: disjoint R1 conditions, or identical R1 conditions
    // with disjoint R2 conditions.
    if a.r1.disjoint_with(&b.r1) {
        return CcRelationship::Disjoint;
    }
    if a.r1.same_condition(&b.r1) && a.r2.disjoint_with(&b.r2) {
        return CcRelationship::Disjoint;
    }
    let (ca, cb) = (a.combined(), b.combined());
    let a_in_b = ca.implies(&cb);
    let b_in_a = cb.implies(&ca);
    match (a_in_b, b_in_a) {
        (true, true) => CcRelationship::Equal,
        (true, false) => CcRelationship::ContainedIn,
        (false, true) => CcRelationship::Contains,
        (false, false) => CcRelationship::Intersecting,
    }
}

/// Pairwise relationship matrix; entry `[i][j]` describes `(ccs[i], ccs[j])`.
/// The diagonal is `Equal`.
#[derive(Clone, Debug)]
pub struct RelationshipMatrix {
    n: usize,
    entries: Vec<CcRelationship>,
}

impl RelationshipMatrix {
    /// Classifies every pair (O(n²) calls to [`classify`]).
    pub fn build(ccs: &[CardinalityConstraint]) -> RelationshipMatrix {
        let n = ccs.len();
        let mut entries = vec![CcRelationship::Equal; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let rel = classify(&ccs[i], &ccs[j]);
                entries[i * n + j] = rel;
                entries[j * n + i] = rel.flipped();
            }
        }
        RelationshipMatrix { n, entries }
    }

    /// Number of CCs.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Relationship of the ordered pair `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> CcRelationship {
        self.entries[i * self.n + j]
    }

    /// `true` if CC `i` intersects any other CC.
    pub fn intersects_any(&self, i: usize) -> bool {
        (0..self.n).any(|j| j != i && self.get(i, j) == CcRelationship::Intersecting)
    }

    /// Indices of CCs that intersect at least one other CC.
    pub fn intersecting_ccs(&self) -> Vec<usize> {
        (0..self.n).filter(|&i| self.intersects_any(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::NormalizedCond;
    use cextend_table::{Atom, Predicate, Value};

    fn cc(name: &str, r1_atoms: Vec<Atom>, r2_atoms: Vec<Atom>, k: u64) -> CardinalityConstraint {
        CardinalityConstraint::new(
            name,
            NormalizedCond::from_predicate(&Predicate::new(r1_atoms)).unwrap(),
            NormalizedCond::from_predicate(&Predicate::new(r2_atoms)).unwrap(),
            k,
        )
    }

    fn chicago() -> Vec<Atom> {
        vec![Atom::eq("Area", Value::str("Chicago"))]
    }

    fn nyc() -> Vec<Atom> {
        vec![Atom::eq("Area", Value::str("NYC"))]
    }

    #[test]
    fn figure6_relationships() {
        // CC1: Age∈[10,14], Chicago; CC2: Age∈[50,60] & Multi=0, NYC;
        // CC3: Age∈[13,64], Chicago; CC4: Age∈[18,24] & Multi=0, Chicago.
        let cc1 = cc("CC1", vec![Atom::in_range("Age", 10, 14)], chicago(), 20);
        let cc2 = cc(
            "CC2",
            vec![Atom::in_range("Age", 50, 60), Atom::eq("Multi-ling", 0i64)],
            nyc(),
            25,
        );
        let cc3 = cc("CC3", vec![Atom::in_range("Age", 13, 64)], chicago(), 100);
        let cc4 = cc(
            "CC4",
            vec![Atom::in_range("Age", 18, 24), Atom::eq("Multi-ling", 0i64)],
            chicago(),
            16,
        );
        // Paper: CC1 ∩ CC2 = ∅ and CC4 ⊆ CC3.
        assert_eq!(classify(&cc1, &cc2), CcRelationship::Disjoint);
        assert_eq!(classify(&cc4, &cc3), CcRelationship::ContainedIn);
        assert_eq!(classify(&cc3, &cc4), CcRelationship::Contains);
        // CC1's ages [10,14] overlap CC3's [13,64] without containment.
        assert_eq!(classify(&cc1, &cc3), CcRelationship::Intersecting);
        // CC2 is R1-disjoint from CC3 and CC4 (ages don't overlap CC4; for
        // CC3 they do overlap on Age — but Multi-ling is unconstrained in
        // CC3, so not disjoint; different Areas don't matter since R1 parts
        // differ).
        assert_eq!(classify(&cc2, &cc4), CcRelationship::Disjoint);
        assert_eq!(classify(&cc2, &cc3), CcRelationship::Intersecting);
    }

    #[test]
    fn same_r1_disjoint_r2_is_disjoint() {
        // Example 1.1: homeowners in Chicago vs homeowners in NYC.
        let a = cc("a", vec![Atom::eq("Rel", "Owner")], chicago(), 4);
        let b = cc("b", vec![Atom::eq("Rel", "Owner")], nyc(), 2);
        assert_eq!(classify(&a, &b), CcRelationship::Disjoint);
    }

    #[test]
    fn same_r1_same_r2_is_equal() {
        let a = cc("a", vec![Atom::eq("Rel", "Owner")], chicago(), 4);
        let b = cc("b", vec![Atom::eq("Rel", "Owner")], chicago(), 7);
        assert_eq!(classify(&a, &b), CcRelationship::Equal);
    }

    #[test]
    fn example_4_5_overlapping_ranges_intersect() {
        // CC1: Age∈[10,49] Chicago; CC2: Age∈[30,70] NYC. R1 parts overlap
        // on [30,49] and are not identical → intersecting (the R2
        // disjointness cannot rescue them).
        let a = cc("a", vec![Atom::in_range("Age", 10, 49)], chicago(), 30);
        let b = cc("b", vec![Atom::in_range("Age", 30, 70)], nyc(), 30);
        assert_eq!(classify(&a, &b), CcRelationship::Intersecting);
    }

    #[test]
    fn containment_requires_superset_of_columns() {
        // a constrains Age only; b constrains Age (wider) and Multi-ling.
        // b's combined condition does NOT contain a's (a is unconstrained
        // on Multi-ling, so a has tuples outside b).
        let a = cc("a", vec![Atom::in_range("Age", 20, 30)], chicago(), 5);
        let b = cc(
            "b",
            vec![Atom::in_range("Age", 10, 40), Atom::eq("Multi-ling", 1i64)],
            chicago(),
            9,
        );
        assert_eq!(classify(&a, &b), CcRelationship::Intersecting);
        // Swap restrictiveness: now the Multi-ling-constrained one is inside.
        let c = cc(
            "c",
            vec![Atom::in_range("Age", 20, 30), Atom::eq("Multi-ling", 1i64)],
            chicago(),
            5,
        );
        let d = cc("d", vec![Atom::in_range("Age", 10, 40)], chicago(), 9);
        assert_eq!(classify(&c, &d), CcRelationship::ContainedIn);
    }

    #[test]
    fn matrix_is_consistent() {
        let ccs = vec![
            cc("a", vec![Atom::in_range("Age", 10, 14)], chicago(), 1),
            cc("b", vec![Atom::in_range("Age", 13, 64)], chicago(), 2),
            cc("c", vec![Atom::in_range("Age", 20, 40)], chicago(), 3),
        ];
        let m = RelationshipMatrix::build(&ccs);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(0, 1), CcRelationship::Intersecting);
        assert_eq!(m.get(1, 0), CcRelationship::Intersecting);
        assert_eq!(m.get(0, 2), CcRelationship::Disjoint);
        assert_eq!(m.get(1, 2), CcRelationship::Contains);
        assert_eq!(m.get(2, 1), CcRelationship::ContainedIn);
        assert_eq!(m.intersecting_ccs(), vec![0, 1]);
        assert!(!m.intersects_any(2));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::cc::NormalizedCond;
    use cextend_table::{Atom, Predicate, Value};
    use proptest::prelude::*;

    fn arb_cc() -> impl Strategy<Value = CardinalityConstraint> {
        (
            0i64..20,
            1i64..15,
            prop::option::of(0i64..2),
            prop::bool::ANY,
        )
            .prop_map(|(lo, width, multi, chicago)| {
                let mut r1_atoms = vec![Atom::in_range("Age", lo, lo + width)];
                if let Some(m) = multi {
                    r1_atoms.push(Atom::eq("Multi-ling", m));
                }
                let area = if chicago { "Chicago" } else { "NYC" };
                CardinalityConstraint::new(
                    "cc",
                    NormalizedCond::from_predicate(&Predicate::new(r1_atoms)).unwrap(),
                    NormalizedCond::from_predicate(&Predicate::new(vec![Atom::eq(
                        "Area",
                        Value::str(area),
                    )]))
                    .unwrap(),
                    1,
                )
            })
    }

    proptest! {
        /// classify(a,b) and classify(b,a) must mirror each other.
        #[test]
        fn classification_is_symmetric(a in arb_cc(), b in arb_cc()) {
            prop_assert_eq!(classify(&a, &b), classify(&b, &a).flipped());
        }

        /// Disjoint CCs admit no common satisfying point (sampled check over
        /// the small Age × Multi × Area grid).
        #[test]
        fn disjoint_means_no_common_point(a in arb_cc(), b in arb_cc()) {
            if classify(&a, &b) != CcRelationship::Disjoint {
                return Ok(());
            }
            let (ca, cb) = (a.combined(), b.combined());
            for age in 0..40i64 {
                for multi in 0..2i64 {
                    for area in ["Chicago", "NYC"] {
                        let point_in = |c: &NormalizedCond| {
                            c.iter().all(|(col, set)| match col {
                                "Age" => set.contains(Value::Int(age)),
                                "Multi-ling" => set.contains(Value::Int(multi)),
                                "Area" => set.contains(Value::str(area)),
                                _ => false,
                            })
                        };
                        prop_assert!(!(point_in(&ca) && point_in(&cb)),
                            "common point age={} multi={} area={}", age, multi, area);
                    }
                }
            }
        }

        /// Containment means implication on sampled points.
        #[test]
        fn containment_means_implication(a in arb_cc(), b in arb_cc()) {
            if classify(&a, &b) != CcRelationship::ContainedIn {
                return Ok(());
            }
            let (ca, cb) = (a.combined(), b.combined());
            for age in 0..40i64 {
                for multi in 0..2i64 {
                    for area in ["Chicago", "NYC"] {
                        let point_in = |c: &NormalizedCond| {
                            c.iter().all(|(col, set)| match col {
                                "Age" => set.contains(Value::Int(age)),
                                "Multi-ling" => set.contains(Value::Int(multi)),
                                "Area" => set.contains(Value::str(area)),
                                _ => false,
                            })
                        };
                        if point_in(&ca) {
                            prop_assert!(point_in(&cb));
                        }
                    }
                }
            }
        }
    }
}
