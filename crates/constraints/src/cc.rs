//! Linear cardinality constraints (Definition 2.4 of the paper).
//!
//! A CC `|σ_φ(R1 ⋈ R2)| = k` carries a conjunctive selection condition φ
//! split into its `R1`-side and `R2`-side parts, plus the target count `k`.
//! Conditions are stored *normalized*: one [`ValueSet`] per referenced
//! column. Normalization is what makes the relationship classification of
//! Definitions 4.2–4.4 a set-algebra computation.

use crate::error::{ConstraintError, Result};
use cextend_table::{Atom, Predicate, Relation, ValueSet};
use std::collections::BTreeMap;
use std::fmt;

/// A conjunctive condition normalized to per-column value sets.
///
/// The empty condition is `true` everywhere. A condition whose atoms
/// contradict each other on some column normalizes to an *unsatisfiable*
/// condition (some column maps to [`ValueSet::Empty`]).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct NormalizedCond {
    sets: BTreeMap<String, ValueSet>,
}

impl NormalizedCond {
    /// The always-true condition.
    pub fn always() -> NormalizedCond {
        NormalizedCond::default()
    }

    /// Normalizes a conjunctive predicate. Fails on atoms that per-column
    /// sets cannot express (`≠`, ordering on categorical values).
    pub fn from_predicate(pred: &Predicate) -> Result<NormalizedCond> {
        let mut sets: BTreeMap<String, ValueSet> = BTreeMap::new();
        for atom in &pred.atoms {
            let set = ValueSet::from_atom(atom).ok_or_else(|| {
                ConstraintError::CannotNormalize(format!("unsupported atom `{atom}`"))
            })?;
            let col = atom.column().to_owned();
            let merged = match sets.get(&col) {
                Some(existing) => existing.intersect(&set),
                None => set,
            };
            sets.insert(col, merged);
        }
        Ok(NormalizedCond { sets })
    }

    /// Builds directly from `(column, set)` pairs.
    pub fn from_sets<I: IntoIterator<Item = (String, ValueSet)>>(iter: I) -> NormalizedCond {
        NormalizedCond {
            sets: iter.into_iter().collect(),
        }
    }

    /// The constrained columns, sorted.
    pub fn columns(&self) -> impl Iterator<Item = &str> {
        self.sets.keys().map(|s| s.as_str())
    }

    /// Number of constrained columns.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// `true` if no column is constrained.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The value set of `column`, if constrained.
    pub fn get(&self, column: &str) -> Option<&ValueSet> {
        self.sets.get(column)
    }

    /// Iterates over `(column, set)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ValueSet)> {
        self.sets.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// `true` if some column's set is empty (condition can never hold).
    pub fn is_unsatisfiable(&self) -> bool {
        self.sets.values().any(ValueSet::is_empty)
    }

    /// Converts back to a predicate.
    pub fn to_predicate(&self) -> Predicate {
        let mut atoms: Vec<Atom> = Vec::new();
        for (col, set) in &self.sets {
            atoms.extend(set.to_atoms(col));
        }
        Predicate::new(atoms)
    }

    /// Conjunction of two normalized conditions (per-column intersection).
    pub fn intersect(&self, other: &NormalizedCond) -> NormalizedCond {
        let mut sets = self.sets.clone();
        for (col, set) in &other.sets {
            let merged = match sets.get(col) {
                Some(existing) => existing.intersect(set),
                None => set.clone(),
            };
            sets.insert(col.clone(), merged);
        }
        NormalizedCond { sets }
    }

    /// `true` iff the two conditions constrain the same columns to the same
    /// sets.
    pub fn same_condition(&self, other: &NormalizedCond) -> bool {
        self.sets == other.sets
    }

    /// `true` iff every tuple satisfying `self` satisfies `other`:
    /// `self` constrains a superset of `other`'s columns and is at least as
    /// restrictive on each shared column (Definition 4.3).
    pub fn implies(&self, other: &NormalizedCond) -> bool {
        other
            .sets
            .iter()
            .all(|(col, oset)| self.sets.get(col).is_some_and(|sset| sset.is_subset(oset)))
    }

    /// `true` iff no tuple can satisfy both: some common column has disjoint
    /// sets (or either side is unsatisfiable outright).
    pub fn disjoint_with(&self, other: &NormalizedCond) -> bool {
        if self.is_unsatisfiable() || other.is_unsatisfiable() {
            return true;
        }
        self.sets.iter().any(|(col, sset)| {
            other
                .sets
                .get(col)
                .is_some_and(|oset| sset.is_disjoint(oset))
        })
    }
}

impl fmt::Display for NormalizedCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sets.is_empty() {
            return f.write_str("true");
        }
        for (i, (col, set)) in self.sets.iter().enumerate() {
            if i > 0 {
                f.write_str(" & ")?;
            }
            write!(f, "{col} ∈ {set}")?;
        }
        Ok(())
    }
}

/// A linear cardinality constraint over the join view.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CardinalityConstraint {
    /// Identifier used in reports.
    pub name: String,
    /// Condition on `R1`'s attribute columns.
    pub r1: NormalizedCond,
    /// Condition on `R2`'s attribute columns.
    pub r2: NormalizedCond,
    /// Target count `k`.
    pub target: u64,
}

impl CardinalityConstraint {
    /// Builds a CC from already-normalized parts.
    pub fn new(
        name: impl Into<String>,
        r1: NormalizedCond,
        r2: NormalizedCond,
        target: u64,
    ) -> CardinalityConstraint {
        CardinalityConstraint {
            name: name.into(),
            r1,
            r2,
            target,
        }
    }

    /// Builds a CC from predicates, splitting atoms by column ownership:
    /// columns in `r2_columns` go to the `R2` side, everything else to `R1`.
    pub fn from_predicate(
        name: impl Into<String>,
        pred: &Predicate,
        r2_columns: &std::collections::HashSet<String>,
        target: u64,
    ) -> Result<CardinalityConstraint> {
        let mut r1_atoms = Vec::new();
        let mut r2_atoms = Vec::new();
        for atom in &pred.atoms {
            if r2_columns.contains(atom.column()) {
                r2_atoms.push(atom.clone());
            } else {
                r1_atoms.push(atom.clone());
            }
        }
        Ok(CardinalityConstraint {
            name: name.into(),
            r1: NormalizedCond::from_predicate(&Predicate::new(r1_atoms))?,
            r2: NormalizedCond::from_predicate(&Predicate::new(r2_atoms))?,
            target,
        })
    }

    /// The combined condition over the join view's columns.
    pub fn combined(&self) -> NormalizedCond {
        self.r1.intersect(&self.r2)
    }

    /// The combined condition as a predicate (for evaluation on `V_join`).
    pub fn predicate(&self) -> Predicate {
        self.combined().to_predicate()
    }

    /// Counts the join-view rows currently satisfying this CC.
    pub fn count_in(&self, view: &Relation) -> Result<u64> {
        Ok(self.predicate().count(view)?)
    }
}

impl fmt::Display for CardinalityConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: |σ[{}]| = {}",
            self.name,
            self.combined(),
            self.target
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cextend_table::{Atom, CmpOp, Value};

    fn cond(atoms: Vec<Atom>) -> NormalizedCond {
        NormalizedCond::from_predicate(&Predicate::new(atoms)).unwrap()
    }

    #[test]
    fn normalization_intersects_same_column_atoms() {
        let c = cond(vec![
            Atom::cmp("Age", CmpOp::Ge, 10),
            Atom::cmp("Age", CmpOp::Le, 20),
        ]);
        assert_eq!(c.get("Age"), Some(&ValueSet::range(10, 20)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn contradictory_atoms_are_unsatisfiable() {
        let c = cond(vec![
            Atom::cmp("Age", CmpOp::Ge, 30),
            Atom::cmp("Age", CmpOp::Le, 20),
        ]);
        assert!(c.is_unsatisfiable());
    }

    #[test]
    fn ne_cannot_normalize() {
        let err =
            NormalizedCond::from_predicate(&Predicate::new(vec![Atom::cmp("Age", CmpOp::Ne, 5)]));
        assert!(matches!(err, Err(ConstraintError::CannotNormalize(_))));
    }

    #[test]
    fn implies_checks_columns_and_sets() {
        // Age ∈ [18,24] ∧ Multi=0  implies  Age ∈ [13,64].
        let tight = cond(vec![Atom::in_range("Age", 18, 24), Atom::eq("Multi", 0i64)]);
        let loose = cond(vec![Atom::in_range("Age", 13, 64)]);
        assert!(tight.implies(&loose));
        assert!(!loose.implies(&tight));
        // Everything implies `true`.
        assert!(loose.implies(&NormalizedCond::always()));
        assert!(!NormalizedCond::always().implies(&loose));
    }

    #[test]
    fn disjointness() {
        let a = cond(vec![Atom::in_range("Age", 10, 14)]);
        let b = cond(vec![Atom::in_range("Age", 50, 60)]);
        let c = cond(vec![Atom::in_range("Age", 12, 55)]);
        assert!(a.disjoint_with(&b));
        assert!(!a.disjoint_with(&c));
        // Unconstrained columns don't create disjointness.
        let d = cond(vec![Atom::eq("Rel", "Owner")]);
        assert!(!a.disjoint_with(&d));
    }

    #[test]
    fn roundtrip_to_predicate() {
        let c = cond(vec![
            Atom::in_range("Age", 10, 14),
            Atom::eq("Area", Value::str("Chicago")),
        ]);
        let p = c.to_predicate();
        let back = NormalizedCond::from_predicate(&p).unwrap();
        assert!(c.same_condition(&back));
    }

    #[test]
    fn cc_from_predicate_splits_sides() {
        let mut r2_cols = std::collections::HashSet::new();
        r2_cols.insert("Area".to_owned());
        let pred = Predicate::new(vec![
            Atom::eq("Rel", "Owner"),
            Atom::eq("Area", Value::str("Chicago")),
        ]);
        let cc = CardinalityConstraint::from_predicate("CC1", &pred, &r2_cols, 4).unwrap();
        assert!(cc.r1.get("Rel").is_some());
        assert!(cc.r1.get("Area").is_none());
        assert!(cc.r2.get("Area").is_some());
        assert_eq!(cc.target, 4);
    }

    #[test]
    fn count_in_view() {
        use cextend_table::{ColumnDef, Dtype, Relation, Schema};
        let schema = Schema::new(vec![
            ColumnDef::attr("Rel", Dtype::Str),
            ColumnDef::attr("Area", Dtype::Str),
        ])
        .unwrap();
        let mut view = Relation::new("v", schema);
        for (rl, area) in [
            ("Owner", Some("Chicago")),
            ("Owner", Some("Chicago")),
            ("Owner", Some("NYC")),
            ("Spouse", Some("Chicago")),
            ("Owner", None),
        ] {
            view.push_row(&[Some(Value::str(rl)), area.map(Value::str)])
                .unwrap();
        }
        let cc = CardinalityConstraint::new(
            "CC1",
            cond(vec![Atom::eq("Rel", "Owner")]),
            cond(vec![Atom::eq("Area", Value::str("Chicago"))]),
            4,
        );
        assert_eq!(cc.count_in(&view).unwrap(), 2);
    }

    #[test]
    fn display() {
        let cc = CardinalityConstraint::new(
            "CC1",
            cond(vec![Atom::eq("Rel", "Owner")]),
            NormalizedCond::always(),
            4,
        );
        let s = cc.to_string();
        assert!(s.contains("CC1"));
        assert!(s.contains("= 4"));
    }
}
