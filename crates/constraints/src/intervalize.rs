//! Intervalization and binning (Section 4.1 of the paper, after [5]).
//!
//! Creating one ILP variable per raw value combination would blow up the
//! program, so numeric domains are split at the endpoints of the intervals
//! appearing in the CCs. By construction every CC range is then a union of
//! whole intervals, so "does this bin count toward this CC" is decidable per
//! bin. A *bin* is a combination of (interval index | categorical value)
//! over the binned columns; only combinations actually present in `R1` are
//! materialized (the paper's "binning the distinct (A1..Ap) values in R1").

use crate::cc::{CardinalityConstraint, NormalizedCond};
use crate::error::{ConstraintError, Result};
use cextend_table::{ColId, Relation, RowId, Schema, Value, ValueSet};
use std::collections::BTreeMap;

/// Disjoint covering intervals per numeric column.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ColumnIntervals {
    map: BTreeMap<String, Vec<(i64, i64)>>,
}

impl ColumnIntervals {
    /// Builds intervals for each numeric column listed in `domains`
    /// (column → inclusive active range), cutting at the endpoints of every
    /// interval the CCs impose on that column (both `R1` and `R2` sides).
    pub fn build(
        ccs: &[CardinalityConstraint],
        domains: &BTreeMap<String, (i64, i64)>,
    ) -> ColumnIntervals {
        let mut map = BTreeMap::new();
        for (col, &(dmin, dmax)) in domains {
            let mut cuts: Vec<i64> = vec![dmin];
            let mut note = |set: &ValueSet| {
                if let ValueSet::IntRange { lo, hi } = set {
                    if *lo > dmin && *lo <= dmax {
                        cuts.push(*lo);
                    }
                    if let Some(next) = hi.checked_add(1) {
                        if next > dmin && next <= dmax {
                            cuts.push(next);
                        }
                    }
                }
            };
            for cc in ccs {
                if let Some(set) = cc.r1.get(col) {
                    note(set);
                }
                if let Some(set) = cc.r2.get(col) {
                    note(set);
                }
            }
            cuts.sort_unstable();
            cuts.dedup();
            let mut intervals = Vec::with_capacity(cuts.len());
            for (i, &start) in cuts.iter().enumerate() {
                let end = if i + 1 < cuts.len() {
                    cuts[i + 1] - 1
                } else {
                    dmax
                };
                intervals.push((start, end));
            }
            map.insert(col.clone(), intervals);
        }
        ColumnIntervals { map }
    }

    /// The intervals of `col`, sorted ascending, if it was intervalized.
    pub fn intervals(&self, col: &str) -> Option<&[(i64, i64)]> {
        self.map.get(col).map(|v| v.as_slice())
    }

    /// Index of the interval containing `v`, if any.
    pub fn interval_index(&self, col: &str, v: i64) -> Option<usize> {
        let ivs = self.map.get(col)?;
        match ivs.binary_search_by(|&(lo, _)| lo.cmp(&v)) {
            Ok(i) => Some(i),
            Err(0) => None, // below the first interval
            Err(i) => {
                let (_, hi) = ivs[i - 1];
                (v <= hi).then_some(i - 1)
            }
        }
    }

    /// The columns that were intervalized.
    pub fn columns(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(|s| s.as_str())
    }
}

/// One dimension of a bin key.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum BinDim {
    /// Index into the column's interval list.
    Interval(u32),
    /// A categorical (or un-intervalized) value.
    Val(Value),
}

/// A bin: one [`BinDim`] per binned column, in binning column order.
pub type BinKey = Vec<BinDim>;

/// A binning of rows over a fixed list of columns.
#[derive(Clone, Debug)]
pub struct Binning {
    cols: Vec<String>,
    intervals: ColumnIntervals,
}

impl Binning {
    /// Creates a binning over `cols`; numeric columns present in
    /// `intervals` are interval-binned, all others are binned by value.
    pub fn new(cols: Vec<String>, intervals: ColumnIntervals) -> Binning {
        Binning { cols, intervals }
    }

    /// The binned columns in order.
    pub fn columns(&self) -> &[String] {
        &self.cols
    }

    /// The underlying interval table.
    pub fn intervals(&self) -> &ColumnIntervals {
        &self.intervals
    }

    /// Resolves the binned columns against a schema.
    pub fn bind(&self, schema: &Schema, relation: &str) -> Result<BoundBinning<'_>> {
        let cols = self
            .cols
            .iter()
            .map(|c| Ok((schema.require(c, relation)?, self.intervals.intervals(c))))
            .collect::<Result<Vec<_>>>()?;
        Ok(BoundBinning {
            binning: self,
            cols,
        })
    }

    /// `true` iff every row of `bin` satisfies `cond`. Because interval cuts
    /// include every CC endpoint, each interval lies entirely inside or
    /// outside any CC range built from the *same* interval table; membership
    /// is tested at the interval's start.
    ///
    /// Returns an error if `cond` constrains a column outside this binning.
    pub fn bin_satisfies(&self, bin: &BinKey, cond: &NormalizedCond) -> Result<bool> {
        for (col, set) in cond.iter() {
            let pos = self
                .cols
                .iter()
                .position(|c| c == col)
                .ok_or_else(|| ConstraintError::UnknownColumn(col.to_owned()))?;
            let ok = match &bin[pos] {
                BinDim::Interval(idx) => {
                    let ivs = self
                        .intervals
                        .intervals(col)
                        .ok_or_else(|| ConstraintError::UnknownColumn(col.to_owned()))?;
                    let (lo, _) = ivs[*idx as usize];
                    set.contains(Value::Int(lo))
                }
                BinDim::Val(v) => set.contains(*v),
            };
            if !ok {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Converts a bin back into a normalized condition (used to emit
    /// marginal CCs).
    pub fn bin_to_cond(&self, bin: &BinKey) -> NormalizedCond {
        let pairs = self.cols.iter().zip(bin.iter()).map(|(col, dim)| {
            let set = match dim {
                BinDim::Interval(idx) => {
                    let (lo, hi) =
                        self.intervals.intervals(col).expect("interval column")[*idx as usize];
                    ValueSet::range(lo, hi)
                }
                BinDim::Val(v) => match v {
                    Value::Int(x) => ValueSet::int(*x),
                    Value::Str(s) => ValueSet::sym(*s),
                },
            };
            (col.clone(), set)
        });
        NormalizedCond::from_sets(pairs)
    }
}

/// One bound column: its id plus its interval table, if intervalized.
type BoundCol<'a> = (ColId, Option<&'a [(i64, i64)]>);

/// A binning bound to a schema for fast row classification.
pub struct BoundBinning<'a> {
    binning: &'a Binning,
    cols: Vec<BoundCol<'a>>,
}

impl BoundBinning<'_> {
    /// The bin of a row; `None` if any binned cell is missing or a numeric
    /// value falls outside the interval table (cannot happen for rows the
    /// table was built from).
    pub fn bin_of_row(&self, rel: &Relation, row: RowId) -> Option<BinKey> {
        let mut key = Vec::with_capacity(self.cols.len());
        for &(col, ivs) in &self.cols {
            let v = rel.get(row, col)?;
            let dim = match (ivs, v) {
                (Some(_), Value::Int(x)) => {
                    let col_name = &self.binning.cols[key.len()];
                    BinDim::Interval(self.binning.intervals.interval_index(col_name, x)? as u32)
                }
                _ => BinDim::Val(v),
            };
            key.push(dim);
        }
        Some(key)
    }
}

/// Reads the active `[min, max]` ranges of the given integer columns.
/// Columns with no present values are skipped.
pub fn domain_ranges(rel: &Relation, cols: &[&str]) -> Result<BTreeMap<String, (i64, i64)>> {
    let mut out = BTreeMap::new();
    for &c in cols {
        let id = rel.schema().require(c, rel.name())?;
        if let Some(r) = rel.int_range(id) {
            out.insert(c.to_owned(), r);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cextend_table::{Atom, ColumnDef, Dtype, Predicate, Schema};

    fn cc(lo: i64, hi: i64) -> CardinalityConstraint {
        CardinalityConstraint::new(
            "cc",
            NormalizedCond::from_predicate(&Predicate::new(vec![Atom::in_range("Age", lo, hi)]))
                .unwrap(),
            NormalizedCond::always(),
            1,
        )
    }

    #[test]
    fn example_4_1_intervalization() {
        // CC3 uses Age ≤ 24 over domain [0,114]: split into [0,24], [25,114].
        let le24 = CardinalityConstraint::new(
            "CC3",
            NormalizedCond::from_predicate(&Predicate::new(vec![Atom::cmp(
                "Age",
                cextend_table::CmpOp::Le,
                24,
            )]))
            .unwrap(),
            NormalizedCond::always(),
            3,
        );
        let mut domains = BTreeMap::new();
        domains.insert("Age".to_owned(), (0, 114));
        let ivs = ColumnIntervals::build(&[le24], &domains);
        assert_eq!(ivs.intervals("Age").unwrap(), &[(0, 24), (25, 114)]);
        assert_eq!(ivs.interval_index("Age", 24), Some(0));
        assert_eq!(ivs.interval_index("Age", 25), Some(1));
        assert_eq!(ivs.interval_index("Age", 114), Some(1));
        assert_eq!(ivs.interval_index("Age", 115), None);
        assert_eq!(ivs.interval_index("Age", -1), None);
    }

    #[test]
    fn overlapping_ranges_cut_finely() {
        let mut domains = BTreeMap::new();
        domains.insert("Age".to_owned(), (0, 100));
        let ivs = ColumnIntervals::build(&[cc(10, 49), cc(30, 70)], &domains);
        assert_eq!(
            ivs.intervals("Age").unwrap(),
            &[(0, 9), (10, 29), (30, 49), (50, 70), (71, 100)]
        );
    }

    #[test]
    fn every_cc_range_is_a_union_of_intervals() {
        let ccs = vec![cc(10, 49), cc(30, 70), cc(5, 5)];
        let mut domains = BTreeMap::new();
        domains.insert("Age".to_owned(), (0, 100));
        let ivs = ColumnIntervals::build(&ccs, &domains);
        for c in &ccs {
            let set = c.r1.get("Age").unwrap();
            for &(lo, hi) in ivs.intervals("Age").unwrap() {
                // Interval entirely inside or entirely outside the range.
                let inside = set.contains(Value::Int(lo));
                assert_eq!(
                    inside,
                    set.contains(Value::Int(hi)),
                    "interval split a CC range"
                );
            }
        }
    }

    fn persons() -> Relation {
        let schema = Schema::new(vec![
            ColumnDef::attr("Age", Dtype::Int),
            ColumnDef::attr("Rel", Dtype::Str),
        ])
        .unwrap();
        let mut r = Relation::new("Persons", schema);
        for (age, rl) in [(75, "Owner"), (25, "Owner"), (24, "Spouse"), (10, "Child")] {
            r.push_full_row(&[Value::Int(age), Value::str(rl)]).unwrap();
        }
        r
    }

    #[test]
    fn binning_rows() {
        let r = persons();
        let mut domains = BTreeMap::new();
        domains.insert("Age".to_owned(), (10, 75));
        let ivs = ColumnIntervals::build(&[cc(10, 24)], &domains);
        let binning = Binning::new(vec!["Age".into(), "Rel".into()], ivs);
        let bound = binning.bind(r.schema(), "Persons").unwrap();
        // Ages [10,24] and [25,75].
        assert_eq!(
            bound.bin_of_row(&r, 0).unwrap(),
            vec![BinDim::Interval(1), BinDim::Val(Value::str("Owner"))]
        );
        assert_eq!(
            bound.bin_of_row(&r, 2).unwrap(),
            vec![BinDim::Interval(0), BinDim::Val(Value::str("Spouse"))]
        );
    }

    #[test]
    fn bin_satisfies_and_roundtrip() {
        let mut domains = BTreeMap::new();
        domains.insert("Age".to_owned(), (0, 100));
        let the_cc = cc(10, 49);
        let ivs = ColumnIntervals::build(std::slice::from_ref(&the_cc), &domains);
        let binning = Binning::new(vec!["Age".into(), "Rel".into()], ivs);
        let bin = vec![BinDim::Interval(1), BinDim::Val(Value::str("Owner"))]; // Age [10,49]
        assert!(binning.bin_satisfies(&bin, &the_cc.r1).unwrap());
        let outside = vec![BinDim::Interval(0), BinDim::Val(Value::str("Owner"))]; // [0,9]
        assert!(!binning.bin_satisfies(&outside, &the_cc.r1).unwrap());

        // Round-trip to a condition and back through satisfaction.
        let cond = binning.bin_to_cond(&bin);
        assert!(binning.bin_satisfies(&bin, &cond).unwrap());
        assert!(!binning.bin_satisfies(&outside, &cond).unwrap());
    }

    #[test]
    fn bin_satisfies_unknown_column_errors() {
        let binning = Binning::new(vec!["Age".into()], ColumnIntervals::default());
        let cond = NormalizedCond::from_predicate(&Predicate::new(vec![Atom::eq(
            "Area",
            Value::str("x"),
        )]))
        .unwrap();
        assert!(binning
            .bin_satisfies(&vec![BinDim::Val(Value::Int(5))], &cond)
            .is_err());
    }

    #[test]
    fn missing_cells_produce_no_bin() {
        let schema = Schema::new(vec![ColumnDef::attr("Age", Dtype::Int)]).unwrap();
        let mut r = Relation::new("t", schema);
        r.push_row(&[None]).unwrap();
        let binning = Binning::new(vec!["Age".into()], ColumnIntervals::default());
        let bound = binning.bind(r.schema(), "t").unwrap();
        assert_eq!(bound.bin_of_row(&r, 0), None);
    }

    #[test]
    fn domain_ranges_skip_empty_columns() {
        let r = persons();
        let d = domain_ranges(&r, &["Age"]).unwrap();
        assert_eq!(d["Age"], (10, 75));
        assert!(domain_ranges(&r, &["nope"]).is_err());
    }
}
