//! Hasse diagrams of CC containment (Section 4.2 of the paper).
//!
//! The containment relation of Definition 4.3 is a partial order on a CC
//! set; its Hasse diagram keeps only *cover* edges (direct containments with
//! nothing in between). Each weakly-connected component is a "diagram" in
//! the paper's terminology; Algorithm 2 recurses top-down from each
//! diagram's maximal element. Clean diagrams are forests — diamond shapes
//! can only arise from intersecting parents, which the hybrid routes to the
//! ILP instead.

use crate::relationship::{CcRelationship, RelationshipMatrix};

/// The Hasse diagram of a CC set's containment order.
#[derive(Clone, Debug)]
pub struct HasseDiagram {
    n: usize,
    /// `children[i]` = CCs directly contained in CC `i` (cover edges).
    children: Vec<Vec<usize>>,
    /// `parents[i]` = CCs directly containing CC `i`.
    parents: Vec<Vec<usize>>,
    /// Weakly-connected components ("diagrams"), each sorted ascending,
    /// ordered by smallest member.
    components: Vec<Vec<usize>>,
}

impl HasseDiagram {
    /// Builds the diagram from a relationship matrix.
    ///
    /// `Equal` pairs are treated as mutual containment and collapse into the
    /// same component but produce no cover edge; callers are expected to
    /// have deduplicated identical conditions beforehand (the hybrid routes
    /// equal-condition CCs with conflicting targets to the ILP).
    pub fn build(m: &RelationshipMatrix) -> HasseDiagram {
        let n = m.len();
        // contained[i][j] = true iff i ⊊ j.
        let contained = |i: usize, j: usize| m.get(i, j) == CcRelationship::ContainedIn;
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut parents: Vec<Vec<usize>> = vec![Vec::new(); n];
        #[allow(clippy::needless_range_loop)] // i, j index two parallel tables
        for i in 0..n {
            for j in 0..n {
                if i == j || !contained(i, j) {
                    continue;
                }
                // Cover edge j → i unless some k sits strictly between.
                let covered =
                    (0..n).any(|k| k != i && k != j && contained(i, k) && contained(k, j));
                if !covered {
                    children[j].push(i);
                    parents[i].push(j);
                }
            }
        }
        // Components over the undirected cover graph (plus Equal links).
        let mut comp_id = vec![usize::MAX; n];
        let mut components: Vec<Vec<usize>> = Vec::new();
        for start in 0..n {
            if comp_id[start] != usize::MAX {
                continue;
            }
            let id = components.len();
            let mut stack = vec![start];
            let mut members = Vec::new();
            comp_id[start] = id;
            while let Some(v) = stack.pop() {
                members.push(v);
                let push = |u: usize, comp_id: &mut Vec<usize>, stack: &mut Vec<usize>| {
                    if comp_id[u] == usize::MAX {
                        comp_id[u] = id;
                        stack.push(u);
                    }
                };
                for &u in &children[v] {
                    push(u, &mut comp_id, &mut stack);
                }
                for &u in &parents[v] {
                    push(u, &mut comp_id, &mut stack);
                }
                for u in 0..n {
                    if u != v && m.get(v, u) == CcRelationship::Equal {
                        push(u, &mut comp_id, &mut stack);
                    }
                }
            }
            members.sort_unstable();
            components.push(members);
        }
        components.sort_by_key(|c| c[0]);
        HasseDiagram {
            n,
            children,
            parents,
            components,
        }
    }

    /// Number of CCs.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if there are no CCs.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Direct children (covered CCs) of `i`.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Direct parents (covering CCs) of `i`.
    pub fn parents(&self, i: usize) -> &[usize] {
        &self.parents[i]
    }

    /// The diagrams (weakly-connected components).
    pub fn components(&self) -> &[Vec<usize>] {
        &self.components
    }

    /// `true` if the diagram has no cover edges at all (`E(H) = ∅` — the
    /// base case of Algorithm 2).
    pub fn no_edges(&self) -> bool {
        self.children.iter().all(Vec::is_empty)
    }

    /// Maximal elements of one component: members with no parent.
    pub fn maximal_elements(&self, component: &[usize]) -> Vec<usize> {
        component
            .iter()
            .copied()
            .filter(|&i| self.parents[i].is_empty())
            .collect()
    }

    /// `true` if every CC has at most one parent — the forest shape
    /// Algorithm 2's recursion assumes. Diamonds indicate incomparable
    /// overlapping parents, which only satisfiable inputs cannot produce.
    pub fn is_forest(&self) -> bool {
        self.parents.iter().all(|p| p.len() <= 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{CardinalityConstraint, NormalizedCond};
    use cextend_table::{Atom, Predicate, Value};

    fn cc(name: &str, lo: i64, hi: i64, area: &str) -> CardinalityConstraint {
        CardinalityConstraint::new(
            name,
            NormalizedCond::from_predicate(&Predicate::new(vec![Atom::in_range("Age", lo, hi)]))
                .unwrap(),
            NormalizedCond::from_predicate(&Predicate::new(vec![Atom::eq(
                "Area",
                Value::str(area),
            )]))
            .unwrap(),
            1,
        )
    }

    #[test]
    fn nested_intervals_form_a_chain_with_cover_edges_only() {
        // [20,25] ⊂ [10,40] ⊂ [0,100]; the transitive edge [20,25]→[0,100]
        // must be absent.
        let ccs = vec![
            cc("inner", 20, 25, "Chicago"),
            cc("mid", 10, 40, "Chicago"),
            cc("outer", 0, 100, "Chicago"),
        ];
        let m = RelationshipMatrix::build(&ccs);
        let h = HasseDiagram::build(&m);
        assert_eq!(h.children(2), &[1]);
        assert_eq!(h.children(1), &[0]);
        assert_eq!(h.children(0), &[] as &[usize]);
        assert_eq!(h.parents(0), &[1]);
        assert_eq!(h.components().len(), 1);
        assert_eq!(h.maximal_elements(&h.components()[0]), vec![2]);
        assert!(h.is_forest());
        assert!(!h.no_edges());
    }

    #[test]
    fn figure6_diagrams() {
        // H1 = {CC1}, H2 = {CC2}, H3 = {CC3 ⊃ CC4}: three diagrams when the
        // Age ranges are fully separated.
        let ccs = vec![
            cc("CC1", 10, 12, "Chicago"),
            cc("CC2", 50, 60, "NYC"),
            cc("CC3", 13, 64, "Chicago"),
            cc("CC4", 18, 24, "Chicago"),
        ];
        let m = RelationshipMatrix::build(&ccs);
        // CC2 (NYC) is disjoint from the Chicago ones only where R1 parts
        // are disjoint or identical; here [50,60] ⊂ [13,64] as R1 but Areas
        // differ → combined conditions are incomparable & overlapping?
        // No: combined CC2 has Area=NYC vs CC3 Area=Chicago — disjoint on
        // Area? Disjointness (Def 4.2) only looks at R1 parts unless they
        // are identical. [50,60] vs [13,64] overlap and differ →
        // *intersecting* per the definition. Keep CC2's ages separate:
        let ccs = vec![
            cc("CC1", 10, 12, "Chicago"),
            cc("CC2", 70, 90, "NYC"),
            cc("CC3", 13, 64, "Chicago"),
            cc("CC4", 18, 24, "Chicago"),
        ];
        let m2 = RelationshipMatrix::build(&ccs);
        let h = HasseDiagram::build(&m2);
        assert_eq!(h.components().len(), 3);
        assert_eq!(h.children(2), &[3]);
        assert!(h.is_forest());
        drop(m);
    }

    #[test]
    fn two_disjoint_ccs_have_no_edges() {
        let ccs = vec![cc("a", 0, 10, "Chicago"), cc("b", 20, 30, "Chicago")];
        let m = RelationshipMatrix::build(&ccs);
        let h = HasseDiagram::build(&m);
        assert!(h.no_edges());
        assert_eq!(h.components().len(), 2);
    }

    #[test]
    fn equal_conditions_share_a_component_without_edges() {
        let ccs = vec![cc("a", 0, 10, "Chicago"), cc("b", 0, 10, "Chicago")];
        let m = RelationshipMatrix::build(&ccs);
        let h = HasseDiagram::build(&m);
        assert_eq!(h.components().len(), 1);
        assert!(h.no_edges());
    }

    #[test]
    fn empty_input() {
        let m = RelationshipMatrix::build(&[]);
        let h = HasseDiagram::build(&m);
        assert!(h.is_empty());
        assert!(h.no_edges());
        assert!(h.components().is_empty());
    }

    #[test]
    fn multiple_children_under_one_parent() {
        let ccs = vec![
            cc("parent", 0, 100, "Chicago"),
            cc("kid1", 10, 20, "Chicago"),
            cc("kid2", 30, 40, "Chicago"),
        ];
        let m = RelationshipMatrix::build(&ccs);
        let h = HasseDiagram::build(&m);
        let mut kids = h.children(0).to_vec();
        kids.sort_unstable();
        assert_eq!(kids, vec![1, 2]);
        assert_eq!(h.maximal_elements(&h.components()[0]), vec![0]);
    }
}
