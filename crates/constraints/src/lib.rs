//! # cextend-constraints — the paper's constraint vocabulary
//!
//! Models the two constraint classes of *"Synthesizing Linked Data Under
//! Cardinality and Integrity Constraints"* (SIGMOD 2021) and the machinery
//! its Phase I is built on:
//!
//! - [`CardinalityConstraint`] — linear CCs `|σ_φ(R1 ⋈ R2)| = k`
//!   (Definition 2.4), stored with per-column [`cextend_table::ValueSet`]s.
//! - [`DenialConstraint`] — foreign-key DCs `¬(φ ∧ t1.FK = … = tk.FK)`
//!   (Definition 2.2) with unary and offset-binary atoms.
//! - [`classify`] / [`RelationshipMatrix`] — disjoint / contained /
//!   intersecting classification (Definitions 4.2–4.4).
//! - [`HasseDiagram`] — cover edges of the containment order (Section 4.2).
//! - [`ColumnIntervals`] / [`Binning`] — intervalization (Section 4.1).
//! - [`marginal_ccs`] / [`restrict_marginals`] — all-way and modified
//!   marginal augmentation (Sections 4.1, 4.3).
//! - [`parse_cc`] / [`parse_dc`] — a text DSL in the paper's notation.
//!
//! ```
//! use cextend_constraints::{classify, parse_cc, CcRelationship};
//! use std::collections::HashSet;
//!
//! let r2: HashSet<String> = ["Area".to_owned()].into_iter().collect();
//! let chicago = parse_cc("CC1", r#"| Rel = "Owner" & Area = "Chicago" | = 4"#, &r2).unwrap();
//! let nyc = parse_cc("CC2", r#"| Rel = "Owner" & Area = "NYC" | = 2"#, &r2).unwrap();
//! // Same R1 condition, disjoint R2 conditions → disjoint (Definition 4.2).
//! assert_eq!(classify(&chicago, &nyc), CcRelationship::Disjoint);
//! ```

#![warn(missing_docs)]

mod cc;
mod cost;
mod dc;
mod error;
mod hasse;
mod intervalize;
mod marginals;
mod parser;
mod relationship;

pub use cc::{CardinalityConstraint, NormalizedCond};
pub use cost::PlanCost;
pub use dc::{BinaryAtomPlan, BoundDc, DcAtom, DcPlan, DenialConstraint, UnaryFilter};
pub use error::{ConstraintError, Result};
pub use hasse::HasseDiagram;
pub use intervalize::{domain_ranges, BinDim, BinKey, Binning, BoundBinning, ColumnIntervals};
pub use marginals::{marginal_ccs, marginal_counts, restrict_marginals};
pub use parser::{parse_cc, parse_dc, parse_predicate};
pub use relationship::{classify, CcRelationship, RelationshipMatrix};
